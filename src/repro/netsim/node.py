"""Hosts: addressable endpoints that dispatch packets to protocol handlers.

A :class:`Host` owns an IPv4 address and a registry of flow handlers
keyed by the TCP 4-tuple.  Incoming packets are dispatched to the
matching handler (a TCP endpoint); unmatched packets are counted and
dropped, as a real kernel would send a RST we do not need to model.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.netsim.packet import Packet

FlowKey = tuple[str, int, str, int]  # (src_ip, src_port, dst_ip, dst_port)


class Host:
    """A simulated end host identified by an IPv4 address."""

    def __init__(self, name: str, ip: str) -> None:
        self.name = name
        self.ip = ip
        self._flow_handlers: dict[FlowKey, Callable[[Packet], None]] = {}
        self._listeners: dict[int, Callable[[Packet], None]] = {}
        self.unmatched_packets = 0
        self.routes: dict[str, Any] = {}

    def add_route(self, dst_ip: str, sender: Callable[[Packet], None]) -> None:
        """Register the outbound path entry used to reach ``dst_ip``."""
        self.routes[dst_ip] = sender

    def send(self, packet: Packet) -> bool:
        """Transmit ``packet`` along the route for its destination."""
        try:
            route = self.routes[packet.dst]
        except KeyError:
            raise LookupError(
                f"{self.name} has no route to {packet.dst}"
            ) from None
        return route(packet)

    def register_flow(
        self, key: FlowKey, handler: Callable[[Packet], None]
    ) -> None:
        """Attach a connection handler for an exact 4-tuple."""
        self._flow_handlers[key] = handler

    def unregister_flow(self, key: FlowKey) -> None:
        """Detach a connection handler; missing keys are ignored."""
        self._flow_handlers.pop(key, None)

    def listen(self, port: int, handler: Callable[[Packet], None]) -> None:
        """Attach a passive handler for segments to ``port`` with no flow match."""
        self._listeners[port] = handler

    def deliver(self, packet: Packet) -> None:
        """Entry point wired into the inbound link's ``deliver``."""
        segment = packet.payload
        key = (packet.src, segment.src_port, packet.dst, segment.dst_port)
        handler = self._flow_handlers.get(key)
        if handler is None:
            handler = self._listeners.get(segment.dst_port)
        if handler is None:
            self.unmatched_packets += 1
            return
        handler(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name}@{self.ip})"
