"""Deterministic discrete-event simulator.

The paper analyzed a year of traces from operational routers; we stand
in for that testbed with a discrete-event simulation whose clock runs in
integer microseconds (the same resolution tcpdump records).  The
simulator is strictly deterministic: events firing at the same instant
execute in scheduling order, so a seeded run always produces the same
pcap byte-for-byte.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.obs import CLOCK_SIM, get_obs

#: how SimBudgetExceeded.reason names the exhausted resource.
BUDGET_EVENTS = "events"
BUDGET_WALL_CLOCK = "wall-clock"


@dataclass(frozen=True)
class SimBudget:
    """Watchdog limits for one :meth:`Simulator.run` call.

    A pathological scenario (e.g. a zero-window probe loop that never
    drains) keeps generating events forever; inside a worker process
    that hangs the whole campaign pool.  A budget turns the hang into a
    :class:`SimBudgetExceeded` the episode runner can convert into a
    ``sim-budget-exceeded`` health issue.

    ``max_events`` is deterministic (same seed, same count) so
    exceeding it is a property of the scenario, not the machine;
    ``max_wall_s`` depends on host load, so exceeding it is treated as
    transient (``retryable``).  The wall clock is sampled every
    ``wall_check_every`` events to keep the hot loop cheap.
    """

    max_events: int | None = None
    max_wall_s: float | None = None
    wall_check_every: int = 2048


class SimBudgetExceeded(RuntimeError):
    """A simulation run outgrew its :class:`SimBudget`."""

    def __init__(
        self, reason: str, events: int, wall_s: float, now_us: int
    ) -> None:
        self.reason = reason  # BUDGET_EVENTS | BUDGET_WALL_CLOCK
        self.events = events
        self.wall_s = wall_s
        self.now_us = now_us
        super().__init__(
            f"simulation exceeded its {reason} budget after "
            f"{events} event(s) / {wall_s:.3f}s wall "
            f"(sim time {now_us}us)"
        )

    @property
    def retryable(self) -> bool:
        """Wall-clock exhaustion is host-dependent and worth retrying;
        an event-count overrun reproduces deterministically."""
        return self.reason == BUDGET_WALL_CLOCK


class Event:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    Cancellation is lazy: the heap entry stays in place and is skipped
    when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self, time: int, seq: int, callback: Callable[..., Any], args: tuple
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """An event-heap simulator with an integer microsecond clock."""

    def __init__(self, start_time_us: int = 0) -> None:
        self._now = start_time_us
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False

    @property
    def now(self) -> int:
        """The current simulation time in microseconds."""
        return self._now

    def schedule(
        self, delay_us: int, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` after ``delay_us`` microseconds."""
        if delay_us < 0:
            raise ValueError(f"negative delay {delay_us}")
        event = Event(self._now + delay_us, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self, time_us: int, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` at absolute time ``time_us``."""
        if time_us < self._now:
            raise ValueError(f"cannot schedule in the past: {time_us} < {self._now}")
        return self.schedule(time_us - self._now, callback, *args)

    def run(
        self,
        until_us: int | None = None,
        max_events: int | None = None,
        budget: SimBudget | None = None,
    ) -> int:
        """Process events until the heap drains or a bound is hit.

        Returns the number of events executed.  ``until_us`` is an
        inclusive time bound; ``max_events`` guards against runaway
        simulations in tests (it stops silently).  ``budget`` is the
        watchdog form of the same guard: exhausting it raises
        :class:`SimBudgetExceeded` so callers can abort and account a
        pathological scenario instead of hanging.
        """
        executed = 0
        self._running = True
        # Observability is aggregated per *run*, never per event: the
        # totals flush once into the ambient registry when the run
        # ends, so the hot loop's per-event cost is unchanged whether
        # observability is on or off.
        obs = get_obs()
        start_time_us = self._now
        queue_peak = len(self._heap)
        started = (
            time.monotonic() if budget is not None else 0.0  # repro: noqa[RL001] SimBudget watchdog clock, never feeds results
        )
        try:
            while self._heap:
                if until_us is not None and self._heap[0].time > until_us:
                    self._now = until_us
                    break
                if max_events is not None and executed >= max_events:
                    break
                if budget is not None:
                    if (
                        budget.max_events is not None
                        and executed >= budget.max_events
                    ):
                        raise SimBudgetExceeded(
                            BUDGET_EVENTS, executed,
                            time.monotonic() - started,  # repro: noqa[RL001] watchdog diagnostics
                            self._now,
                        )
                    if (
                        budget.max_wall_s is not None
                        and executed % budget.wall_check_every == 0
                    ):
                        wall = time.monotonic() - started  # repro: noqa[RL001] watchdog wall budget
                        if wall > budget.max_wall_s:
                            raise SimBudgetExceeded(
                                BUDGET_WALL_CLOCK, executed, wall, self._now
                            )
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback(*event.args)
                executed += 1
                # Deterministic queue-depth sampling: the sampling
                # points are event counts, so the observed peak is a
                # property of the scenario, not of the host.
                if obs.enabled and not executed % 4096:
                    depth = len(self._heap)
                    if depth > queue_peak:
                        queue_peak = depth
        finally:
            self._running = False
            if obs.enabled:
                metrics = obs.metrics
                metrics.counter("sim.events").inc(executed)
                metrics.counter("sim.runs").inc()
                depth = len(self._heap)
                metrics.gauge("sim.queue_depth").set(max(queue_peak, depth))
                if budget is not None and budget.max_events:
                    metrics.gauge("sim.budget_consumed").set(
                        executed / budget.max_events
                    )
                obs.tracer.add_span(
                    "sim.run",
                    start_us=start_time_us,
                    dur_us=self._now - start_time_us,
                    clock=CLOCK_SIM,
                    args={"events": executed},
                )
        return executed

    def pending(self) -> int:
        """Count of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)


class Timer:
    """A restartable one-shot timer bound to a simulator.

    This is the idiom BGP hold/keepalive timers and TCP's RTO need:
    ``restart`` reschedules, ``stop`` cancels, and a fired timer can be
    restarted again.
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], Any],
        name: str = "timer",
    ) -> None:
        self._sim = sim
        self._callback = callback
        self.name = name
        self._event: Event | None = None

    @property
    def armed(self) -> bool:
        """True while the timer is scheduled and not yet fired."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay_us: int) -> None:
        """Arm the timer; restarts it if already armed."""
        self.stop()
        self._event = self._sim.schedule(delay_us, self._fire)

    restart = start

    def stop(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTimer:
    """A repeating timer (e.g. BGP keepalives, batching ticks)."""

    def __init__(
        self,
        sim: Simulator,
        interval_us: int,
        callback: Callable[[], Any],
        name: str = "periodic",
    ) -> None:
        if interval_us <= 0:
            raise ValueError(f"non-positive interval {interval_us}")
        self._sim = sim
        self.interval_us = interval_us
        self._callback = callback
        self.name = name
        self._event: Event | None = None

    @property
    def running(self) -> bool:
        """True while ticks are being scheduled."""
        return self._event is not None

    def start(self, initial_delay_us: int | None = None) -> None:
        """Begin ticking; first tick after ``initial_delay_us`` (default: one interval)."""
        self.stop()
        delay = self.interval_us if initial_delay_us is None else initial_delay_us
        self._event = self._sim.schedule(delay, self._tick)

    def stop(self) -> None:
        """Stop ticking."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        self._event = self._sim.schedule(self.interval_us, self._tick)
        self._callback()
