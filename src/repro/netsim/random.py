"""Seeded per-component random streams.

Every stochastic component (loss models, workload generators, jitter)
draws from its own named stream derived from a campaign master seed, so
adding a new consumer never perturbs the draws of existing ones and
every experiment is exactly reproducible.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """A factory of independent, deterministically seeded RNGs."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The RNG for ``name``, created on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """A child stream factory with its own namespace."""
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[8:16], "big"))
