"""Links: serialization, propagation, drop-tail buffering and loss.

A :class:`Link` is unidirectional.  Packets queue in a finite drop-tail
buffer, serialize one at a time at the link bandwidth, then propagate.
Loss models drop packets either at enqueue (buffer pressure is modelled
separately by the finite queue) or on the wire.

Taps observe packets at the moment serialization completes — exactly
where a passive sniffer port-mirror would see them — which lets us place
the paper's *Sniffer* between two links so that drops on the second link
happen *after* capture (the paper's downstream / receiver-local losses,
section II-B2).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import Protocol

from repro.core.units import US_PER_SECOND
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator


class LossModel(Protocol):
    """Decides whether a packet entering the wire is dropped."""

    def should_drop(self, packet: Packet, now_us: int) -> bool:
        """Return True to drop ``packet`` at time ``now_us``."""
        ...  # pragma: no cover - protocol definition


class NoLoss:
    """The default lossless wire."""

    def should_drop(self, packet: Packet, now_us: int) -> bool:
        return False


class BernoulliLoss:
    """Independent random drops with a fixed probability."""

    def __init__(self, rate: float, rng) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate {rate} outside [0, 1]")
        self.rate = rate
        self._rng = rng

    def should_drop(self, packet: Packet, now_us: int) -> bool:
        return self._rng.random() < self.rate


class WindowLoss:
    """Drop every packet whose wire entry falls in given time windows.

    Reproduces the paper's consecutive-loss episodes: an interface or
    path blackout drops a whole flight (or several successive
    retransmissions of it).
    """

    def __init__(self, windows: list[tuple[int, int]]) -> None:
        self.windows = sorted(windows)

    def should_drop(self, packet: Packet, now_us: int) -> bool:
        return any(start <= now_us < end for start, end in self.windows)


class CountedLoss:
    """Drop the next ``count`` packets once armed (then pass everything)."""

    def __init__(self, count: int) -> None:
        self.remaining = count

    def arm(self, count: int) -> None:
        """Re-arm the model to drop the next ``count`` packets."""
        self.remaining = count

    def should_drop(self, packet: Packet, now_us: int) -> bool:
        if self.remaining > 0:
            self.remaining -= 1
            return True
        return False


class GilbertElliottLoss:
    """Two-state bursty loss (good/bad channel) — models congestion bursts."""

    def __init__(
        self,
        rng,
        p_good_to_bad: float = 0.001,
        p_bad_to_good: float = 0.2,
        loss_in_bad: float = 0.8,
        loss_in_good: float = 0.0,
    ) -> None:
        self._rng = rng
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_in_bad = loss_in_bad
        self.loss_in_good = loss_in_good
        self._bad = False

    def should_drop(self, packet: Packet, now_us: int) -> bool:
        if self._bad:
            if self._rng.random() < self.p_bad_to_good:
                self._bad = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                self._bad = True
        rate = self.loss_in_bad if self._bad else self.loss_in_good
        return rate > 0 and self._rng.random() < rate


class LinkStats:
    """Counters a link accumulates over its lifetime."""

    def __init__(self) -> None:
        self.enqueued = 0
        self.delivered = 0
        self.dropped_buffer = 0
        self.dropped_loss = 0
        self.bytes_delivered = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkStats(enq={self.enqueued} del={self.delivered} "
            f"buf_drop={self.dropped_buffer} loss_drop={self.dropped_loss})"
        )


class Link:
    """A unidirectional link with finite drop-tail buffering.

    ``deliver`` is the downstream consumer (a host's ``deliver`` method
    or the entry point of another link in a path).  ``taps`` observe
    packets as serialization completes.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: float,
        propagation_delay_us: int,
        deliver: Callable[[Packet], None],
        buffer_packets: int = 1000,
        loss_model: LossModel | None = None,
        jitter_us: int = 0,
        jitter_rng=None,
    ) -> None:
        """``jitter_us`` adds a uniform random extra delay in
        [0, jitter_us] per packet (seed it via ``jitter_rng``).  Jitter
        never reorders: a packet is held back until its predecessor's
        delivery time."""
        if bandwidth_bps <= 0:
            raise ValueError(f"non-positive bandwidth {bandwidth_bps}")
        if propagation_delay_us < 0:
            raise ValueError(f"negative delay {propagation_delay_us}")
        if buffer_packets < 1:
            raise ValueError(f"buffer must hold at least one packet")
        if jitter_us < 0:
            raise ValueError(f"negative jitter {jitter_us}")
        if jitter_us and jitter_rng is None:
            raise ValueError("jitter requires a seeded jitter_rng")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay_us = propagation_delay_us
        self.deliver = deliver
        self.buffer_packets = buffer_packets
        self.loss_model: LossModel = loss_model or NoLoss()
        self.jitter_us = jitter_us
        self._jitter_rng = jitter_rng
        self._last_arrival_us = 0
        self.taps: list[Callable[[Packet, int], None]] = []
        self.drop_hooks: list[Callable[[Packet, str, int], None]] = []
        self.stats = LinkStats()
        self._queue: deque[Packet] = deque()
        self._busy = False

    def add_tap(self, tap: Callable[[Packet, int], None]) -> None:
        """Register a passive observer called as ``tap(packet, time_us)``."""
        self.taps.append(tap)

    def add_drop_hook(self, hook: Callable[[Packet, str, int], None]) -> None:
        """Register a drop observer called as ``hook(packet, reason, time_us)``."""
        self.drop_hooks.append(hook)

    def serialization_delay_us(self, packet: Packet) -> int:
        """Microseconds to clock ``packet`` onto the wire."""
        return max(1, round(packet.wire_length * 8 * US_PER_SECOND / self.bandwidth_bps))

    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet``; returns False if the buffer dropped it."""
        self.stats.enqueued += 1
        if len(self._queue) >= self.buffer_packets:
            self.stats.dropped_buffer += 1
            self._notify_drop(packet, "buffer")
            return False
        self._queue.append(packet)
        if not self._busy:
            self._start_next()
        return True

    @property
    def queue_depth(self) -> int:
        """Number of packets waiting or in serialization."""
        return len(self._queue)

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._queue[0]
        self.sim.schedule(
            self.serialization_delay_us(packet), self._serialized, packet
        )

    def _serialized(self, packet: Packet) -> None:
        self._queue.popleft()
        now = self.sim.now
        for tap in self.taps:
            tap(packet, now)
        if self.loss_model.should_drop(packet, now):
            self.stats.dropped_loss += 1
            self._notify_drop(packet, "loss")
        else:
            delay = self.propagation_delay_us
            if self.jitter_us:
                delay += self._jitter_rng.randint(0, self.jitter_us)
            # FIFO guarantee: jitter delays, it never reorders.
            arrival = max(now + delay, self._last_arrival_us)
            self._last_arrival_us = arrival
            self.sim.schedule(arrival - now, self._arrive, packet)
        self._start_next()

    def _arrive(self, packet: Packet) -> None:
        self.stats.delivered += 1
        self.stats.bytes_delivered += packet.wire_length
        self.deliver(packet)

    def _notify_drop(self, packet: Packet, reason: str) -> None:
        for hook in self.drop_hooks:
            hook(packet, reason, self.sim.now)


class PathSegmentChain:
    """Several links in series forming one direction of a path.

    The paper's collection setup is ``Sender --upstream--> Sniffer
    --downstream--> Receiver``; a chain of two links with a tap on the
    first link's egress models it exactly.
    """

    def __init__(self, links: list[Link]) -> None:
        if not links:
            raise ValueError("a path needs at least one link")
        self.links = links
        for upstream, downstream in zip(links, links[1:]):
            upstream.deliver = downstream.send

    @property
    def entry(self) -> Link:
        """The first link; feed packets into ``entry.send``."""
        return self.links[0]

    @property
    def exit(self) -> Link:
        """The last link; its ``deliver`` reaches the destination host."""
        return self.links[-1]

    def send(self, packet: Packet) -> bool:
        """Inject a packet at the head of the chain."""
        return self.entry.send(packet)
