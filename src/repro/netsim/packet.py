"""The simulated packet model.

A :class:`Packet` is what travels across :mod:`repro.netsim.link` links.
The payload is a structured object (for this project, a
:class:`repro.tcp.segment.TcpSegment`); the wire framing overhead is
accounted for in ``wire_length`` so link serialization times and the
pcap traces match real Ethernet/IPv4/TCP byte counts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

# Ethernet II header (no FCS in pcap captures) + IPv4 + base TCP header.
ETHERNET_HEADER_LEN = 14
IPV4_HEADER_LEN = 20
TCP_HEADER_LEN = 20

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One simulated network packet.

    ``src`` and ``dst`` are dotted-quad IPv4 address strings; ``payload``
    is the transported protocol object; ``wire_length`` is the full
    frame length in bytes used for serialization-delay computation and
    pcap record sizing.
    """

    src: str
    dst: str
    payload: Any
    wire_length: int
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at_us: int = 0
    # IPv4 identification assigned by the sending stack; passive
    # analysis uses its ordering to tell reordering from retransmission.
    ip_id: int | None = None

    def __post_init__(self) -> None:
        if self.wire_length <= 0:
            raise ValueError(f"non-positive wire_length {self.wire_length}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.packet_id} {self.src}->{self.dst} "
            f"{self.wire_length}B {self.payload!r})"
        )


def tcp_wire_length(payload_bytes: int, tcp_options_len: int = 0) -> int:
    """Frame length of a TCP segment carrying ``payload_bytes`` of data."""
    return (
        ETHERNET_HEADER_LEN
        + IPV4_HEADER_LEN
        + TCP_HEADER_LEN
        + tcp_options_len
        + payload_bytes
    )
