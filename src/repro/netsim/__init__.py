"""Discrete-event network simulation substrate."""

from repro.netsim.link import (
    BernoulliLoss,
    CountedLoss,
    GilbertElliottLoss,
    Link,
    LinkStats,
    NoLoss,
    PathSegmentChain,
    WindowLoss,
)
from repro.netsim.node import Host
from repro.netsim.packet import Packet, tcp_wire_length
from repro.netsim.random import RandomStreams
from repro.netsim.simulator import Event, PeriodicTimer, Simulator, Timer

__all__ = [
    "BernoulliLoss",
    "CountedLoss",
    "Event",
    "GilbertElliottLoss",
    "Host",
    "Link",
    "LinkStats",
    "NoLoss",
    "Packet",
    "PathSegmentChain",
    "PeriodicTimer",
    "RandomStreams",
    "Simulator",
    "Timer",
    "WindowLoss",
    "tcp_wire_length",
]
