"""Seeded, deterministic pcap mangling: composable fault operators.

Each operator is a small named transform over raw pcap file bytes that
models one way a real capture gets damaged (paper section II-A and
DESIGN.md section 7):

========================  ====================================================
``truncate``              cut the file mid-record (interrupted tcpdump,
                          full disk)
``corrupt-record-header`` smash bytes inside per-record headers (bit rot,
                          bad transfer)
``corrupt-payload``       flip bytes inside captured frames
``drop-records``          delete whole records (sniffer drop voids)
``duplicate-records``     repeat records (span-port duplication)
``reorder-records``       swap neighbouring records (multi-queue capture)
``regress-timestamps``    pull timestamps backwards (clock steps)
``slice-frames``          re-truncate frames below the snap length
``flip-bgp``              corrupt BGP marker/length fields inside TCP
                          payloads (the in-stream damage pcap2bgp must
                          resynchronize around)
========================  ====================================================

All randomness flows from one ``random.Random`` seeded by the caller,
so a (seed, operator plan) pair always produces byte-identical output —
every fuzz failure is replayable.

Operators never need the file to be well-formed: they work on a
best-effort structural split (:func:`split_pcap`) and fall back to raw
byte edits when the structure is already too damaged to parse, so they
compose in any order.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass

from repro.bgp.messages import MARKER as BGP_MARKER
from repro.wire.pcap import GLOBAL_HEADER, RECORD_HEADER

_MIN_FILE = GLOBAL_HEADER.size + RECORD_HEADER.size


@dataclass
class SplitPcap:
    """A best-effort structural view of a pcap byte string."""

    header: bytes  # the 24-byte global header (possibly damaged)
    records: list[bytes]  # each element: 16-byte record header + data
    trailer: bytes  # bytes after the last whole record

    def join(self) -> bytes:
        """Reassemble the exact byte string."""
        return self.header + b"".join(self.records) + self.trailer


def split_pcap(blob: bytes) -> SplitPcap:
    """Split pcap bytes into header/records/trailer without validating.

    Walks the record chain trusting ``incl_len`` fields; stops at the
    first record that overruns the buffer (that tail becomes the
    trailer).  Works for both byte orders; gives up gracefully (all
    bytes in ``trailer``) when even the global header is short.
    """
    if len(blob) < GLOBAL_HEADER.size:
        return SplitPcap(header=b"", records=[], trailer=blob)
    header = blob[: GLOBAL_HEADER.size]
    magic_le = struct.unpack("<I", header[:4])[0]
    endian = ">" if magic_le in (0xD4C3B2A1, 0x4D3CB2A1) else "<"
    records: list[bytes] = []
    i = GLOBAL_HEADER.size
    while i + RECORD_HEADER.size <= len(blob):
        incl_len = struct.unpack_from(endian + "I", blob, i + 8)[0]
        end = i + RECORD_HEADER.size + incl_len
        if incl_len > len(blob) or end > len(blob):
            break
        records.append(blob[i:end])
        i = end
    return SplitPcap(header=header, records=records, trailer=blob[i:])


class FaultOp:
    """One named, deterministic fault transform over pcap bytes."""

    name: str = "fault"

    def __call__(self, blob: bytes, rng: random.Random) -> bytes:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultOp {self.name}>"


class Truncate(FaultOp):
    """Cut the file at an arbitrary byte somewhere past the magic."""

    name = "truncate"

    def __call__(self, blob: bytes, rng: random.Random) -> bytes:
        if len(blob) <= _MIN_FILE:
            return blob
        # Bias toward mid-record cuts but allow any position after the
        # magic so global-header truncation is exercised too.
        cut = rng.randrange(4, len(blob))
        return blob[:cut]


class CorruptRecordHeaders(FaultOp):
    """Smash random bytes inside a few per-record headers."""

    name = "corrupt-record-header"

    def __init__(self, max_records: int = 3) -> None:
        self.max_records = max_records

    def __call__(self, blob: bytes, rng: random.Random) -> bytes:
        split = split_pcap(blob)
        if not split.records:
            return blob
        count = rng.randint(1, min(self.max_records, len(split.records)))
        for index in rng.sample(range(len(split.records)), count):
            record = bytearray(split.records[index])
            for _ in range(rng.randint(1, 4)):
                position = rng.randrange(RECORD_HEADER.size)
                record[position] = rng.randrange(256)
            split.records[index] = bytes(record)
        return split.join()


class CorruptPayload(FaultOp):
    """Flip random bytes inside captured frame data."""

    name = "corrupt-payload"

    def __init__(self, max_flips: int = 24) -> None:
        self.max_flips = max_flips

    def __call__(self, blob: bytes, rng: random.Random) -> bytes:
        split = split_pcap(blob)
        candidates = [
            i for i, r in enumerate(split.records)
            if len(r) > RECORD_HEADER.size
        ]
        if not candidates:
            return blob
        for _ in range(rng.randint(1, self.max_flips)):
            index = rng.choice(candidates)
            record = bytearray(split.records[index])
            position = rng.randrange(RECORD_HEADER.size, len(record))
            record[position] ^= 1 << rng.randrange(8)
            split.records[index] = bytes(record)
        return split.join()


class DropRecords(FaultOp):
    """Delete whole records — the file-level twin of a sniffer void."""

    name = "drop-records"

    def __init__(self, max_fraction: float = 0.2) -> None:
        self.max_fraction = max_fraction

    def __call__(self, blob: bytes, rng: random.Random) -> bytes:
        split = split_pcap(blob)
        if len(split.records) < 2:
            return blob
        rate = rng.uniform(0.02, self.max_fraction)
        kept = [r for r in split.records if rng.random() >= rate]
        if len(kept) == len(split.records):
            kept = kept[:-1]  # guarantee at least one drop
        split.records = kept
        return split.join()


class DuplicateRecords(FaultOp):
    """Repeat records in place (span ports love doing this)."""

    name = "duplicate-records"

    def __init__(self, max_fraction: float = 0.2) -> None:
        self.max_fraction = max_fraction

    def __call__(self, blob: bytes, rng: random.Random) -> bytes:
        split = split_pcap(blob)
        if not split.records:
            return blob
        rate = rng.uniform(0.02, self.max_fraction)
        doubled: list[bytes] = []
        for record in split.records:
            doubled.append(record)
            if rng.random() < rate:
                doubled.append(record)
        split.records = doubled
        return split.join()


class ReorderRecords(FaultOp):
    """Swap neighbouring records, breaking timestamp monotonicity."""

    name = "reorder-records"

    def __init__(self, max_swaps: int = 8) -> None:
        self.max_swaps = max_swaps

    def __call__(self, blob: bytes, rng: random.Random) -> bytes:
        split = split_pcap(blob)
        if len(split.records) < 2:
            return blob
        for _ in range(rng.randint(1, self.max_swaps)):
            i = rng.randrange(len(split.records) - 1)
            split.records[i], split.records[i + 1] = (
                split.records[i + 1],
                split.records[i],
            )
        return split.join()


class RegressTimestamps(FaultOp):
    """Pull some record timestamps backwards (NTP step, clock reset)."""

    name = "regress-timestamps"

    def __call__(self, blob: bytes, rng: random.Random) -> bytes:
        split = split_pcap(blob)
        if not split.records:
            return blob
        magic_le = struct.unpack("<I", split.header[:4])[0] if split.header else 0
        endian = ">" if magic_le in (0xD4C3B2A1, 0x4D3CB2A1) else "<"
        count = rng.randint(1, max(1, len(split.records) // 4))
        for index in rng.sample(range(len(split.records)), count):
            record = bytearray(split.records[index])
            ts_sec = struct.unpack_from(endian + "I", record, 0)[0]
            regress = rng.randint(1, 30)
            struct.pack_into(endian + "I", record, 0, max(0, ts_sec - regress))
            split.records[index] = bytes(record)
        return split.join()


class SliceFrames(FaultOp):
    """Re-truncate frames below the snap length, keeping headers honest.

    Models a sniffer with a short snaplen: ``incl_len`` shrinks with
    the data while ``orig_len`` keeps the wire truth, so the file stays
    structurally valid but frames lose their tails.
    """

    name = "slice-frames"

    def __call__(self, blob: bytes, rng: random.Random) -> bytes:
        split = split_pcap(blob)
        candidates = [
            i for i, r in enumerate(split.records)
            if len(r) - RECORD_HEADER.size > 16
        ]
        if not candidates:
            return blob
        magic_le = struct.unpack("<I", split.header[:4])[0] if split.header else 0
        endian = ">" if magic_le in (0xD4C3B2A1, 0x4D3CB2A1) else "<"
        count = rng.randint(1, max(1, len(candidates) // 2))
        for index in rng.sample(candidates, count):
            record = bytearray(split.records[index])
            data_len = len(record) - RECORD_HEADER.size
            keep = rng.randrange(14, data_len)
            struct.pack_into(endian + "I", record, 8, keep)
            split.records[index] = bytes(record[: RECORD_HEADER.size + keep])
        return split.join()


class FlipBgpFields(FaultOp):
    """Corrupt BGP marker/length fields found inside record payloads.

    Finds 16-byte all-ones markers in the raw record bytes (they only
    occur in BGP payloads; pcap/IP/TCP headers never contain one) and
    either damages the marker itself or inflates the following length
    field — exactly the in-stream damage the tolerant MessageDecoder
    must contain to a single message.
    """

    name = "flip-bgp"

    def __init__(self, max_hits: int = 4) -> None:
        self.max_hits = max_hits

    def __call__(self, blob: bytes, rng: random.Random) -> bytes:
        split = split_pcap(blob)
        hits: list[tuple[int, int]] = []  # (record index, offset in record)
        for index, record in enumerate(split.records):
            position = record.find(BGP_MARKER, RECORD_HEADER.size)
            while position >= 0:
                hits.append((index, position))
                position = record.find(BGP_MARKER, position + 1)
        if not hits:
            return blob
        count = rng.randint(1, min(self.max_hits, len(hits)))
        for index, position in rng.sample(hits, count):
            record = bytearray(split.records[index])
            if rng.random() < 0.5:
                # Damage the marker itself: the stream desynchronizes.
                record[position + rng.randrange(16)] ^= 0xFF
            elif position + 18 <= len(record):
                # Inflate the length field: framing lies about extent.
                struct.pack_into(
                    "!H", record, position + 16, rng.choice((0, 18, 5000, 65535))
                )
            split.records[index] = bytes(record)
        return split.join()


#: the default operator set, keyed by name (stable across releases so
#: seeds stay replayable).
OPERATORS: dict[str, FaultOp] = {
    op.name: op
    for op in (
        Truncate(),
        CorruptRecordHeaders(),
        CorruptPayload(),
        DropRecords(),
        DuplicateRecords(),
        ReorderRecords(),
        RegressTimestamps(),
        SliceFrames(),
        FlipBgpFields(),
    )
}


def mangle(
    blob: bytes,
    ops: list[str | FaultOp],
    seed: int,
) -> bytes:
    """Apply ``ops`` in order, all randomness drawn from ``seed``.

    Deterministic: the same (blob, ops, seed) triple always returns the
    same bytes.  Operator names resolve through :data:`OPERATORS`.
    """
    rng = random.Random(seed)
    for op in ops:
        resolved = OPERATORS[op] if isinstance(op, str) else op
        blob = resolved(blob, rng)
    return blob


def random_plan(
    rng: random.Random, min_ops: int = 1, max_ops: int = 3
) -> list[str]:
    """Draw a random operator plan (names, application order)."""
    count = rng.randint(min_ops, max_ops)
    return rng.sample(sorted(OPERATORS), count)
