"""Fuzz campaigns: the full T-DAT pipeline over seeded mangled traces.

Drives the robustness invariant the ingest layer promises:

* **no crash** — every mangled variant of a clean capture runs through
  ``analyze_pcap`` (and ``pcap_to_bgp``) end-to-end without an uncaught
  exception;
* **always accounted** — every run yields a
  :class:`~repro.core.health.TraceHealth` report describing what was
  dropped;
* **clean is clean** — the unmangled trace produces an empty report and
  factor vectors identical to the strict (legacy fail-fast) pipeline.

Run it from the command line (``python -m repro.faults.fuzz`` is the
deprecated spelling of the same driver)::

    tdat fuzz --seeds 200

With ``--stress``, the campaign also runs the adversarial stress corpus
(:mod:`repro.faults.stress`): well-formed traces shaped to exhaust
analysis state, checked against the resource-budget degradation
contract.

Every case is replayable: a failing seed prints its operator plan, and
``mangle(blob, plan, seed)`` regenerates the exact damaged bytes.
"""

from __future__ import annotations

import argparse
import io
import random
import sys
import traceback
from dataclasses import dataclass, field
from functools import lru_cache

from repro.faults.mangle import mangle, random_plan


@dataclass
class FuzzCase:
    """Outcome of one mangled-trace pipeline run."""

    seed: int
    ops: list[str]
    mangled_bytes: int
    connections: int = 0
    issues: int = 0
    bytes_lost: int = 0
    error: str | None = None  # traceback summary when the pipeline crashed

    @property
    def crashed(self) -> bool:
        return self.error is not None


@dataclass
class FuzzReport:
    """Aggregate outcome of a whole campaign."""

    cases: list[FuzzCase] = field(default_factory=list)
    clean_ok: bool = True
    clean_detail: str = ""
    #: populated when the campaign also ran the adversarial stress
    #: corpus (``--stress``); None when it was skipped.
    stress: "object | None" = None  # repro.faults.stress.StressReport

    @property
    def crashes(self) -> list[FuzzCase]:
        return [case for case in self.cases if case.crashed]

    @property
    def ok(self) -> bool:
        stress_ok = self.stress is None or self.stress.ok
        return not self.crashes and self.clean_ok and stress_ok

    def summary(self) -> str:
        lines = [
            f"fuzz: {len(self.cases)} mangled trace(s), "
            f"{len(self.crashes)} crash(es), "
            f"clean-trace invariant "
            f"{'ok' if self.clean_ok else 'VIOLATED'}"
        ]
        if not self.clean_ok:
            lines.append(f"  clean: {self.clean_detail}")
        for case in self.crashes:
            lines.append(
                f"  seed {case.seed} ops {','.join(case.ops)}: {case.error}"
            )
        if not self.crashes and self.cases:
            issue_total = sum(case.issues for case in self.cases)
            lines.append(
                f"  {issue_total} ingest issue(s) recorded across the campaign"
            )
        if self.stress is not None:
            lines.append(self.stress.summary())
        return "\n".join(lines)


@lru_cache(maxsize=4)
def clean_trace_bytes(
    table_prefixes: int = 2_000,
    sim_seed: int = 7,
    duration_s: int = 60,
) -> bytes:
    """A deterministic clean capture: one monitored table transfer."""
    # Imported lazily: the mangler itself must not pull in the whole
    # simulator stack.
    from repro.bgp.table import generate_table
    from repro.core.units import seconds
    from repro.netsim.simulator import Simulator
    from repro.wire.pcap import records_to_bytes
    from repro.workloads.scenarios import MonitoringSetup, RouterParams

    sim = Simulator()
    setup = MonitoringSetup(sim)
    table = generate_table(table_prefixes, random.Random(sim_seed))
    setup.add_router(RouterParams(name="fuzz-r1", ip="10.90.0.1", table=table))
    setup.start()
    sim.run(until_us=seconds(duration_s))
    return records_to_bytes(setup.sniffer.sorted_records())


def run_case(blob: bytes, seed: int, min_ops: int = 1, max_ops: int = 3) -> FuzzCase:
    """Mangle ``blob`` under ``seed`` and run the pipeline over it."""
    from repro.analysis.tdat import analyze_pcap
    from repro.tools.pcap2bgp import pcap_to_bgp

    rng = random.Random(seed)
    ops = random_plan(rng, min_ops=min_ops, max_ops=max_ops)
    mangled = mangle(blob, ops, seed)
    case = FuzzCase(seed=seed, ops=ops, mangled_bytes=len(mangled))
    try:
        report = analyze_pcap(io.BytesIO(mangled))
        pcap_to_bgp(io.BytesIO(mangled), health=report.health)
        case.connections = len(report)
        case.issues = len(report.health.issues)
        case.bytes_lost = report.health.bytes_lost
    except Exception:
        case.error = traceback.format_exc(limit=4).strip().splitlines()[-1]
    return case


def check_clean_invariant(blob: bytes) -> tuple[bool, str]:
    """Clean trace: empty TraceHealth, factors identical to strict mode."""
    from repro.analysis.tdat import analyze_pcap

    tolerant = analyze_pcap(io.BytesIO(blob))
    if not tolerant.health.ok:
        return False, (
            f"clean trace produced {len(tolerant.health.issues)} issue(s): "
            f"{tolerant.health.issues[0]}"
        )
    strict = analyze_pcap(io.BytesIO(blob), strict=True)
    if set(tolerant.analyses) != set(strict.analyses):
        return False, "tolerant and strict modes analyzed different connections"
    for key, analysis in tolerant.analyses.items():
        if analysis.factors.ratios != strict.get(key).factors.ratios:
            return False, f"factor vector drifted for {key}"
        if analysis.factors.group_vector != strict.get(key).factors.group_vector:
            return False, f"group vector drifted for {key}"
    return True, ""


def run_fuzz(
    seeds: int = 200,
    base_seed: int = 0,
    table_prefixes: int = 2_000,
    duration_s: int = 60,
    min_ops: int = 1,
    max_ops: int = 3,
    stress: bool = False,
    stress_connections: int = 2_000,
    progress=None,
) -> FuzzReport:
    """Run the whole campaign: clean invariant plus N mangled variants.

    ``stress=True`` appends the adversarial stress corpus — clean
    traces that attack analysis *state* rather than capture *bytes* —
    verified against the resource-budget degradation contract.
    """
    blob = clean_trace_bytes(
        table_prefixes=table_prefixes, duration_s=duration_s
    )
    report = FuzzReport()
    report.clean_ok, report.clean_detail = check_clean_invariant(blob)
    for i in range(seeds):
        case = run_case(blob, base_seed + i, min_ops=min_ops, max_ops=max_ops)
        report.cases.append(case)
        if progress is not None:
            progress(case)
    if stress:
        from repro.faults.stress import run_stress

        report.stress = run_stress(connections=stress_connections)
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI: run a campaign and exit nonzero on any invariant violation."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.fuzz",
        description="Fuzz the T-DAT ingest pipeline with mangled pcaps",
    )
    parser.add_argument(
        "--seeds", type=int, default=200,
        help="number of mangled variants to run (default: 200)",
    )
    parser.add_argument(
        "--base-seed", type=int, default=0,
        help="first seed of the campaign (default: 0)",
    )
    parser.add_argument(
        "--table", type=int, default=2_000,
        help="prefixes in the clean trace's table (default: 2000)",
    )
    parser.add_argument(
        "--max-ops", type=int, default=3,
        help="most fault operators composed per case (default: 3)",
    )
    parser.add_argument(
        "--stress", action="store_true",
        help="also run the adversarial stress corpus against the "
        "resource-budget degradation contract",
    )
    parser.add_argument(
        "--stress-connections", type=int, default=2_000, metavar="N",
        help="connection-flood size for --stress (default: 2000)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print every case",
    )
    args = parser.parse_args(argv)

    def progress(case: FuzzCase) -> None:
        if args.verbose or case.crashed:
            status = f"CRASH {case.error}" if case.crashed else (
                f"ok ({case.connections} conn, {case.issues} issue(s))"
            )
            print(
                f"seed {case.seed}: {','.join(case.ops)} -> {status}",
                file=sys.stderr,
            )

    report = run_fuzz(
        seeds=args.seeds,
        base_seed=args.base_seed,
        table_prefixes=args.table,
        max_ops=args.max_ops,
        stress=args.stress,
        stress_connections=args.stress_connections,
        progress=progress,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _deprecated_entry() -> int:  # pragma: no cover - exercised via CI
    # Deprecated spelling: the promoted entry point is ``tdat fuzz``.
    # The warning fires only on direct execution, never on import (the
    # CI deprecation gate imports with -W error) and never through
    # ``tdat fuzz`` (which calls :func:`main` directly).
    from repro.core.deprecation import warn_deprecated

    warn_deprecated(
        "python -m repro.faults.fuzz is deprecated; use `tdat fuzz`"
    )
    return main()


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(_deprecated_entry())
