"""Failure injection: deterministic pcap mangling and fuzz campaigns.

The paper's premise is that real capture data is dirty — tcpdump drops
packets, sniffer placement loses frames, year-long traces arrive
truncated and bit-mangled.  This package damages clean simulated
captures in all of those ways, deterministically, so the ingest
pipeline's graceful-degradation guarantees can be asserted rather than
hoped for:

* :mod:`repro.faults.mangle` — composable, seeded fault operators over
  raw pcap bytes (truncation, header/payload corruption, record
  duplication/reordering/dropping, timestamp regression, frame
  slicing, BGP marker/length flips);
* :mod:`repro.faults.fuzz` — a campaign driver that runs the full
  T-DAT pipeline over N seeded mangled variants of a clean trace and
  asserts the robustness invariant: no mangled trace crashes the
  pipeline, every run yields a TraceHealth report, and a clean trace
  yields an empty one with unchanged factor vectors.
"""

from repro.faults.mangle import (
    OPERATORS,
    FaultOp,
    mangle,
    random_plan,
    split_pcap,
)

__all__ = [
    "FaultOp",
    "FuzzCase",
    "FuzzReport",
    "OPERATORS",
    "mangle",
    "random_plan",
    "run_fuzz",
    "split_pcap",
]


def __getattr__(name):
    # repro.faults.fuzz imports lazily so `python -m repro.faults.fuzz`
    # does not re-import the module it is executing (and the mangler
    # stays importable without the simulator stack).
    if name in ("FuzzCase", "FuzzReport", "run_fuzz"):
        from repro.faults import fuzz

        return getattr(fuzz, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
