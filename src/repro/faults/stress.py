"""Adversarial stress corpus: traces built to attack analysis state.

Where :mod:`repro.faults.mangle` damages a capture's *bytes*, this
module shapes perfectly well-formed captures whose *traffic pattern*
is hostile to the analyzer's memory: connection floods that hold every
flow open at once, idle flows that never close, and pathological
reorder/overlap streams that bloat a single connection.  They exist to
drive :mod:`repro.analysis.budget` — each generator targets one limit
of a :class:`~repro.analysis.budget.ResourceBudget` — and back the CI
``budget-stress`` peak-RSS gate (``python -m repro.faults.stress``).

All generators are seeded and yield :class:`~repro.wire.pcap.PcapRecord`
objects lazily in strict timestamp order, so a 100k-connection flood
can be generated, written and re-analyzed in bounded memory.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Iterator
from dataclasses import dataclass, field
from random import Random

from repro.wire.frames import build_frame
from repro.wire.pcap import PcapRecord, PcapWriter
from repro.wire.tcpw import ACK, FIN, PSH, SYN, TcpHeader

#: all flood/idle flows converge on one collector endpoint, like the
#: paper's monitoring deployments (hundreds of peers, one tap).
COLLECTOR_IP = "10.200.0.1"
COLLECTOR_PORT = 179

#: capture epoch for generated traces (microseconds; ~2020-09-13).
BASE_TIME_US = 1_600_000_000_000_000


def _segment(
    ts_us: int,
    src_ip: str,
    src_port: int,
    dst_ip: str,
    dst_port: int,
    seq: int,
    ack: int,
    flags: int,
    payload: bytes = b"",
) -> PcapRecord:
    header = TcpHeader(
        src_port=src_port, dst_port=dst_port, seq=seq, ack=ack,
        flags=flags, window=65_535, payload=payload,
    )
    return PcapRecord(ts_us, build_frame(src_ip, dst_ip, header))


def _client(i: int) -> tuple[str, int]:
    """A unique (ip, port) per flood client, for any practical count."""
    block, slot = divmod(i, 60_000)
    ip = f"10.{(block >> 8) & 255}.{block & 255}.2"
    return ip, 1024 + slot


def connection_flood(
    connections: int = 1_000,
    data_packets: int = 2,
    payload_bytes: int = 64,
    base_time_us: int = BASE_TIME_US,
) -> Iterator[PcapRecord]:
    """Every connection opens and transfers before any of them closes.

    Peak live-flow count equals ``connections`` — the worst case for
    ``max_live_connections``.  Each flow is a complete, cleanly-closed
    transfer (handshake, ``data_packets`` ACKed data segments, FIN
    exchange), so an *ample* budget must reproduce the unbudgeted
    report byte-for-byte.

    Records are emitted step-by-step across all connections (all SYNs,
    then all SYN/ACKs, ...), one second between steps, strictly sorted
    within each step — the exact shape of a collector coming back up
    and every peer reconnecting at once.
    """
    payload = b"\xab" * payload_bytes
    step_gap = max(connections + 1, 1_000_000)
    steps: list[tuple[str, int]] = [("syn", 0), ("synack", 0), ("hs-ack", 0)]
    for k in range(data_packets):
        steps.append(("data", k))
        steps.append(("data-ack", k))
    steps += [("fin", 0), ("fin-ack", 0), ("last-ack", 0)]
    for step, (kind, k) in enumerate(steps):
        t0 = base_time_us + step * step_gap
        for i in range(connections):
            ip, port = _client(i)
            t = t0 + i
            c_seq = 1000  # client ISN
            s_seq = 5000  # collector ISN
            sent = 1 + data_packets * payload_bytes  # client seq after data
            if kind == "syn":
                yield _segment(
                    t, ip, port, COLLECTOR_IP, COLLECTOR_PORT,
                    c_seq, 0, SYN,
                )
            elif kind == "synack":
                yield _segment(
                    t, COLLECTOR_IP, COLLECTOR_PORT, ip, port,
                    s_seq, c_seq + 1, SYN | ACK,
                )
            elif kind == "hs-ack":
                yield _segment(
                    t, ip, port, COLLECTOR_IP, COLLECTOR_PORT,
                    c_seq + 1, s_seq + 1, ACK,
                )
            elif kind == "data":
                yield _segment(
                    t, ip, port, COLLECTOR_IP, COLLECTOR_PORT,
                    c_seq + 1 + k * payload_bytes, s_seq + 1,
                    ACK | PSH, payload,
                )
            elif kind == "data-ack":
                yield _segment(
                    t, COLLECTOR_IP, COLLECTOR_PORT, ip, port,
                    s_seq + 1, c_seq + 1 + (k + 1) * payload_bytes, ACK,
                )
            elif kind == "fin":
                yield _segment(
                    t, ip, port, COLLECTOR_IP, COLLECTOR_PORT,
                    c_seq + sent, s_seq + 1, ACK | FIN,
                )
            elif kind == "fin-ack":
                yield _segment(
                    t, COLLECTOR_IP, COLLECTOR_PORT, ip, port,
                    s_seq + 1, c_seq + sent + 1, ACK | FIN,
                )
            else:  # last-ack
                yield _segment(
                    t, ip, port, COLLECTOR_IP, COLLECTOR_PORT,
                    c_seq + sent + 1, s_seq + 2, ACK,
                )


def idle_flows(
    connections: int = 256,
    data_packets: int = 2,
    payload_bytes: int = 64,
    base_time_us: int = BASE_TIME_US,
) -> Iterator[PcapRecord]:
    """Flows that transfer a little and then never close.

    Without a budget the streaming ingest must hold every one of them
    until end of trace (no FIN, no RST, nothing to linger out) — the
    pattern of long-lived BGP sessions that simply stop talking.
    """
    flood = connection_flood(
        connections=connections, data_packets=data_packets,
        payload_bytes=payload_bytes, base_time_us=base_time_us,
    )
    open_steps = (3 + 2 * data_packets) * connections
    for index, record in enumerate(flood):
        if index >= open_steps:
            break  # drop the entire close phase
        yield record


def pathological_reorder(
    segments: int = 400,
    payload_bytes: int = 512,
    seed: int = 0,
    base_time_us: int = BASE_TIME_US,
) -> Iterator[PcapRecord]:
    """One connection whose data stream is a reordered, overlapping mess.

    Sequence offsets are drawn *with replacement* from the transfer
    window, so the stream is full of spurious retransmissions and
    overlaps; duplicate ACKs are interleaved.  Per-packet state keeps
    growing while the byte stream barely advances — the worst case for
    ``max_connection_packets`` / ``max_connection_bytes``.
    """
    rng = Random(seed)
    ip, port = _client(0)
    payload = b"\xcd" * payload_bytes
    t = base_time_us
    c_seq, s_seq = 1000, 5000
    yield _segment(t, ip, port, COLLECTOR_IP, COLLECTOR_PORT, c_seq, 0, SYN)
    t += 500
    yield _segment(
        t, COLLECTOR_IP, COLLECTOR_PORT, ip, port, s_seq, c_seq + 1,
        SYN | ACK,
    )
    t += 500
    yield _segment(
        t, ip, port, COLLECTOR_IP, COLLECTOR_PORT, c_seq + 1, s_seq + 1, ACK
    )
    window = max(segments // 4, 1)
    top = 0
    for _ in range(segments):
        t += rng.randint(50, 500)
        k = rng.randint(max(0, top - window), top)
        top = max(top, k + 1)
        yield _segment(
            t, ip, port, COLLECTOR_IP, COLLECTOR_PORT,
            c_seq + 1 + k * payload_bytes, s_seq + 1, ACK | PSH, payload,
        )
        for _ in range(rng.randint(0, 2)):  # dup-ACK bursts
            t += rng.randint(10, 50)
            yield _segment(
                t, COLLECTOR_IP, COLLECTOR_PORT, ip, port,
                s_seq + 1, c_seq + 1 + top * payload_bytes, ACK,
            )
    sent = 1 + top * payload_bytes
    t += 1_000
    yield _segment(
        t, ip, port, COLLECTOR_IP, COLLECTOR_PORT,
        c_seq + sent, s_seq + 1, ACK | FIN,
    )
    t += 500
    yield _segment(
        t, COLLECTOR_IP, COLLECTOR_PORT, ip, port,
        s_seq + 1, c_seq + sent + 1, ACK | FIN,
    )
    t += 500
    yield _segment(
        t, ip, port, COLLECTOR_IP, COLLECTOR_PORT,
        c_seq + sent + 1, s_seq + 2, ACK,
    )


def write_stress_pcap(path, records: Iterator[PcapRecord]) -> int:
    """Stream a generated corpus to a pcap file; returns record count."""
    count = 0
    writer = PcapWriter(path)
    try:
        for record in records:
            writer.write(record)
            count += 1
    finally:
        writer.close()
    return count


# ---------------------------------------------------------------------- #
# The degradation contract, checked over the whole corpus                 #
# ---------------------------------------------------------------------- #

#: the only health kinds a budgeted run over a *clean* stress trace may
#: produce — every one of them benign and typed.
ALLOWED_DEGRADATION_KINDS = frozenset({
    "analysis-state-evicted",
    "analysis-connection-finalized-early",
    "analysis-degraded",
    "issues-truncated",
    "packet-after-close",
})


@dataclass
class StressCase:
    """One corpus member's verdict against the degradation contract."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class StressReport:
    """Aggregate verdict of a stress-corpus run."""

    cases: list[StressCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    def summary(self) -> str:
        lines = [
            f"stress: {len(self.cases)} case(s), "
            f"{sum(1 for c in self.cases if not c.ok)} violation(s)"
        ]
        for case in self.cases:
            status = "ok" if case.ok else "VIOLATED"
            tail = f" — {case.detail}" if case.detail else ""
            lines.append(f"  {case.name}: {status}{tail}")
        return "\n".join(lines)


def analysis_fingerprint(report) -> list:
    """Result identity up to everything the analyzer derives."""
    return [
        (
            analysis.key,
            analysis.complete,
            analysis.factors.ratios,
            analysis.factors.group_vector,
            len(analysis.connection.packets),
        )
        for analysis in report
    ] + [sorted(report.health.by_kind().items())]


def _check_degraded(name: str, report, limit: int | None = None) -> StressCase:
    """A tight-budget run must degrade *gracefully*: typed and bounded."""
    summary = report.degradation
    if summary is None or not summary.degraded:
        return StressCase(name, False, "armed budget never degraded")
    if report.health.failures:
        return StressCase(
            name, False,
            f"degradation produced failures: {report.health.failures[0]}",
        )
    unknown = set(report.health.by_kind()) - ALLOWED_DEGRADATION_KINDS
    if unknown:
        return StressCase(name, False, f"untyped degradation kinds: {unknown}")
    if limit is not None and summary.peak_live_connections > limit:
        return StressCase(
            name, False,
            f"peak live {summary.peak_live_connections} exceeded "
            f"budget {limit}",
        )
    return StressCase(name, True, summary.summary())


def run_stress(connections: int = 2_000, progress=None) -> StressReport:
    """Drive the corpus through budgeted analysis; verify the contract."""
    from repro.analysis.budget import ResourceBudget
    from repro.analysis.tdat import analyze_pcap

    report = StressReport()

    def done(case: StressCase) -> None:
        report.cases.append(case)
        if progress is not None:
            progress(case)

    flood = list(connection_flood(connections=connections))
    tight_live = max(32, connections // 16)
    tight = analyze_pcap(
        flood, budget=ResourceBudget(max_live_connections=tight_live)
    )
    done(_check_degraded("flood-tight", tight, limit=tight_live))

    clean = analyze_pcap(flood, streaming=True)
    # "Ample" must clear the high watermark, not just the raw count:
    # peak live equals ``connections``, and eviction arms at 0.9×limit.
    ample = analyze_pcap(
        flood, budget=ResourceBudget(max_live_connections=connections * 2)
    )
    if ample.degradation is not None and ample.degradation.degraded:
        done(StressCase("flood-ample", False, "ample budget degraded"))
    elif analysis_fingerprint(ample) != analysis_fingerprint(clean):
        done(StressCase(
            "flood-ample", False,
            "ample-budget report diverged from unbudgeted run",
        ))
    else:
        done(StressCase(
            "flood-ample", True,
            f"byte-identical across {len(ample)} connection(s)",
        ))

    idle = list(idle_flows(connections=max(connections // 8, 64)))
    idle_live = max(16, connections // 64)
    idle_report = analyze_pcap(
        idle, budget=ResourceBudget(max_live_connections=idle_live)
    )
    done(_check_degraded("idle-tight", idle_report, limit=idle_live))

    reorder = list(pathological_reorder(segments=600))
    reorder_report = analyze_pcap(
        reorder, budget=ResourceBudget(max_connection_packets=64)
    )
    case = _check_degraded("reorder-cap", reorder_report)
    if case.ok and reorder_report.degradation.packets_shed == 0:
        case = StressCase(
            "reorder-cap", False, "connection cap shed no packets"
        )
    done(case)

    return report


# ---------------------------------------------------------------------- #
# CI peak-RSS gate driver                                                 #
# ---------------------------------------------------------------------- #
def _peak_rss_bytes() -> int:
    """This process's peak resident set (Linux ru_maxrss is in KiB)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak * 1024 if sys.platform != "darwin" else peak


def main(argv: list[str] | None = None) -> int:
    """Analyze a generated flood and gate this process's peak RSS.

    The CI ``budget-stress`` job runs this twice over the same flood:
    once with ``--max-live-connections`` and ``--rss-ceiling-mb`` (the
    bounded run must stay under the ceiling), once unbudgeted with
    ``--rss-floor-mb`` set to the same ceiling (the control must
    *exceed* it — proof the gate can actually fail).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.stress",
        description="Connection-flood analysis with a peak-RSS gate",
    )
    parser.add_argument(
        "--flood", type=int, default=100_000, metavar="N",
        help="connections in the generated flood (default: 100000)",
    )
    parser.add_argument(
        "--max-live-connections", type=int, default=None, metavar="N",
        help="analysis budget; omit for the unbudgeted control run",
    )
    parser.add_argument(
        "--rss-ceiling-mb", type=int, default=None, metavar="MB",
        help="fail (exit 1) if peak RSS exceeds this",
    )
    parser.add_argument(
        "--rss-floor-mb", type=int, default=None, metavar="MB",
        help="fail (exit 1) unless peak RSS exceeds this "
        "(control runs: proves the ceiling is binding)",
    )
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    import os
    import tempfile

    from repro.analysis.budget import ResourceBudget, StateLedger
    from repro.analysis.tdat import iter_analyze_pcap

    ledger = None
    if args.max_live_connections is not None:
        ledger = StateLedger(
            ResourceBudget(max_live_connections=args.max_live_connections)
        )
    # Stream the flood to disk first: both the bounded run and the
    # unbudgeted control then read the same file, so the only RSS
    # difference between them is the analyzer's live state.
    fd, path = tempfile.mkstemp(suffix=".pcap", prefix="stress-flood-")
    os.close(fd)
    analyzed = 0
    try:
        write_stress_pcap(path, connection_flood(connections=args.flood))
        if ledger is not None:
            # Consume-and-discard: memory is ingest state + one analysis.
            for _ in iter_analyze_pcap(path, ledger=ledger):
                analyzed += 1
        else:
            # The control is the *default* unbudgeted path — buffered
            # analysis holding every connection's packet record at once,
            # which is exactly what a user gets without opting in.
            from repro.analysis.tdat import analyze_pcap

            analyzed = len(analyze_pcap(path))
    finally:
        os.unlink(path)
    peak_mb = _peak_rss_bytes() / (1024 * 1024)
    payload = {
        "flood_connections": args.flood,
        "max_live_connections": args.max_live_connections,
        "analyzed": analyzed,
        "peak_rss_mb": round(peak_mb, 1),
        "degradation": (
            ledger.summary.to_dict() if ledger is not None else None
        ),
    }
    if payload["degradation"] is not None:
        del payload["degradation"]["evictions"]  # keep the gate log short
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"flood {args.flood}: analyzed {analyzed}, "
            f"peak RSS {peak_mb:.1f} MiB"
        )
        if ledger is not None:
            print(ledger.summary.summary())
    if args.rss_ceiling_mb is not None and peak_mb > args.rss_ceiling_mb:
        print(
            f"FAIL: peak RSS {peak_mb:.1f} MiB exceeds ceiling "
            f"{args.rss_ceiling_mb} MiB",
            file=sys.stderr,
        )
        return 1
    if args.rss_floor_mb is not None and peak_mb <= args.rss_floor_mb:
        print(
            f"FAIL: control peak RSS {peak_mb:.1f} MiB did not exceed "
            f"{args.rss_floor_mb} MiB — the gate would never bite",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
