"""The passive sniffer: link taps that record byte-faithful pcap.

The paper's collection setup (Figure 2) places a tcpdump box immediately
in front of the BGP collector, capturing both directions of the TCP
connection.  :class:`SnifferTap` reproduces that: it attaches to the
egress of one or more simulated links and serializes every observed
segment into a real Ethernet/IPv4/TCP frame with the simulation
timestamp.  Because taps observe packets *before* the next link's loss
or buffer drop, placing the tap one link upstream of the receiver makes
"downstream" (receiver-local) losses visible exactly as in the paper's
methodology (section II-B2).
"""

from __future__ import annotations

from pathlib import Path
from typing import BinaryIO

from repro.core.health import STAGE_CAPTURE, TraceHealth
from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator
from repro.wire import frames
from repro.wire.pcap import PcapRecord, write_pcap


class SnifferTap:
    """Records frames passing configured link taps into pcap records."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "sniffer",
        drop_windows: list[tuple[int, int]] | None = None,
    ) -> None:
        """``drop_windows`` are [start_us, end_us) intervals during which
        the sniffer loses packets (tcpdump drops, paper section II-A)."""
        self.sim = sim
        self.name = name
        self.drop_windows = sorted(drop_windows or [])
        self.records: list[PcapRecord] = []
        self.dropped_records = 0
        self.dropped_bytes = 0
        self._drops_per_window: list[int] = [0] * len(self.drop_windows)
        self._bytes_per_window: list[int] = [0] * len(self.drop_windows)
        self._ip_id: dict[tuple[str, str], int] = {}

    def attach(self, *links: Link) -> "SnifferTap":
        """Start observing the egress of each link."""
        for link in links:
            link.add_tap(self._observe)
        return self

    def _observe(self, packet: Packet, time_us: int) -> None:
        window = self._drop_window_index(time_us)
        if window is not None:
            self.dropped_records += 1
            self.dropped_bytes += packet.wire_length
            self._drops_per_window[window] += 1
            self._bytes_per_window[window] += packet.wire_length
            return
        if packet.ip_id is not None:
            ident = packet.ip_id
        else:
            key = (packet.src, packet.dst)
            ident = self._ip_id.get(key, 0)
            self._ip_id[key] = (ident + 1) & 0xFFFF
        frame = frames.build_frame(
            packet.src, packet.dst, packet.payload, identification=ident
        )
        self.records.append(PcapRecord(timestamp_us=time_us, data=frame))

    def _in_drop_window(self, time_us: int) -> bool:
        return self._drop_window_index(time_us) is not None

    def _drop_window_index(self, time_us: int) -> int | None:
        for i, (start, end) in enumerate(self.drop_windows):
            if start <= time_us < end:
                return i
        return None

    def health(self) -> TraceHealth:
        """Capture-side ledger: one issue per drop window that hit.

        The paper's section II-A capture voids, accounted at the
        source: downstream ingest can merge this into its own
        :class:`TraceHealth` so reports distinguish "the sniffer never
        saw it" from "the file was damaged afterwards".
        """
        health = TraceHealth(records_read=len(self.records))
        for i, (start, end) in enumerate(self.drop_windows):
            if self._drops_per_window[i] == 0:
                continue
            health.record(
                STAGE_CAPTURE, "sniffer-drop-window",
                timestamp_us=start,
                bytes_lost=self._bytes_per_window[i],
                detail=(
                    f"[{start}, {end})us: "
                    f"{self._drops_per_window[i]} frame(s) dropped"
                ),
            )
        return health

    @property
    def packet_count(self) -> int:
        """Frames captured so far."""
        return len(self.records)

    def sorted_records(self) -> list[PcapRecord]:
        """Records in timestamp order (stable across taps)."""
        return sorted(self.records, key=lambda r: r.timestamp_us)

    def write(self, target: BinaryIO | str | Path) -> int:
        """Write the capture as a pcap file; returns the record count."""
        records = self.sorted_records()
        write_pcap(target, records)
        return len(records)
