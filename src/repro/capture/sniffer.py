"""The passive sniffer: link taps that record byte-faithful pcap.

The paper's collection setup (Figure 2) places a tcpdump box immediately
in front of the BGP collector, capturing both directions of the TCP
connection.  :class:`SnifferTap` reproduces that: it attaches to the
egress of one or more simulated links and serializes every observed
segment into a real Ethernet/IPv4/TCP frame with the simulation
timestamp.  Because taps observe packets *before* the next link's loss
or buffer drop, placing the tap one link upstream of the receiver makes
"downstream" (receiver-local) losses visible exactly as in the paper's
methodology (section II-B2).
"""

from __future__ import annotations

from pathlib import Path
from typing import BinaryIO

from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator
from repro.wire import frames
from repro.wire.pcap import PcapRecord, write_pcap


class SnifferTap:
    """Records frames passing configured link taps into pcap records."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "sniffer",
        drop_windows: list[tuple[int, int]] | None = None,
    ) -> None:
        """``drop_windows`` are [start_us, end_us) intervals during which
        the sniffer loses packets (tcpdump drops, paper section II-A)."""
        self.sim = sim
        self.name = name
        self.drop_windows = sorted(drop_windows or [])
        self.records: list[PcapRecord] = []
        self.dropped_records = 0
        self._ip_id: dict[tuple[str, str], int] = {}

    def attach(self, *links: Link) -> "SnifferTap":
        """Start observing the egress of each link."""
        for link in links:
            link.add_tap(self._observe)
        return self

    def _observe(self, packet: Packet, time_us: int) -> None:
        if self._in_drop_window(time_us):
            self.dropped_records += 1
            return
        if packet.ip_id is not None:
            ident = packet.ip_id
        else:
            key = (packet.src, packet.dst)
            ident = self._ip_id.get(key, 0)
            self._ip_id[key] = (ident + 1) & 0xFFFF
        frame = frames.build_frame(
            packet.src, packet.dst, packet.payload, identification=ident
        )
        self.records.append(PcapRecord(timestamp_us=time_us, data=frame))

    def _in_drop_window(self, time_us: int) -> bool:
        return any(start <= time_us < end for start, end in self.drop_windows)

    @property
    def packet_count(self) -> int:
        """Frames captured so far."""
        return len(self.records)

    def sorted_records(self) -> list[PcapRecord]:
        """Records in timestamp order (stable across taps)."""
        return sorted(self.records, key=lambda r: r.timestamp_us)

    def write(self, target: BinaryIO | str | Path) -> int:
        """Write the capture as a pcap file; returns the record count."""
        records = self.sorted_records()
        write_pcap(target, records)
        return len(records)
