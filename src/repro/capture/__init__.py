"""Passive capture: sniffer taps producing pcap traces."""

from repro.capture.sniffer import SnifferTap

__all__ = ["SnifferTap"]
