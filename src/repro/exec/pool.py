"""The campaign/analysis work pool: fan out independent tasks, supervised.

The paper's evaluation is a population study — hundreds of table
transfers per campaign — and every transfer is an independent unit of
work: simulate (or read) a capture, run the T-DAT pipeline, emit a
record.  :class:`WorkPool` executes such units either serially
in-process (``workers=1``, the default) or across ``workers`` OS
processes, with four guarantees the campaign layer builds on:

* **determinism** — outcomes come back in submission order and every
  task derives its randomness from its own seed (see
  :func:`derive_seed`), so a parallel run is byte-identical to the
  serial one.  Retries re-run the same pure task with the same seed,
  so they preserve the property;
* **fault isolation** — a task that raises does not kill the pool or
  the sibling tasks: its exception is captured as a structured
  :class:`TaskError` in the returned :class:`TaskOutcome`, for the
  caller to fold into a :class:`~repro.core.health.TraceHealth` ledger;
* **supervision** — each worker is driven over its own duplex pipe
  (no shared queues, so killing one worker can never poison a
  sibling's lock), sends heartbeats while busy, and is subject to a
  per-task execution ``task_timeout`` (queue wait exempt); a crashed,
  hung, or stalled
  worker is terminated and replaced, and its task either retried
  (bounded ``max_retries`` with exponential backoff + deterministic
  jitter) or reported as a retryable :class:`TaskError`;
* **cheap task payloads** — bulky shared inputs (a campaign's spec
  list, an analysis configuration) travel once per worker as the pool
  *context*, never once per task: inherited for free under the
  ``fork`` start method, pickled once per worker under ``spawn``.

Task functions must be module-level callables (picklable by reference)
and read the shared input via :func:`task_context`.  A task can learn
which attempt it is running as via :func:`task_attempt` and mark its
own failures as worth retrying by raising :class:`TransientTaskError`
(or any exception with a truthy ``retryable`` attribute).

Cooperative cancellation: ``map(..., should_stop=...)`` polls the
callable between dispatches; once it returns true no new task starts,
in-flight tasks drain, and :class:`PoolInterrupted` carries the
completed outcomes — the mechanism behind campaign graceful shutdown.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import multiprocessing
import os
import signal
import threading
import time
import traceback
import warnings
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any

from repro.obs import get_obs, reset_worker_obs

SERIAL = "serial"
MULTIPROCESSING = "multiprocessing"
BACKENDS = (SERIAL, MULTIPROCESSING)

#: TaskError.kind values synthesized by the supervisor itself (as
#: opposed to captured task exception type names).
TIMEOUT_KIND = "TaskTimeout"
CRASH_KIND = "WorkerCrashed"
STALL_KIND = "WorkerStalled"

#: supervisor poll tick, seconds: the granularity of timeout/stall/
#: cancellation detection while waiting for worker messages.
_TICK_S = 0.05

# Chaos injection points the worker-side fault hooks implement (see
# the RL007 catalog in docs/robustness.md).  The names double as
# :class:`WorkerFault` directives understood by ``_worker_main``.
POINT_WORKER_CRASH = "pool.worker-crash"
POINT_WORKER_STALL = "pool.worker-stall"
POINT_HEARTBEAT_LOSS = "pool.heartbeat-loss"


@dataclass(frozen=True)
class WorkerFault:
    """One worker-side chaos directive, delivered at a (task, attempt).

    ``point`` selects the behaviour: ``pool.worker-crash`` hard-kills
    the worker with ``os._exit(exitcode)`` — before running the task,
    or (``after_task=True``) after computing the result but *before*
    delivering it, the adversarial moment between the last heartbeat
    and the ``("done", ...)`` message; ``pool.worker-stall`` stops
    heartbeats and sleeps ``seconds`` mid-task (the C-level-deadlock
    shape the stall detector exists for); ``pool.heartbeat-loss``
    silently stops heartbeats but lets the task complete — liveness
    noise that must never corrupt a result.

    Instances cross the process boundary inside the pool's ``chaos``
    hooks object, so they must stay plain picklable data.
    """

    point: str
    after_task: bool = False
    seconds: float = 5.0
    exitcode: int = 1


def available_parallelism() -> int:
    """CPUs actually usable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def derive_seed(master_seed: int, task: str) -> int:
    """A task's own RNG seed, derived from the campaign master seed.

    Uses the same SHA-256 construction as
    :class:`~repro.netsim.random.RandomStreams`, so adding or reordering
    tasks never perturbs the draws of existing ones — the property that
    makes parallel and serial campaign runs byte-identical.
    """
    digest = hashlib.sha256(f"{master_seed}:{task}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class TransientTaskError(RuntimeError):
    """A task failure worth retrying (fault injection, flaky I/O)."""

    retryable = True


class PoolInterrupted(Exception):
    """``map`` stopped early at the caller's request.

    Raised after in-flight tasks drained; ``outcomes`` holds every
    completed :class:`TaskOutcome`, in submission order.
    """

    def __init__(self, outcomes: list["TaskOutcome"]) -> None:
        super().__init__(
            f"work pool interrupted after {len(outcomes)} completed task(s)"
        )
        self.outcomes = outcomes


@dataclass(frozen=True)
class TaskError:
    """A captured task exception, picklable across process boundaries."""

    kind: str  # exception type name, or a supervisor *_KIND constant
    message: str
    traceback: str = ""
    retryable: bool = False

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


@dataclass
class TaskOutcome:
    """What one task produced: a value, or a contained failure.

    ``attempts`` counts executions (1 = no retry); ``retried`` holds
    the error of every failed attempt that was retried, oldest first.
    """

    index: int
    value: Any = None
    error: TaskError | None = None
    attempts: int = 1
    retried: tuple[TaskError, ...] = ()

    @property
    def ok(self) -> bool:
        return self.error is None


# The per-process shared input.  In worker processes it is installed by
# the worker bootstrap (inherited under fork, pickled once under
# spawn); in serial mode WorkPool.map sets it around the task loop.
_TASK_CONTEXT: Any = None
#: which attempt of the current task is executing (0 = first try).
_TASK_ATTEMPT: int = 0


def task_context() -> Any:
    """The context object passed to :meth:`WorkPool.map`, if any."""
    return _TASK_CONTEXT


def task_attempt() -> int:
    """The running task's attempt number (0 on the first execution)."""
    return _TASK_ATTEMPT


def _install_context(context: Any) -> None:
    global _TASK_CONTEXT
    _TASK_CONTEXT = context


def _run_one(
    payload: tuple[Callable[[Any], Any], int, Any], attempt: int = 0
) -> TaskOutcome:
    """Execute one task, containing any exception it raises."""
    global _TASK_ATTEMPT
    fn, index, item = payload
    _TASK_ATTEMPT = attempt
    try:
        return TaskOutcome(index=index, value=fn(item))
    except BaseException as exc:  # noqa: BLE001 - isolation is the point
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return TaskOutcome(
            index=index,
            error=TaskError(
                kind=type(exc).__name__,
                message=str(exc),
                traceback=traceback.format_exc(),
                retryable=bool(getattr(exc, "retryable", False)),
            ),
        )
    finally:
        _TASK_ATTEMPT = 0


# ---------------------------------------------------------------------- #
# Worker side                                                             #
# ---------------------------------------------------------------------- #
def _worker_main(
    conn, context: Any, heartbeat_interval_s: float, chaos: Any = None
) -> None:
    """Serve tasks over ``conn`` until told to exit.

    Protocol (parent -> worker): ``("task", attempt, payload)`` or
    ``("exit",)``.  Worker -> parent: ``("start", index, attempt)``
    when a task begins, ``("beat",)`` every heartbeat interval while
    alive, ``("done", outcome)`` when a task finishes.

    ``chaos`` (test-only, installed via ``WorkPool(chaos=...)``) is
    consulted per (task index, attempt): a returned
    :class:`WorkerFault` makes this worker crash, stall or go silent
    at that exact point — the seeded fault schedules ``repro.chaos``
    drives through the supervisor.
    """
    # Graceful campaign shutdown is the parent's decision: a terminal
    # Ctrl-C must not kill in-flight episodes before they can be
    # checkpointed, so workers ignore SIGINT and obey the parent.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass
    # A forked worker inherits the parent's live observability context;
    # recordings into it would die with the worker and cost time
    # meanwhile.  Reset to the no-op path; tasks that want worker-side
    # observability install their own task-local context.
    reset_worker_obs()
    _install_context(context)
    send_lock = threading.Lock()
    stop_beats = threading.Event()

    def _send(message) -> None:
        with send_lock:
            conn.send(message)

    def _beat_loop() -> None:
        while not stop_beats.wait(heartbeat_interval_s):
            try:
                _send(("beat",))
            except (BrokenPipeError, OSError):
                return

    beater = None
    if heartbeat_interval_s and heartbeat_interval_s > 0:
        beater = threading.Thread(
            target=_beat_loop, name="pool-heartbeat", daemon=True
        )
        beater.start()
    try:
        while True:
            message = conn.recv()
            if message[0] == "exit":
                break
            _, attempt, payload = message
            fault = (
                chaos.fault_for(payload[1], attempt)
                if chaos is not None else None
            )
            if fault is not None and fault.point == POINT_HEARTBEAT_LOSS:
                # Go silent, but keep working: heartbeat loss alone
                # must never change a result, only liveness accounting.
                stop_beats.set()
            _send(("start", payload[1], attempt))
            if fault is not None and fault.point == POINT_WORKER_CRASH:
                if not fault.after_task:
                    os._exit(fault.exitcode)
            if fault is not None and fault.point == POINT_WORKER_STALL:
                stop_beats.set()
                time.sleep(fault.seconds)
            outcome = _run_one(payload, attempt=attempt)
            if (
                fault is not None
                and fault.point == POINT_WORKER_CRASH
                and fault.after_task
            ):
                # The satellite scenario: die *between* the last
                # heartbeat and result delivery — the computed outcome
                # is lost and the supervisor must re-run, not wait.
                os._exit(fault.exitcode)
            _send(("done", outcome))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        stop_beats.set()
        if beater is not None:
            # The beat loop wakes immediately once stop_beats is set;
            # the timeout only bounds a beater wedged mid-send on a
            # full pipe whose reader died.
            beater.join(timeout=1.0)
        try:
            conn.close()
        except OSError:
            pass


@dataclass
class _Worker:
    """Parent-side handle of one supervised worker process."""

    proc: Any
    conn: Any
    busy: tuple[int, int] | None = None  # (task index, attempt)
    payload: tuple | None = None
    retried: tuple[TaskError, ...] = ()
    dispatched_at: float = 0.0  # when the parent sent the task
    enqueued_at: float = 0.0  # when the task became dispatchable
    # When the worker reported actually *starting* the task.  The
    # task_timeout clock runs from here, never from dispatch: time a
    # task spent queued (behind a slow sibling, or behind a spawning
    # worker's interpreter boot and context unpickle) is not the
    # task's to pay.  A worker that never reports a start is the
    # stall/crash detectors' problem, not the timeout's.
    exec_started_at: float | None = None
    last_beat: float = 0.0
    dead: bool = False


class WorkPool:
    """Execute independent tasks serially or across worker processes.

    ``workers <= 1`` selects the serial backend (no subprocesses, no
    pickling); ``workers > 1`` the supervised multiprocessing backend.
    When process creation is unavailable (restricted sandboxes), the
    pool degrades to serial execution with a warning rather than
    failing — results are identical either way.

    Supervision knobs:

    * ``task_timeout`` — wall-clock seconds one task may *execute*
      before its worker is killed and the task marked
      :data:`TIMEOUT_KIND`.  The clock starts when the worker reports
      the task started, so time spent queued — behind a slow sibling,
      or behind a spawning worker's interpreter boot — is never charged
      against the budget (observable as the ``pool.queue_wait_s``
      metric).  Parallel backend only: the serial backend cannot
      preempt itself, so in-process hangs are the simulation watchdog's
      job;
    * ``max_retries`` — how many times a *retryable* failure (worker
      crash, timeout, stall, :class:`TransientTaskError`) is re-run
      before being reported;
    * ``retry_backoff_s`` — base of the exponential backoff between
      retries; the jitter is derived deterministically from the task
      index and attempt (see :meth:`retry_delay`), so schedules are
      reproducible;
    * ``heartbeat_interval_s`` — how often busy workers prove liveness;
      ``stall_timeout_s`` (optional) kills a worker whose process is
      alive but has stopped heartbeating (C-level deadlock, SIGSTOP).

    After each ``map`` the ``stats`` dict reports what the supervisor
    saw: heartbeats received, timeouts, crashes, stalls, retries,
    worker replacements.
    """

    def __init__(
        self,
        workers: int = 1,
        start_method: str | None = None,
        chunksize: int = 1,
        task_timeout: float | None = None,
        max_retries: int = 0,
        retry_backoff_s: float = 0.05,
        heartbeat_interval_s: float = 0.5,
        stall_timeout_s: float | None = None,
        chaos: Any = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.chunksize = max(1, int(chunksize))  # kept for API compat
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self.task_timeout = task_timeout
        self.max_retries = max(0, int(max_retries))
        self.retry_backoff_s = max(0.0, float(retry_backoff_s))
        self.heartbeat_interval_s = heartbeat_interval_s
        self.stall_timeout_s = stall_timeout_s
        # Worker-side fault hooks (repro.chaos): an object with a
        # picklable ``fault_for(index, attempt) -> WorkerFault | None``.
        # Parallel backend only — the serial backend runs tasks in the
        # supervisor's own process, where a crash directive would kill
        # the campaign itself rather than model a worker failure.
        self.chaos = chaos
        self.stats: dict[str, int] = {}

    @property
    def backend(self) -> str:
        return SERIAL if self.workers <= 1 else MULTIPROCESSING

    def retry_delay(self, index: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of task ``index``.

        Exponential in the attempt with a deterministic jitter fraction
        in [0.5, 1.0) derived from (index, attempt) — reproducible, yet
        decorrelated across tasks so a burst of transient failures does
        not retry in lockstep.
        """
        if self.retry_backoff_s <= 0:
            return 0.0
        jitter = derive_seed(index, f"retry-{attempt}") / 2**64
        return self.retry_backoff_s * (2 ** (attempt - 1)) * (0.5 + 0.5 * jitter)

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        context: Any = None,
        should_stop: Callable[[], bool] | None = None,
        on_outcome: Callable[[TaskOutcome], None] | None = None,
    ) -> list[TaskOutcome]:
        """Run ``fn`` over ``items``; outcomes in submission order.

        ``fn`` must be a module-level callable when the pool is
        parallel.  ``context`` is made available to every task via
        :func:`task_context` — shipped once per worker, not per task.
        ``on_outcome`` is invoked in the parent as each task resolves
        (completion order under the parallel backend) — the campaign
        layer's incremental checkpoint hook.  ``should_stop`` is polled
        between dispatches; once true, in-flight tasks drain and
        :class:`PoolInterrupted` is raised with the completed outcomes.
        """
        payloads = [(fn, i, item) for i, item in enumerate(items)]
        try:
            if self.workers <= 1 or len(payloads) <= 1:
                return self._map_serial(
                    payloads, context, should_stop, on_outcome
                )
            try:
                return self._map_supervised(
                    payloads, context, should_stop, on_outcome
                )
            except _SpawnFailed as exc:
                warnings.warn(
                    f"multiprocessing unavailable ({exc.__cause__}); "
                    "falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return self._map_serial(
                    payloads, context, should_stop, on_outcome
                )
        finally:
            self._flush_stats_metrics()

    def _flush_stats_metrics(self) -> None:
        """Publish the supervisor's per-map stats as pool counters.

        All pool metrics are wall-domain: what the supervisor saw
        depends on the execution substrate (worker count, host load),
        so none of them participate in deterministic snapshots.
        """
        obs = get_obs()
        if not obs.enabled:
            return
        for key, value in self.stats.items():
            if value:
                obs.metrics.counter(f"pool.{key}", wall=True).inc(value)

    # ------------------------------------------------------------------ #
    # Serial backend                                                     #
    # ------------------------------------------------------------------ #
    def _map_serial(
        self,
        payloads: Sequence[tuple],
        context: Any,
        should_stop: Callable[[], bool] | None,
        on_outcome: Callable[[TaskOutcome], None] | None,
    ) -> list[TaskOutcome]:
        _install_context(context)
        self.stats = _fresh_stats()
        obs = get_obs()
        map_started = time.monotonic()
        try:
            outcomes: list[TaskOutcome] = []
            for payload in payloads:
                if should_stop is not None and should_stop():
                    raise PoolInterrupted(outcomes)
                if obs.enabled:
                    # Serially, a task "queues" behind every task ahead
                    # of it — the same wait the parallel backend would
                    # measure, just with one lane.
                    started = time.monotonic()
                    obs.metrics.histogram(
                        "pool.queue_wait_s", wall=True
                    ).observe(started - map_started)
                    outcome = self._run_with_retries(payload)
                    obs.metrics.histogram(
                        "pool.execute_s", wall=True
                    ).observe(time.monotonic() - started)
                else:
                    outcome = self._run_with_retries(payload)
                outcomes.append(outcome)
                if on_outcome is not None:
                    on_outcome(outcome)
            return outcomes
        finally:
            _install_context(None)

    def _run_with_retries(self, payload: tuple) -> TaskOutcome:
        index = payload[1]
        retried: list[TaskError] = []
        attempt = 0
        while True:
            outcome = _run_one(payload, attempt=attempt)
            if (
                outcome.ok
                or not outcome.error.retryable
                or attempt >= self.max_retries
            ):
                outcome.attempts = attempt + 1
                outcome.retried = tuple(retried)
                return outcome
            retried.append(outcome.error)
            self.stats["retries"] += 1
            attempt += 1
            delay = self.retry_delay(index, attempt)
            if delay > 0:
                time.sleep(delay)

    # ------------------------------------------------------------------ #
    # Supervised parallel backend                                        #
    # ------------------------------------------------------------------ #
    def _spawn_worker(self, ctx, context: Any) -> _Worker:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(
                child_conn, context, self.heartbeat_interval_s, self.chaos,
            ),
            daemon=True,
        )
        try:
            proc.start()
        except (OSError, ImportError) as exc:
            parent_conn.close()
            child_conn.close()
            raise _SpawnFailed() from exc
        child_conn.close()  # the parent keeps only its own end
        now = time.monotonic()
        self.stats["spawned"] += 1
        return _Worker(proc=proc, conn=parent_conn, last_beat=now)

    def _map_supervised(
        self,
        payloads: Sequence[tuple],
        context: Any,
        should_stop: Callable[[], bool] | None,
        on_outcome: Callable[[TaskOutcome], None] | None,
    ) -> list[TaskOutcome]:
        ctx = multiprocessing.get_context(self.start_method)
        total = len(payloads)
        self.stats = _fresh_stats()
        obs = get_obs()
        results: dict[int, TaskOutcome] = {}
        # (attempt, payload, retried-errors, enqueued-at) not yet
        # dispatched; enqueued-at marks when the task became
        # dispatchable, the zero point of its queue-wait measurement.
        map_started = time.monotonic()
        pending: deque[tuple[int, tuple, tuple[TaskError, ...], float]] = deque(
            (0, payload, (), map_started) for payload in payloads
        )
        # min-heap of retries waiting out their backoff delay.
        delayed: list[tuple[float, int, int, tuple, tuple]] = []
        tiebreak = itertools.count()
        workers: list[_Worker] = []
        stopping = False

        def resolve(worker: _Worker, outcome: TaskOutcome, now: float) -> None:
            """Fold a finished attempt: record it, or schedule a retry."""
            index, attempt = worker.busy
            retried = worker.retried
            payload = worker.payload
            worker.busy = None
            worker.payload = None
            worker.retried = ()
            worker.exec_started_at = None
            if (
                outcome.ok
                or not outcome.error.retryable
                or attempt >= self.max_retries
            ):
                outcome.attempts = attempt + 1
                outcome.retried = retried
                results[index] = outcome
                if on_outcome is not None:
                    on_outcome(outcome)
                return
            self.stats["retries"] += 1
            due = now + self.retry_delay(index, attempt + 1)
            heapq.heappush(
                delayed,
                (due, next(tiebreak), attempt + 1, payload,
                 retried + (outcome.error,)),
            )

        def fail_busy(worker: _Worker, kind: str, message: str, now: float):
            """Account a supervisor-detected failure of a busy worker."""
            if worker.busy is None:
                return
            index, _ = worker.busy
            error = TaskError(kind=kind, message=message, retryable=True)
            resolve(worker, TaskOutcome(index=index, error=error), now)

        try:
            workers = [
                self._spawn_worker(ctx, context)
                for _ in range(min(self.workers, total))
            ]
            while True:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, _, attempt, payload, retried = heapq.heappop(delayed)
                    # A retry is dispatchable only once its backoff has
                    # elapsed; its queue wait starts now, not when the
                    # failed attempt resolved.
                    pending.append((attempt, payload, retried, now))
                if not stopping and should_stop is not None and should_stop():
                    stopping = True
                if stopping:
                    # Drain mode: no new dispatches, in-flight finish.
                    pending.clear()
                    delayed.clear()
                if len(results) == total:
                    break
                busy = [w for w in workers if w.busy is not None]
                if stopping and not busy:
                    break
                if not busy and not pending and not delayed:
                    raise RuntimeError(
                        "work pool lost track of "
                        f"{total - len(results)} task(s)"
                    )
                # Dispatch to idle workers.  Connection.send pickles
                # synchronously, so an unpicklable payload raises right
                # here in the parent — and the finally block below
                # still reaps every worker (no leaked processes).
                if not stopping:
                    for worker in workers:
                        if worker.busy is None and pending:
                            attempt, payload, retried, queued_at = (
                                pending.popleft()
                            )
                            try:
                                worker.conn.send(("task", attempt, payload))
                            except (BrokenPipeError, OSError):
                                # The worker died while idle — between
                                # delivering its last result and this
                                # dispatch.  The task is not lost:
                                # requeue it at the front and let the
                                # reconcile pass below retire (and,
                                # with work pending, replace) the dead
                                # worker instead of crashing the map.
                                pending.appendleft(
                                    (attempt, payload, retried, queued_at)
                                )
                                worker.dead = True
                                continue
                            worker.busy = (payload[1], attempt)
                            worker.payload = payload
                            worker.retried = retried
                            worker.dispatched_at = now
                            worker.enqueued_at = queued_at
                            worker.exec_started_at = None
                            worker.last_beat = now
                # Wait for worker messages (or a tick, to re-check
                # timeouts, stalls, deaths and cancellation).
                conns = {w.conn: w for w in workers if not w.dead}
                if conns:
                    ready = mp_connection.wait(list(conns), timeout=_TICK_S)
                else:
                    time.sleep(_TICK_S)
                    ready = []
                now = time.monotonic()
                for conn in ready:
                    worker = conns[conn]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        worker.dead = True
                        continue
                    tag = message[0]
                    if tag == "beat":
                        if obs.enabled and worker.last_beat:
                            obs.metrics.histogram(
                                "pool.heartbeat_gap_s", wall=True
                            ).observe(now - worker.last_beat)
                        worker.last_beat = now
                        self.stats["beats"] += 1
                    elif tag == "start":
                        # The worker has actually begun executing: the
                        # task_timeout clock starts here, and everything
                        # before it — queued behind a busy sibling, a
                        # spawning worker's interpreter boot, context
                        # unpickling — is accounted as queue wait.
                        worker.exec_started_at = now
                        worker.last_beat = now
                        if obs.enabled:
                            obs.metrics.histogram(
                                "pool.queue_wait_s", wall=True
                            ).observe(now - worker.enqueued_at)
                    elif tag == "done" and worker.busy is not None:
                        if obs.enabled and worker.exec_started_at is not None:
                            obs.metrics.histogram(
                                "pool.execute_s", wall=True
                            ).observe(now - worker.exec_started_at)
                        resolve(worker, message[1], now)
                # Reconcile worker health: kill the hung and stalled,
                # account the dead, replace whoever more work needs.
                now = time.monotonic()
                for worker in list(workers):
                    retire_kind = None
                    if worker.dead or not worker.proc.is_alive():
                        retire_kind = CRASH_KIND
                        detail = (
                            f"worker exited (code {worker.proc.exitcode}) "
                            f"while running its task"
                        )
                    elif worker.busy is not None:
                        # Timeout runs from the worker's reported exec
                        # start, never from dispatch: queue wait is not
                        # the task's to pay.  A worker that never sends
                        # "start" is covered by stall/crash detection.
                        elapsed = (
                            now - worker.exec_started_at
                            if worker.exec_started_at is not None
                            else 0.0
                        )
                        beat_gap = now - worker.last_beat
                        if (
                            self.task_timeout is not None
                            and worker.exec_started_at is not None
                            and elapsed > self.task_timeout
                        ):
                            retire_kind = TIMEOUT_KIND
                            detail = (
                                f"task exceeded its {self.task_timeout:g}s "
                                f"budget (ran {elapsed:.1f}s)"
                            )
                            self.stats["timeouts"] += 1
                        elif (
                            self.stall_timeout_s is not None
                            and self.heartbeat_interval_s
                            and beat_gap > self.stall_timeout_s
                        ):
                            retire_kind = STALL_KIND
                            detail = (
                                "worker stopped heartbeating for "
                                f"{beat_gap:.1f}s mid-task"
                            )
                            self.stats["stalls"] += 1
                    if retire_kind is None:
                        continue
                    if retire_kind == CRASH_KIND:
                        self.stats["crashes"] += 1
                    workers.remove(worker)
                    self._kill(worker)
                    if worker.busy is not None:
                        index, _ = worker.busy
                        fail_busy(
                            worker, retire_kind,
                            f"task {index}: {detail}", now,
                        )
                    # Replace the worker only while undispatched work
                    # remains; retries pushed by fail_busy count.
                    if pending or delayed:
                        self.stats["replacements"] += 1
                        workers.append(self._spawn_worker(ctx, context))
            if stopping and len(results) < total:
                raise PoolInterrupted([results[i] for i in sorted(results)])
            return [results[i] for i in range(total)]
        finally:
            self._shutdown_workers(workers)

    def _kill(self, worker: _Worker) -> None:
        try:
            worker.proc.terminate()
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=1.0)
        except OSError:
            pass
        try:
            worker.conn.close()
        except OSError:
            pass

    def _shutdown_workers(self, workers: list[_Worker]) -> None:
        """Stop every worker — the ``finally`` path behind every map.

        Idle workers get a cooperative exit message; anything still
        alive after a short grace (including workers busy when the map
        raised) is terminated and joined, so a parent-side exception
        can never leak worker processes.
        """
        for worker in workers:
            if worker.busy is None and worker.proc.is_alive():
                try:
                    worker.conn.send(("exit",))
                except (OSError, ValueError, BrokenPipeError):
                    pass
        deadline = time.monotonic() + 2.0
        for worker in workers:
            try:
                worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
                if worker.proc.is_alive():
                    worker.proc.terminate()
                    worker.proc.join(timeout=1.0)
                if worker.proc.is_alive():
                    worker.proc.kill()
                    worker.proc.join(timeout=1.0)
            except OSError:
                pass
            try:
                worker.conn.close()
            except OSError:
                pass


class _SpawnFailed(Exception):
    """Worker process creation failed (restricted environment)."""


def _fresh_stats() -> dict[str, int]:
    return {
        "beats": 0,
        "timeouts": 0,
        "stalls": 0,
        "crashes": 0,
        "retries": 0,
        "spawned": 0,
        "replacements": 0,
    }
