"""The campaign/analysis work pool: fan out independent tasks.

The paper's evaluation is a population study — hundreds of table
transfers per campaign — and every transfer is an independent unit of
work: simulate (or read) a capture, run the T-DAT pipeline, emit a
record.  :class:`WorkPool` executes such units either serially
in-process (``workers=1``, the default) or across ``workers`` OS
processes, with three guarantees the campaign layer builds on:

* **determinism** — outcomes come back in submission order and every
  task derives its randomness from its own seed (see
  :func:`derive_seed`), so a parallel run is byte-identical to the
  serial one;
* **fault isolation** — a task that raises does not kill the pool or
  the sibling tasks: its exception is captured as a structured
  :class:`TaskError` in the returned :class:`TaskOutcome`, for the
  caller to fold into a :class:`~repro.core.health.TraceHealth` ledger;
* **cheap task payloads** — bulky shared inputs (a campaign's spec
  list, an analysis configuration) travel once per worker as the pool
  *context*, never once per task: inherited for free under the
  ``fork`` start method, pickled once per worker under ``spawn``.

Task functions must be module-level callables (picklable by reference)
and read the shared input via :func:`task_context`.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import traceback
import warnings
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any

SERIAL = "serial"
MULTIPROCESSING = "multiprocessing"
BACKENDS = (SERIAL, MULTIPROCESSING)


def available_parallelism() -> int:
    """CPUs actually usable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def derive_seed(master_seed: int, task: str) -> int:
    """A task's own RNG seed, derived from the campaign master seed.

    Uses the same SHA-256 construction as
    :class:`~repro.netsim.random.RandomStreams`, so adding or reordering
    tasks never perturbs the draws of existing ones — the property that
    makes parallel and serial campaign runs byte-identical.
    """
    digest = hashlib.sha256(f"{master_seed}:{task}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class TaskError:
    """A captured task exception, picklable across process boundaries."""

    kind: str  # exception type name
    message: str
    traceback: str = ""

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


@dataclass
class TaskOutcome:
    """What one task produced: a value, or a contained failure."""

    index: int
    value: Any = None
    error: TaskError | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


# The per-process shared input.  In worker processes it is installed by
# the pool initializer (inherited under fork, pickled once under
# spawn); in serial mode WorkPool.map sets it around the task loop.
_TASK_CONTEXT: Any = None


def task_context() -> Any:
    """The context object passed to :meth:`WorkPool.map`, if any."""
    return _TASK_CONTEXT


def _install_context(context: Any) -> None:
    global _TASK_CONTEXT
    _TASK_CONTEXT = context


def _run_one(payload: tuple[Callable[[Any], Any], int, Any]) -> TaskOutcome:
    """Execute one task, containing any exception it raises."""
    fn, index, item = payload
    try:
        return TaskOutcome(index=index, value=fn(item))
    except BaseException as exc:  # noqa: BLE001 - isolation is the point
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return TaskOutcome(
            index=index,
            error=TaskError(
                kind=type(exc).__name__,
                message=str(exc),
                traceback=traceback.format_exc(),
            ),
        )


class WorkPool:
    """Execute independent tasks serially or across worker processes.

    ``workers <= 1`` selects the serial backend (no subprocesses, no
    pickling); ``workers > 1`` the multiprocessing backend.  When
    process creation is unavailable (restricted sandboxes), the pool
    degrades to serial execution with a warning rather than failing —
    results are identical either way.
    """

    def __init__(
        self,
        workers: int = 1,
        start_method: str | None = None,
        chunksize: int = 1,
    ) -> None:
        self.workers = max(1, int(workers))
        self.chunksize = max(1, int(chunksize))
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method

    @property
    def backend(self) -> str:
        return SERIAL if self.workers <= 1 else MULTIPROCESSING

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        context: Any = None,
    ) -> list[TaskOutcome]:
        """Run ``fn`` over ``items``; outcomes in submission order.

        ``fn`` must be a module-level callable when the pool is
        parallel.  ``context`` is made available to every task via
        :func:`task_context` — shipped once per worker, not per task.
        """
        payloads = [(fn, i, item) for i, item in enumerate(items)]
        if self.workers <= 1 or len(payloads) <= 1:
            return self._map_serial(payloads, context)
        try:
            return self._map_parallel(payloads, context)
        except (OSError, ImportError) as exc:
            warnings.warn(
                f"multiprocessing unavailable ({exc}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return self._map_serial(payloads, context)

    def _map_serial(
        self, payloads: Sequence[tuple], context: Any
    ) -> list[TaskOutcome]:
        _install_context(context)
        try:
            return [_run_one(payload) for payload in payloads]
        finally:
            _install_context(None)

    def _map_parallel(
        self, payloads: Sequence[tuple], context: Any
    ) -> list[TaskOutcome]:
        ctx = multiprocessing.get_context(self.start_method)
        processes = min(self.workers, len(payloads))
        with ctx.Pool(
            processes=processes,
            initializer=_install_context,
            initargs=(context,),
        ) as pool:
            outcomes = pool.map(_run_one, payloads, chunksize=self.chunksize)
        # Pool.map preserves submission order; assert the contract the
        # campaign layer's determinism rests on.
        for position, outcome in enumerate(outcomes):
            if outcome.index != position:
                raise RuntimeError(
                    "work pool returned outcomes out of order "
                    f"({outcome.index} at position {position})"
                )
        return outcomes
