"""Parallel execution substrate: the work pool behind campaigns."""

from repro.exec.pool import (
    BACKENDS,
    MULTIPROCESSING,
    SERIAL,
    TaskError,
    TaskOutcome,
    WorkPool,
    available_parallelism,
    derive_seed,
    task_context,
)

__all__ = [
    "BACKENDS",
    "MULTIPROCESSING",
    "SERIAL",
    "TaskError",
    "TaskOutcome",
    "WorkPool",
    "available_parallelism",
    "derive_seed",
    "task_context",
]
