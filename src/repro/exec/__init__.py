"""Parallel execution substrate: the work pool behind campaigns."""

from repro.exec.pool import (
    BACKENDS,
    CRASH_KIND,
    MULTIPROCESSING,
    SERIAL,
    STALL_KIND,
    TIMEOUT_KIND,
    PoolInterrupted,
    TaskError,
    TaskOutcome,
    TransientTaskError,
    WorkPool,
    available_parallelism,
    derive_seed,
    task_attempt,
    task_context,
)

__all__ = [
    "BACKENDS",
    "CRASH_KIND",
    "MULTIPROCESSING",
    "SERIAL",
    "STALL_KIND",
    "TIMEOUT_KIND",
    "PoolInterrupted",
    "TaskError",
    "TaskOutcome",
    "TransientTaskError",
    "WorkPool",
    "available_parallelism",
    "derive_seed",
    "task_attempt",
    "task_context",
]
