"""Wire formats: pcap files and Ethernet/IPv4/TCP framing."""

from repro.wire import ethernet, ip, tcpw
from repro.wire.pcap import (
    PcapError,
    PcapReader,
    PcapRecord,
    PcapWriter,
    read_pcap,
    records_to_bytes,
    write_pcap,
)

__all__ = [
    "PcapError",
    "PcapReader",
    "PcapRecord",
    "PcapWriter",
    "ethernet",
    "ip",
    "read_pcap",
    "records_to_bytes",
    "tcpw",
    "write_pcap",
]
