"""IPv4 header encoding and decoding (no options, no fragmentation).

BGP sessions between routers never fragment in practice (MSS keeps TCP
segments under the MTU), so this codec supports exactly what the
captures contain: 20-byte headers, protocol TCP, valid checksums.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

PROTO_TCP = 6
HEADER_LEN = 20

_HEADER = struct.Struct("!BBHHHBBH4s4s")


class IpError(ValueError):
    """Raised on malformed IPv4 headers."""


def ip_to_bytes(ip: str) -> bytes:
    """Dotted-quad string to 4 network-order bytes."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise IpError(f"bad IPv4 address {ip!r}")
    try:
        octets = [int(p) for p in parts]
    except ValueError as exc:
        raise IpError(f"bad IPv4 address {ip!r}") from exc
    if not all(0 <= o <= 255 for o in octets):
        raise IpError(f"bad IPv4 address {ip!r}")
    return bytes(octets)


# Captures see the same handful of endpoints millions of times; cache
# the rendered strings (bounded: cleared wholesale if damaged input
# ever floods it with garbage addresses).
_IP_STR_CACHE: dict[bytes, str] = {}
_IP_STR_CACHE_LIMIT = 65536


def bytes_to_ip(raw: bytes) -> str:
    """4 bytes to a dotted-quad string."""
    cached = _IP_STR_CACHE.get(raw)
    if cached is not None:
        return cached
    if len(raw) != 4:
        raise IpError(f"IPv4 address needs 4 bytes, got {len(raw)}")
    rendered = ".".join(str(b) for b in raw)
    if len(_IP_STR_CACHE) >= _IP_STR_CACHE_LIMIT:
        _IP_STR_CACHE.clear()
    _IP_STR_CACHE[bytes(raw)] = rendered
    return rendered


def checksum(data: bytes | bytearray | memoryview) -> int:
    """The Internet checksum (RFC 1071) over any bytes-like ``data``.

    Odd-length input is zero-padded on the right per RFC 1071's
    "padded at the end with zero" rule; the pad is explicit (never a
    truncation) and works for memoryview/bytearray inputs too.
    """
    if len(data) % 2:
        data = bytes(data) + b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


@dataclass(frozen=True)
class Ipv4Header:
    """A decoded (or to-be-encoded) IPv4 header plus payload."""

    src: str
    dst: str
    payload: bytes
    ttl: int = 64
    protocol: int = PROTO_TCP
    identification: int = 0
    dscp: int = 0
    header_checksum: int = field(default=0, compare=False)

    @property
    def total_length(self) -> int:
        """Header plus payload length in bytes."""
        return HEADER_LEN + len(self.payload)

    def encode(self) -> bytes:
        """Serialize with a freshly computed header checksum."""
        version_ihl = (4 << 4) | (HEADER_LEN // 4)
        flags_fragment = 0x4000  # Don't Fragment, offset 0.
        header = _HEADER.pack(
            version_ihl,
            self.dscp << 2,
            self.total_length,
            self.identification,
            flags_fragment,
            self.ttl,
            self.protocol,
            0,
            ip_to_bytes(self.src),
            ip_to_bytes(self.dst),
        )
        csum = checksum(header)
        return header[:10] + struct.pack("!H", csum) + header[12:] + self.payload


def decode(data: bytes, verify_checksum: bool = True) -> Ipv4Header:
    """Parse wire bytes into an :class:`Ipv4Header`."""
    if len(data) < HEADER_LEN:
        raise IpError(f"IPv4 packet too short: {len(data)} bytes")
    (
        version_ihl,
        tos,
        total_length,
        identification,
        _flags_fragment,
        ttl,
        protocol,
        header_checksum,
        src_raw,
        dst_raw,
    ) = _HEADER.unpack_from(data)
    version = version_ihl >> 4
    ihl = (version_ihl & 0x0F) * 4
    if version != 4:
        raise IpError(f"not IPv4 (version={version})")
    if ihl < HEADER_LEN or len(data) < ihl:
        raise IpError(f"bad IHL {ihl}")
    if total_length < ihl or total_length > len(data):
        raise IpError(
            f"total length {total_length} inconsistent with {len(data)} bytes"
        )
    if verify_checksum and checksum(data[:ihl]) != 0:
        raise IpError("IPv4 header checksum mismatch")
    return Ipv4Header(
        src=bytes_to_ip(src_raw),
        dst=bytes_to_ip(dst_raw),
        payload=data[ihl:total_length],
        ttl=ttl,
        protocol=protocol,
        identification=identification,
        dscp=tos >> 2,
        header_checksum=header_checksum,
    )
