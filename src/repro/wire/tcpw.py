"""TCP header encoding and decoding (with MSS and window-scale options).

The codec is deliberately complete enough for analysis tools to consume
captures produced by the simulator with off-the-shelf software: real
flags, real checksums over the IPv4 pseudo-header, and the two options
BGP-era routers actually negotiated (MSS, occasionally window scale).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.wire.ip import checksum, ip_to_bytes

BASE_HEADER_LEN = 20

FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20

OPT_END = 0
OPT_NOP = 1
OPT_MSS = 2
OPT_WSCALE = 3
OPT_SACK_PERMITTED = 4
OPT_SACK = 5

_HEADER = struct.Struct("!HHIIBBHHH")


class TcpError(ValueError):
    """Raised on malformed TCP headers."""


@dataclass(frozen=True)
class TcpHeader:
    """A decoded (or to-be-encoded) TCP segment."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int
    payload: bytes = b""
    mss_option: int | None = None
    wscale_option: int | None = None
    sack_permitted: bool = False
    sack_blocks: tuple[tuple[int, int], ...] = ()
    urgent: int = 0
    checksum_value: int = field(default=0, compare=False)

    # Flag helpers --------------------------------------------------------
    @property
    def is_syn(self) -> bool:
        return bool(self.flags & SYN)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & ACK)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & RST)

    def options_bytes(self) -> bytes:
        """Serialize the supported options, padded to 4-byte alignment."""
        opts = b""
        if self.mss_option is not None:
            opts += struct.pack("!BBH", OPT_MSS, 4, self.mss_option)
        if self.wscale_option is not None:
            opts += struct.pack("!BBB", OPT_WSCALE, 3, self.wscale_option)
        if self.sack_permitted:
            opts += struct.pack("!BB", OPT_SACK_PERMITTED, 2)
        if self.sack_blocks:
            blocks = self.sack_blocks[:4]  # at most 4 fit with other options
            opts += struct.pack("!BB", OPT_SACK, 2 + 8 * len(blocks))
            for left, right in blocks:
                opts += struct.pack(
                    "!II", left & 0xFFFFFFFF, right & 0xFFFFFFFF
                )
        if len(opts) % 4:
            opts += bytes([OPT_NOP] * (4 - len(opts) % 4))
        return opts

    @property
    def header_len(self) -> int:
        """Header length including options, in bytes."""
        return BASE_HEADER_LEN + len(self.options_bytes())

    def encode(self, src_ip: str, dst_ip: str) -> bytes:
        """Serialize with a checksum over the IPv4 pseudo-header."""
        options = self.options_bytes()
        data_offset = (BASE_HEADER_LEN + len(options)) // 4
        header = _HEADER.pack(
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            data_offset << 4,
            self.flags,
            self.window,
            0,
            self.urgent,
        )
        segment = header + options + self.payload
        csum = _tcp_checksum(src_ip, dst_ip, segment)
        return segment[:16] + struct.pack("!H", csum) + segment[18:]


def _tcp_checksum(src_ip: str, dst_ip: str, segment: bytes) -> int:
    pseudo = (
        ip_to_bytes(src_ip)
        + ip_to_bytes(dst_ip)
        + struct.pack("!BBH", 0, 6, len(segment))
    )
    return checksum(pseudo + segment)


def decode(data: bytes, src_ip: str = "", dst_ip: str = "",
           verify_checksum: bool = False) -> TcpHeader:
    """Parse wire bytes into a :class:`TcpHeader`.

    Checksum verification needs the IP endpoints for the pseudo-header
    and is off by default (sniffers frequently capture segments whose
    checksums are offloaded to hardware on real systems).
    """
    if len(data) < BASE_HEADER_LEN:
        raise TcpError(f"TCP segment too short: {len(data)} bytes")
    (
        src_port,
        dst_port,
        seq,
        ack,
        offset_field,
        flags,
        window,
        checksum_value,
        urgent,
    ) = _HEADER.unpack_from(data)
    header_len = (offset_field >> 4) * 4
    if header_len < BASE_HEADER_LEN or header_len > len(data):
        raise TcpError(f"bad data offset {header_len}")
    if verify_checksum:
        if not src_ip or not dst_ip:
            raise TcpError("checksum verification requires IP endpoints")
        if _tcp_checksum(src_ip, dst_ip, data) != 0:
            raise TcpError("TCP checksum mismatch")
    mss, wscale, sack_permitted, sack_blocks = _parse_options(
        data[BASE_HEADER_LEN:header_len]
    )
    return TcpHeader(
        src_port=src_port,
        dst_port=dst_port,
        seq=seq,
        ack=ack,
        flags=flags,
        window=window,
        payload=data[header_len:],
        mss_option=mss,
        wscale_option=wscale,
        sack_permitted=sack_permitted,
        sack_blocks=sack_blocks,
        urgent=urgent,
        checksum_value=checksum_value,
    )


def _parse_options(
    raw: bytes,
) -> tuple[int | None, int | None, bool, tuple[tuple[int, int], ...]]:
    mss: int | None = None
    wscale: int | None = None
    sack_permitted = False
    sack_blocks: tuple[tuple[int, int], ...] = ()
    i = 0
    while i < len(raw):
        kind = raw[i]
        if kind == OPT_END:
            break
        if kind == OPT_NOP:
            i += 1
            continue
        if i + 1 >= len(raw):
            raise TcpError("truncated TCP option")
        length = raw[i + 1]
        if length < 2 or i + length > len(raw):
            raise TcpError(f"bad TCP option length {length}")
        body = raw[i + 2 : i + length]
        if kind == OPT_MSS and len(body) == 2:
            (mss,) = struct.unpack("!H", body)
        elif kind == OPT_WSCALE and len(body) == 1:
            wscale = body[0]
        elif kind == OPT_SACK_PERMITTED and len(body) == 0:
            sack_permitted = True
        elif kind == OPT_SACK:
            if len(body) % 8:
                raise TcpError(f"bad SACK option length {length}")
            blocks = []
            for j in range(0, len(body), 8):
                left, right = struct.unpack_from("!II", body, j)
                blocks.append((left, right))
            sack_blocks = tuple(blocks)
        i += length
    return mss, wscale, sack_permitted, sack_blocks
