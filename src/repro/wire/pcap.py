"""pcap (libpcap classic) file reading and writing.

Implements the 24-byte global header plus 16-byte per-record headers,
microsecond and nanosecond timestamp variants, both byte orders on
read, and truncation-aware iteration so analysis survives the capture
drops the paper notes tcpdump suffers (section II-A).

Two reading disciplines:

* strict (the default): malformed structure raises :class:`PcapError`,
  except for a truncated trailing record which is tolerated like
  ``tcpdump -r`` does;
* tolerant (``PcapReader(..., tolerant=True)``): nothing past the
  global header raises.  Implausible record headers trigger a forward
  scan that resynchronizes on the next plausible record boundary, and
  every skipped or truncated region is recorded as an
  :class:`~repro.core.health.IngestIssue` in the supplied
  :class:`~repro.core.health.TraceHealth` ledger.
"""

from __future__ import annotations

import io
import mmap as _mmap
import struct
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO

from repro.core.health import STAGE_PCAP, TraceHealth
from repro.core.units import US_PER_SECOND, from_pcap_timestamp, pcap_timestamp
from repro.obs import get_obs

MAGIC_US = 0xA1B2C3D4
MAGIC_US_SWAPPED = 0xD4C3B2A1
MAGIC_NS = 0xA1B23C4D
MAGIC_NS_SWAPPED = 0x4D3CB2A1
LINKTYPE_ETHERNET = 1

GLOBAL_HEADER = struct.Struct("IHHiIII")
RECORD_HEADER = struct.Struct("IIII")
DEFAULT_SNAPLEN = 65535

# Tolerant mode refuses to believe record headers claiming more than
# this many captured bytes: it bounds memory on corrupt length fields
# and is far above any real snaplen.
MAX_PLAUSIBLE_CAPLEN = 1 << 22
# Resync scans look this far ahead for the next plausible record
# boundary before declaring the remainder of the file unreadable.
RESYNC_SCAN_LIMIT = 1 << 20
# Fast-path record construction happens this many records at a time:
# large enough to amortize the chunk loop, small enough that an early
# abandoning consumer never pays for more than one batch of slices.
DEFAULT_DECODE_BATCH = 512
# Tolerant mode disbelieves records whose timestamp jumps more than
# this far from their neighbours.  A structurally intact header with a
# mangled timestamp field passes every length check — and in
# nanosecond-magic files the fraction field's plausibility bound is
# 1000x looser than in microsecond ones, so corrupt headers slip
# through there far more often.  No real capture spans a year between
# adjacent records.
MAX_PLAUSIBLE_TS_JUMP_US = 366 * 86_400 * US_PER_SECOND


class PcapError(ValueError):
    """Raised on malformed pcap files."""


@dataclass(frozen=True)
class PcapRecord:
    """One captured packet: integer-microsecond timestamp plus raw frame."""

    timestamp_us: int
    data: bytes
    original_length: int | None = None

    @property
    def captured_length(self) -> int:
        """Bytes actually stored in the file."""
        return len(self.data)

    @property
    def wire_length(self) -> int:
        """Original on-the-wire length (>= captured length)."""
        return self.original_length if self.original_length is not None else len(self.data)


class PcapWriter:
    """Streams :class:`PcapRecord` items into a classic pcap file."""

    def __init__(
        self,
        target: BinaryIO | str | Path,
        linktype: int = LINKTYPE_ETHERNET,
        snaplen: int = DEFAULT_SNAPLEN,
        nanosecond: bool = False,
    ) -> None:
        if isinstance(target, (str, Path)):
            self._stream: BinaryIO = open(target, "wb")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.snaplen = snaplen
        self.nanosecond = nanosecond
        self._closed = False
        magic = MAGIC_NS if nanosecond else MAGIC_US
        try:
            self._stream.write(
                GLOBAL_HEADER.pack(magic, 2, 4, 0, 0, snaplen, linktype)
            )
        except Exception:
            # Never leak the file handle when the header write fails.
            self.close()
            raise

    def write(self, record: PcapRecord) -> None:
        """Append one record, honouring the snap length.

        The on-disk ``orig_len`` field always records the true wire
        length: when this writer's snaplen truncates ``record.data``,
        the full pre-truncation length is written, never the truncated
        one, so readers can still account for the missing bytes.
        """
        data = record.data[: self.snaplen]
        wire_length = max(record.wire_length, len(record.data))
        ts_sec, ts_frac = pcap_timestamp(record.timestamp_us)
        if self.nanosecond:
            ts_frac *= 1000
        self._stream.write(
            RECORD_HEADER.pack(ts_sec, ts_frac, len(data), wire_length)
        )
        self._stream.write(data)

    def write_all(self, records: Iterable[PcapRecord]) -> None:
        """Append many records."""
        for record in records:
            self.write(record)

    def close(self) -> None:
        """Flush and close (only closes streams this writer opened).

        Idempotent, so error paths may call it unconditionally.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._stream.flush()
        finally:
            if self._owns_stream:
                self._stream.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PcapReader:
    """Iterates :class:`PcapRecord` items out of a classic pcap file.

    With ``tolerant=True`` nothing past the global header raises:
    damaged regions are skipped (resynchronizing on the next plausible
    record header) and accounted in ``health``.  An unrecognizable
    global header yields an empty iteration instead of raising.
    """

    def __init__(
        self,
        source: BinaryIO | str | Path,
        tolerant: bool = False,
        health: TraceHealth | None = None,
        *,
        mmap: bool | None = None,
        decode_batch: int | None = None,
    ) -> None:
        if isinstance(source, (str, Path)):
            self._stream: BinaryIO = open(source, "rb")
            self._owns_stream = True
        else:
            self._stream = source
            self._owns_stream = False
        self.tolerant = tolerant
        self.health = health if health is not None else TraceHealth()
        self.mmap_mode = mmap
        self.decode_batch = (
            decode_batch
            if decode_batch is not None and decode_batch > 0
            else DEFAULT_DECODE_BATCH
        )
        self.nanosecond = False
        self.snaplen = DEFAULT_SNAPLEN
        self.linktype = LINKTYPE_ETHERNET
        self._offset = 0  # absolute byte offset of the next unread byte
        self._unusable = False
        self._endian = "<"
        self._read_global_header()

    # ------------------------------------------------------------------
    # Header parsing
    # ------------------------------------------------------------------
    def _read_global_header(self) -> None:
        header = self._stream.read(GLOBAL_HEADER.size)
        self._offset += len(header)
        if len(header) < GLOBAL_HEADER.size:
            self._give_up("truncated-global-header",
                          f"{len(header)} of {GLOBAL_HEADER.size} bytes",
                          bytes_lost=len(header))
            return
        magic = struct.unpack("<I", header[:4])[0]
        if magic in (MAGIC_US, MAGIC_NS):
            self._endian = "<"
        elif magic in (MAGIC_US_SWAPPED, MAGIC_NS_SWAPPED):
            self._endian = ">"
        else:
            self._give_up("bad-magic", f"0x{magic:08x}")
            return
        self.nanosecond = magic in (MAGIC_NS, MAGIC_NS_SWAPPED)
        fields = struct.unpack(self._endian + "IHHiIII", header)
        _, major, minor, _, _, self.snaplen, self.linktype = fields
        if (major, minor) != (2, 4):
            if not self.tolerant:
                raise PcapError(f"unsupported pcap version {major}.{minor}")
            # Record layout has been 2.4 since libpcap 0.4; carry on.
            self.health.record(
                STAGE_PCAP, "unsupported-version",
                offset=0, detail=f"{major}.{minor}",
            )

    def _give_up(self, kind: str, detail: str, bytes_lost: int = 0) -> None:
        """Global-header damage: raise (strict) or drain (tolerant)."""
        if not self.tolerant:
            if kind == "bad-magic":
                raise PcapError(f"unrecognized pcap magic {detail}")
            raise PcapError("truncated pcap global header")
        rest = self._stream.read()
        self.health.record(
            STAGE_PCAP, kind,
            offset=0, bytes_lost=bytes_lost + len(rest), detail=detail,
        )
        self._unusable = True

    # ------------------------------------------------------------------
    # Record iteration
    # ------------------------------------------------------------------
    def _timestamp(self, ts_sec: int, ts_frac: int) -> int:
        if self.nanosecond:
            return ts_sec * US_PER_SECOND + ts_frac // 1000
        return from_pcap_timestamp(ts_sec, ts_frac)

    def _plausible_header(self, raw: bytes, at: int = 0) -> bool:
        """Could ``raw[at:at+16]`` be a believable record header?"""
        if len(raw) - at < RECORD_HEADER.size:
            return False
        _, ts_frac, incl_len, orig_len = struct.unpack_from(
            self._endian + "IIII", raw, at
        )
        frac_limit = US_PER_SECOND * (1000 if self.nanosecond else 1)
        if ts_frac >= frac_limit:
            return False
        if incl_len > MAX_PLAUSIBLE_CAPLEN:
            return False
        cap = self.snaplen if 0 < self.snaplen <= MAX_PLAUSIBLE_CAPLEN else DEFAULT_SNAPLEN
        if incl_len > cap:
            return False
        if orig_len < incl_len or orig_len > MAX_PLAUSIBLE_CAPLEN:
            return False
        return True

    def __iter__(self) -> Iterator[PcapRecord]:
        if self._unusable:
            return
        obs = get_obs()
        inner: Iterator[PcapRecord] | None = None
        fast = False
        buffer = self._acquire_buffer()
        if buffer is not None:
            index, clean = self._scan_index(buffer, self._offset)
            if clean:
                inner = self._iter_fast(buffer, index)
                fast = True
            else:
                # The pre-scan saw something the tolerant streaming
                # reader must adjudicate (resync, truncation,
                # timestamp damage): fall back so every health issue
                # is produced by the reference code path.
                self._release_buffer(buffer)
                if obs.enabled:
                    obs.metrics.counter("ingest.fallbacks").inc()
        if inner is None:
            inner = (
                self._iter_tolerant() if self.tolerant else self._iter_strict()
            )
        if not obs.enabled:
            yield from inner
            return
        # Aggregate locally and flush once at end-of-iteration: the
        # per-record cost with observability on is two local adds.
        records = 0
        data_bytes = 0
        try:
            for record in inner:
                records += 1
                data_bytes += len(record.data)
                yield record
        finally:
            obs.metrics.counter("pcap.records").inc(records)
            obs.metrics.counter("pcap.bytes").inc(data_bytes)
            if fast:
                obs.metrics.counter("ingest.fast_records").inc(records)

    # ------------------------------------------------------------------
    # Fast path: zero-copy buffer scan with batched record decode
    # ------------------------------------------------------------------
    def _acquire_buffer(self) -> "_mmap.mmap | memoryview | None":
        """A zero-copy view of the whole capture, or None.

        Only sources whose pcap stream begins at file offset 0 (checked
        via ``tell() == bytes consumed so far``) are eligible: the scan
        addresses the buffer with absolute offsets.  ``mmap=False``
        disables the fast path entirely; ``mmap=None`` (auto) and
        ``mmap=True`` differ only in intent — both degrade silently to
        the streaming reader when no buffer can be had.
        """
        if self.mmap_mode is False:
            return None
        stream = self._stream
        try:
            if stream.tell() != self._offset:
                return None
        except (AttributeError, OSError, io.UnsupportedOperation):
            return None
        if isinstance(stream, io.BytesIO):
            return stream.getbuffer()
        try:
            fileno = stream.fileno()
        except (AttributeError, OSError, io.UnsupportedOperation):
            return None
        try:
            return _mmap.mmap(fileno, 0, access=_mmap.ACCESS_READ)
        except (ValueError, OSError):
            # Empty file, pipe, or a platform refusing the mapping.
            return None

    @staticmethod
    def _release_buffer(buffer: "_mmap.mmap | memoryview") -> None:
        if isinstance(buffer, memoryview):
            buffer.release()
        else:
            buffer.close()

    def _scan_index(
        self, buffer: "_mmap.mmap | memoryview", base: int
    ) -> tuple[list[tuple[int, int, int, int]], bool]:
        """One header walk over the buffer: the record index + verdict.

        Returns ``(index, clean)`` where ``index`` holds
        ``(timestamp_us, data_start, data_end, orig_len)`` per record.
        In strict mode the walk is always ``clean`` — the strict reader
        accepts any header and tolerates a truncated trailing record by
        stopping, which the index models by simply ending early.  In
        tolerant mode ``clean`` demands what the streaming reader would
        pass through without recording a single issue or dropping a
        record: every header plausible (the `_plausible_header`
        predicate), every record complete, the file ending exactly on a
        record boundary, and consecutive timestamps within
        ``MAX_PLAUSIBLE_TS_JUMP_US`` of each other.
        """
        unpack_from = struct.Struct(self._endian + "IIII").unpack_from
        size = len(buffer)
        pos = base
        index: list[tuple[int, int, int, int]] = []
        append = index.append
        tolerant = self.tolerant
        nanosecond = self.nanosecond
        frac_limit = US_PER_SECOND * (1000 if nanosecond else 1)
        cap = (
            self.snaplen
            if 0 < self.snaplen <= MAX_PLAUSIBLE_CAPLEN
            else DEFAULT_SNAPLEN
        )
        prev_ts: int | None = None
        clean = True
        while pos + 16 <= size:
            ts_sec, ts_frac, incl_len, orig_len = unpack_from(buffer, pos)
            if tolerant and (
                ts_frac >= frac_limit
                or incl_len > cap
                or incl_len > MAX_PLAUSIBLE_CAPLEN
                or orig_len < incl_len
                or orig_len > MAX_PLAUSIBLE_CAPLEN
            ):
                clean = False
                break
            data_start = pos + 16
            end = data_start + incl_len
            if end > size:
                # Strict tolerates a truncated trailing record by
                # stopping; tolerant records an issue, so fall back.
                clean = not tolerant
                break
            if nanosecond:
                ts = ts_sec * US_PER_SECOND + ts_frac // 1000
            else:
                ts = ts_sec * US_PER_SECOND + ts_frac
            if (
                tolerant
                and prev_ts is not None
                and not -MAX_PLAUSIBLE_TS_JUMP_US
                <= ts - prev_ts
                <= MAX_PLAUSIBLE_TS_JUMP_US
            ):
                # The streaming reader's quorum logic would drop or
                # re-anchor here (except in sub-3-record files, where
                # falling back is merely slower, never different).
                clean = False
                break
            prev_ts = ts
            append((ts, data_start, end, orig_len))
            pos = end
        if tolerant and clean and pos != size:
            # Dangling partial header bytes: the streaming reader
            # records truncated-record-header for these.
            clean = False
        return index, clean

    def _iter_fast(
        self,
        buffer: "_mmap.mmap | memoryview",
        index: list[tuple[int, int, int, int]],
    ) -> Iterator[PcapRecord]:
        """Emit pre-scanned records in decode batches.

        Byte-identical to the streaming readers over the clean inputs
        `_scan_index` admits; bookkeeping (``records_read``, the
        tolerant timestamp-regression summary, the resume offset) is
        kept per-yield so an early-abandoning consumer observes the
        same ledger state it would with the streaming reader.
        """
        health = self.health
        tolerant = self.tolerant
        batch = self.decode_batch
        record_cls = PcapRecord
        last_ts: int | None = None
        regressions = 0
        first_regression_at: int | None = None
        try:
            for chunk_at in range(0, len(index), batch):
                chunk = index[chunk_at : chunk_at + batch]
                records = [
                    record_cls(ts, bytes(buffer[s:e]), orig)
                    for ts, s, e, orig in chunk
                ]
                for record, (ts, _s, e, _orig) in zip(records, chunk):
                    if tolerant:
                        if last_ts is not None and ts < last_ts:
                            regressions += 1
                            if first_regression_at is None:
                                first_regression_at = ts
                        last_ts = ts
                    health.records_read += 1
                    self._offset = e
                    yield record
        finally:
            if regressions:
                health.record(
                    STAGE_PCAP, "timestamp-regression",
                    timestamp_us=first_regression_at,
                    detail=f"{regressions} record(s) went backwards in time",
                    benign=True,
                )
            self._release_buffer(buffer)
            try:
                # Keep the stream in step with what was emitted, so a
                # re-iteration (fast or streaming) resumes — or ends —
                # exactly where the streaming reader would.
                self._stream.seek(self._offset)
            except (AttributeError, OSError, ValueError):
                pass

    def _iter_strict(self) -> Iterator[PcapRecord]:
        record_struct = struct.Struct(self._endian + "IIII")
        while True:
            header = self._stream.read(record_struct.size)
            if not header:
                return
            if len(header) < record_struct.size:
                # A truncated trailing record: tolerate, like tcpdump -r.
                return
            ts_sec, ts_frac, incl_len, orig_len = record_struct.unpack(header)
            data = self._stream.read(incl_len)
            if len(data) < incl_len:
                return
            self.health.records_read += 1
            yield PcapRecord(
                timestamp_us=self._timestamp(ts_sec, ts_frac),
                data=data,
                original_length=orig_len,
            )

    def _iter_tolerant(self) -> Iterator[PcapRecord]:
        last_ts: int | None = None
        regressions = 0
        first_regression_at: int | None = None
        # Timestamp-continuity adjudication.  A header whose length
        # fields survived mangling still frames the stream correctly,
        # so a corrupt timestamp must cost one record, not a resync —
        # but the reader cannot tell *which* of two wildly disagreeing
        # neighbours is the liar without a third opinion.  Until an
        # anchor is established the first records are buffered and
        # settled by quorum; afterwards any record a year away from the
        # anchor is dropped (with re-anchoring when two consecutive
        # drops agree with each other, i.e. the anchor was the liar).
        pending: list[tuple[int, PcapRecord]] = []
        anchor: int | None = None
        dropped_ts: int | None = None

        def emit(record: PcapRecord) -> PcapRecord:
            nonlocal last_ts, regressions, first_regression_at
            if last_ts is not None and record.timestamp_us < last_ts:
                regressions += 1
                if first_regression_at is None:
                    first_regression_at = record.timestamp_us
            last_ts = record.timestamp_us
            self.health.records_read += 1
            return record

        try:
            for start, record in self._iter_tolerant_raw():
                ready: list[PcapRecord]
                if anchor is None:
                    pending.append((start, record))
                    if len(pending) < 2:
                        continue
                    if len(pending) == 2:
                        if self._ts_consistent(pending[0][1], pending[1][1]):
                            ready = [item[1] for item in pending]
                            anchor = record.timestamp_us
                            pending = []
                        else:
                            continue  # disagreement: wait for a tiebreaker
                    else:
                        (s0, r0), (s1, r1), (s2, r2) = pending
                        if self._ts_consistent(r0, r2):
                            self._drop_implausible_ts(s1, r1)
                            ready = [r0, r2]
                        elif self._ts_consistent(r1, r2):
                            self._drop_implausible_ts(s0, r0)
                            ready = [r1, r2]
                        else:
                            ready = [r0, r1, r2]  # no quorum: keep everything
                        anchor = r2.timestamp_us
                        pending = []
                elif abs(record.timestamp_us - anchor) > MAX_PLAUSIBLE_TS_JUMP_US:
                    if dropped_ts is not None and abs(
                        record.timestamp_us - dropped_ts
                    ) <= MAX_PLAUSIBLE_TS_JUMP_US:
                        # Two consecutive "implausible" records agree
                        # with each other: the anchor was the corrupt
                        # one.  Re-anchor and keep this record.
                        anchor = record.timestamp_us
                        dropped_ts = None
                        ready = [record]
                    else:
                        dropped_ts = record.timestamp_us
                        self._drop_implausible_ts(start, record)
                        continue
                else:
                    anchor = record.timestamp_us
                    dropped_ts = None
                    ready = [record]
                for item in ready:
                    yield emit(item)
            # EOF with the jury still out (a file of one or two
            # records): keep what was read, as the pre-continuity
            # reader did.
            for _, item in pending:
                yield emit(item)
        finally:
            if regressions:
                # One summary issue per file: clock steps and capture
                # reordering are common enough that per-record entries
                # would drown the report.
                self.health.record(
                    STAGE_PCAP, "timestamp-regression",
                    timestamp_us=first_regression_at,
                    detail=f"{regressions} record(s) went backwards in time",
                    benign=True,
                )

    def _ts_consistent(self, a: PcapRecord, b: PcapRecord) -> bool:
        return abs(a.timestamp_us - b.timestamp_us) <= MAX_PLAUSIBLE_TS_JUMP_US

    def _drop_implausible_ts(self, start: int, record: PcapRecord) -> None:
        self.health.record(
            STAGE_PCAP, "implausible-timestamp",
            offset=start,
            timestamp_us=record.timestamp_us,
            bytes_lost=RECORD_HEADER.size + len(record.data),
            detail="timestamp a year away from its neighbours",
        )

    def _iter_tolerant_raw(self) -> Iterator[tuple[int, PcapRecord]]:
        """Structurally validated records plus their file offsets."""
        while True:
            start = self._offset
            header = self._read_exact(RECORD_HEADER.size)
            if not header:
                return
            if len(header) < RECORD_HEADER.size:
                self.health.record(
                    STAGE_PCAP, "truncated-record-header",
                    offset=start, bytes_lost=len(header),
                    detail=f"{len(header)} of {RECORD_HEADER.size} header bytes",
                )
                return
            if not self._plausible_header(header):
                if not self._resync(start, header):
                    return
                continue
            ts_sec, ts_frac, incl_len, orig_len = struct.unpack(
                self._endian + "IIII", header
            )
            data = self._read_exact(incl_len)
            if len(data) < incl_len:
                self.health.record(
                    STAGE_PCAP, "truncated-record",
                    offset=start,
                    timestamp_us=self._timestamp(ts_sec, ts_frac),
                    bytes_lost=RECORD_HEADER.size + len(data),
                    detail=f"{len(data)} of {incl_len} data bytes",
                )
                return
            yield start, PcapRecord(
                timestamp_us=self._timestamp(ts_sec, ts_frac),
                data=data,
                original_length=orig_len,
            )

    def _read_exact(self, count: int) -> bytes:
        data = self._stream.read(count)
        self._offset += len(data)
        return data

    def _resync(self, start: int, bad_header: bytes) -> bool:
        """Scan forward for the next plausible record boundary.

        ``bad_header`` is the 16 implausible bytes already consumed.
        Returns True when a boundary was found (stream positioned at
        it); False when the rest of the file had to be abandoned.  A
        candidate is *verified* when the record it frames is followed
        by another plausible header — that keeps random payload bytes
        from masquerading as a boundary.  A candidate whose record runs
        to or past the end of the scan window cannot be verified; the
        first such candidate is kept only as a fallback, used when no
        verified boundary exists in the window.
        """
        window = bytearray(bad_header)
        window += self._stream.read(RESYNC_SCAN_LIMIT)
        self._offset = start + len(window)
        found_at: int | None = None
        fallback_at: int | None = None
        for i in range(1, len(window) - RECORD_HEADER.size + 1):
            if not self._plausible_header(window, i):
                continue
            _, _, incl_len, _ = struct.unpack_from(self._endian + "IIII", window, i)
            following = i + RECORD_HEADER.size + incl_len
            if self._plausible_header(window, following):
                found_at = i
                break
            if following >= len(window) and fallback_at is None:
                fallback_at = i
        if found_at is None:
            found_at = fallback_at
        if found_at is None:
            self.health.record(
                STAGE_PCAP, "unreadable-tail",
                offset=start, bytes_lost=len(window),
                detail="no plausible record boundary found",
            )
            return False
        self.health.record(
            STAGE_PCAP, "bad-record-header",
            offset=start, bytes_lost=found_at,
            detail=f"resynchronized after {found_at} bytes",
        )
        get_obs().metrics.counter("pcap.resyncs").inc()
        # Rewind the unconsumed tail of the scan window.
        tail = bytes(window[found_at:])
        self._stream = _ChainedStream(tail, self._stream)
        self._offset = start + found_at
        return True

    def close(self) -> None:
        """Close the underlying stream if this reader opened it."""
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _ChainedStream:
    """A minimal read-only stream serving buffered bytes then a stream."""

    def __init__(self, head: bytes, rest: BinaryIO) -> None:
        self._head = head
        self._pos = 0
        self._rest = rest

    def read(self, count: int = -1) -> bytes:
        if count is None or count < 0:
            out = self._head[self._pos:] + self._rest.read()
            self._pos = len(self._head)
            return out
        out = self._head[self._pos : self._pos + count]
        self._pos += len(out)
        if len(out) < count:
            out += self._rest.read(count - len(out))
        return out

    def close(self) -> None:
        self._rest.close()


def read_pcap(
    source: BinaryIO | str | Path,
    tolerant: bool = False,
    health: TraceHealth | None = None,
    *,
    mmap: bool | None = None,
    decode_batch: int | None = None,
) -> list[PcapRecord]:
    """Read an entire pcap file into memory."""
    with PcapReader(
        source, tolerant=tolerant, health=health,
        mmap=mmap, decode_batch=decode_batch,
    ) as reader:
        return list(reader)


def write_pcap(
    target: BinaryIO | str | Path,
    records: Iterable[PcapRecord],
    snaplen: int = DEFAULT_SNAPLEN,
    nanosecond: bool = False,
) -> None:
    """Write ``records`` as a complete pcap file."""
    with PcapWriter(target, snaplen=snaplen, nanosecond=nanosecond) as writer:
        writer.write_all(records)


def records_to_bytes(
    records: Iterable[PcapRecord],
    snaplen: int = DEFAULT_SNAPLEN,
    nanosecond: bool = False,
) -> bytes:
    """Render a pcap file as an in-memory byte string."""
    buffer = io.BytesIO()
    write_pcap(buffer, records, snaplen=snaplen, nanosecond=nanosecond)
    return buffer.getvalue()
