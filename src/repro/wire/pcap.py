"""pcap (libpcap classic) file reading and writing.

Implements the 24-byte global header plus 16-byte per-record headers,
microsecond timestamps, both byte orders on read, and truncation-aware
iteration so analysis survives the capture drops the paper notes
tcpdump suffers (section II-A).
"""

from __future__ import annotations

import io
import struct
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO

from repro.core.units import from_pcap_timestamp, pcap_timestamp

MAGIC_US = 0xA1B2C3D4
MAGIC_US_SWAPPED = 0xD4C3B2A1
LINKTYPE_ETHERNET = 1

GLOBAL_HEADER = struct.Struct("IHHiIII")
RECORD_HEADER = struct.Struct("IIII")
DEFAULT_SNAPLEN = 65535


class PcapError(ValueError):
    """Raised on malformed pcap files."""


@dataclass(frozen=True)
class PcapRecord:
    """One captured packet: integer-microsecond timestamp plus raw frame."""

    timestamp_us: int
    data: bytes
    original_length: int | None = None

    @property
    def captured_length(self) -> int:
        """Bytes actually stored in the file."""
        return len(self.data)

    @property
    def wire_length(self) -> int:
        """Original on-the-wire length (>= captured length)."""
        return self.original_length if self.original_length is not None else len(self.data)


class PcapWriter:
    """Streams :class:`PcapRecord` items into a classic pcap file."""

    def __init__(
        self,
        target: BinaryIO | str | Path,
        linktype: int = LINKTYPE_ETHERNET,
        snaplen: int = DEFAULT_SNAPLEN,
    ) -> None:
        if isinstance(target, (str, Path)):
            self._stream: BinaryIO = open(target, "wb")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.snaplen = snaplen
        self._stream.write(
            GLOBAL_HEADER.pack(MAGIC_US, 2, 4, 0, 0, snaplen, linktype)
        )

    def write(self, record: PcapRecord) -> None:
        """Append one record, honouring the snap length."""
        data = record.data[: self.snaplen]
        ts_sec, ts_usec = pcap_timestamp(record.timestamp_us)
        self._stream.write(
            RECORD_HEADER.pack(ts_sec, ts_usec, len(data), record.wire_length)
        )
        self._stream.write(data)

    def write_all(self, records: Iterable[PcapRecord]) -> None:
        """Append many records."""
        for record in records:
            self.write(record)

    def close(self) -> None:
        """Flush and close (only closes streams this writer opened)."""
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PcapReader:
    """Iterates :class:`PcapRecord` items out of a classic pcap file."""

    def __init__(self, source: BinaryIO | str | Path) -> None:
        if isinstance(source, (str, Path)):
            self._stream: BinaryIO = open(source, "rb")
            self._owns_stream = True
        else:
            self._stream = source
            self._owns_stream = False
        header = self._stream.read(GLOBAL_HEADER.size)
        if len(header) < GLOBAL_HEADER.size:
            raise PcapError("truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == MAGIC_US:
            self._endian = "<"
        elif magic == MAGIC_US_SWAPPED:
            self._endian = ">"
        else:
            raise PcapError(f"unrecognized pcap magic 0x{magic:08x}")
        fields = struct.unpack(self._endian + "IHHiIII", header)
        _, major, minor, _, _, self.snaplen, self.linktype = fields
        if (major, minor) != (2, 4):
            raise PcapError(f"unsupported pcap version {major}.{minor}")

    def __iter__(self) -> Iterator[PcapRecord]:
        record_struct = struct.Struct(self._endian + "IIII")
        while True:
            header = self._stream.read(record_struct.size)
            if not header:
                return
            if len(header) < record_struct.size:
                # A truncated trailing record: tolerate, like tcpdump -r.
                return
            ts_sec, ts_usec, incl_len, orig_len = record_struct.unpack(header)
            data = self._stream.read(incl_len)
            if len(data) < incl_len:
                return
            yield PcapRecord(
                timestamp_us=from_pcap_timestamp(ts_sec, ts_usec),
                data=data,
                original_length=orig_len,
            )

    def close(self) -> None:
        """Close the underlying stream if this reader opened it."""
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_pcap(source: BinaryIO | str | Path) -> list[PcapRecord]:
    """Read an entire pcap file into memory."""
    with PcapReader(source) as reader:
        return list(reader)


def write_pcap(
    target: BinaryIO | str | Path,
    records: Iterable[PcapRecord],
    snaplen: int = DEFAULT_SNAPLEN,
) -> None:
    """Write ``records`` as a complete pcap file."""
    with PcapWriter(target, snaplen=snaplen) as writer:
        writer.write_all(records)


def records_to_bytes(records: Iterable[PcapRecord]) -> bytes:
    """Render a pcap file as an in-memory byte string."""
    buffer = io.BytesIO()
    write_pcap(buffer, records)
    return buffer.getvalue()
