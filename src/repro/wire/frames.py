"""Full-frame composition: TCP header -> IPv4 -> Ethernet and back.

The sniffer serializes simulated segments through :func:`build_frame`
so captures contain genuine protocol bytes; the analyzer's front end
recovers them with :func:`parse_frame`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import NamedTuple

from repro.wire import ethernet, ip, tcpw


class FrameError(ValueError):
    """Raised when a captured frame is not an IPv4/TCP frame."""


class PacketFields(NamedTuple):
    """The analyzer-facing fields of one Ethernet/IPv4/TCP frame.

    :func:`parse_packet` produces these without materializing the
    intermediate per-layer dataclasses; the field values are identical
    to what :func:`parse_frame` would expose through ``ParsedFrame``.
    """

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int
    ip_id: int
    payload: bytes
    mss_option: int | None
    wscale_option: int | None


@dataclass(frozen=True)
class ParsedFrame:
    """A fully decoded Ethernet/IPv4/TCP frame."""

    eth: ethernet.EthernetFrame
    ipv4: ip.Ipv4Header
    tcp: tcpw.TcpHeader

    @property
    def src_ip(self) -> str:
        return self.ipv4.src

    @property
    def dst_ip(self) -> str:
        return self.ipv4.dst

    @property
    def flow(self) -> tuple[str, int, str, int]:
        """The (src_ip, src_port, dst_ip, dst_port) 4-tuple."""
        return (
            self.ipv4.src,
            self.tcp.src_port,
            self.ipv4.dst,
            self.tcp.dst_port,
        )


def build_frame(
    src_ip: str,
    dst_ip: str,
    tcp_header: tcpw.TcpHeader,
    identification: int = 0,
    ttl: int = 64,
) -> bytes:
    """Serialize a TCP header + payload into a complete Ethernet frame."""
    tcp_bytes = tcp_header.encode(src_ip, dst_ip)
    ip_bytes = ip.Ipv4Header(
        src=src_ip,
        dst=dst_ip,
        payload=tcp_bytes,
        identification=identification,
        ttl=ttl,
    ).encode()
    frame = ethernet.EthernetFrame(
        dst_mac=ethernet.mac_from_ip(dst_ip),
        src_mac=ethernet.mac_from_ip(src_ip),
        ethertype=ethernet.ETHERTYPE_IPV4,
        payload=ip_bytes,
    )
    return frame.encode()


def parse_frame(data: bytes, verify_checksums: bool = False) -> ParsedFrame:
    """Decode a captured Ethernet frame down to the TCP layer.

    Raises :class:`FrameError` for non-IPv4 or non-TCP frames so callers
    can skip them (real captures contain ARP, LLDP, ...).  Any decode
    failure on arbitrary damaged bytes — truncated headers, bad IHL,
    mangled options — also surfaces as :class:`FrameError`, never as a
    lower-level exception, so tolerant ingest can treat "one bad frame"
    uniformly.
    """
    try:
        eth = ethernet.decode(data)
        if eth.ethertype != ethernet.ETHERTYPE_IPV4:
            raise FrameError(f"not IPv4 (ethertype 0x{eth.ethertype:04x})")
        ipv4 = ip.decode(eth.payload, verify_checksum=verify_checksums)
        if ipv4.protocol != ip.PROTO_TCP:
            raise FrameError(f"not TCP (protocol {ipv4.protocol})")
        tcp = tcpw.decode(
            ipv4.payload,
            src_ip=ipv4.src,
            dst_ip=ipv4.dst,
            verify_checksum=verify_checksums,
        )
    except FrameError:
        raise
    except (ValueError, IndexError, struct.error) as exc:
        raise FrameError(f"undecodable frame: {exc}") from exc
    return ParsedFrame(eth=eth, ipv4=ipv4, tcp=tcp)


# TCP option blocks repeat across a capture (usually empty, an MSS on
# the SYNs, the odd SACK); cache their parse keyed by the raw bytes.
# Bounded: damaged captures could otherwise flood it with unique junk.
_OPTIONS_CACHE: dict[bytes, tuple] = {}
_OPTIONS_CACHE_LIMIT = 4096


def parse_packet(data: bytes, verify_checksums: bool = False) -> PacketFields:
    """Decode a frame straight to :class:`PacketFields`.

    The fast path fuses the three layer decoders into one pass of
    precompiled-struct reads over the common shape (Ethernet II +
    20-byte IPv4 header + TCP); anything else — other ethertypes, IP
    options, damage, checksum verification — falls back to
    :func:`parse_frame`, so failures raise the exact same
    :class:`FrameError` and exotic-but-valid frames decode through the
    reference path.  For every frame the fast path accepts, the result
    is field-identical to the fallback's.
    """
    if not verify_checksums:
        fields = _parse_packet_fast(data)
        if fields is not None:
            return fields
    parsed = parse_frame(data, verify_checksums=verify_checksums)
    tcp = parsed.tcp
    return PacketFields(
        parsed.ipv4.src,
        tcp.src_port,
        parsed.ipv4.dst,
        tcp.dst_port,
        tcp.seq,
        tcp.ack,
        tcp.flags,
        tcp.window,
        parsed.ipv4.identification,
        tcp.payload,
        tcp.mss_option,
        tcp.wscale_option,
    )


def _parse_packet_fast(data: bytes) -> PacketFields | None:
    """One-pass decode of the common frame shape; None means fall back."""
    n = len(data)
    # 54 = Ethernet(14) + minimal IPv4(20) + minimal TCP(20).
    if n < 54 or data[12] != 0x08 or data[13] != 0x00 or data[14] != 0x45:
        return None
    (
        _version_ihl,
        _tos,
        total_length,
        ip_id,
        _flags_fragment,
        _ttl,
        protocol,
        _ip_checksum,
        src_raw,
        dst_raw,
    ) = ip._HEADER.unpack_from(data, 14)
    if protocol != ip.PROTO_TCP:
        return None
    ip_end = 14 + total_length
    if total_length < 40 or ip_end > n:
        return None
    (
        src_port,
        dst_port,
        seq,
        ack,
        offset_field,
        flags,
        window,
        _tcp_checksum_value,
        _urgent,
    ) = tcpw._HEADER.unpack_from(data, 34)
    header_len = (offset_field >> 4) * 4
    if header_len < tcpw.BASE_HEADER_LEN or header_len > total_length - 20:
        return None
    if header_len == tcpw.BASE_HEADER_LEN:
        mss = wscale = None
    else:
        raw_options = data[54 : 34 + header_len]
        options = _OPTIONS_CACHE.get(raw_options)
        if options is None:
            try:
                options = tcpw._parse_options(raw_options)
            except tcpw.TcpError:
                return None
            if len(_OPTIONS_CACHE) >= _OPTIONS_CACHE_LIMIT:
                _OPTIONS_CACHE.clear()
            _OPTIONS_CACHE[raw_options] = options
        mss, wscale = options[0], options[1]
    return PacketFields(
        ip.bytes_to_ip(src_raw),
        src_port,
        ip.bytes_to_ip(dst_raw),
        dst_port,
        seq,
        ack,
        flags,
        window,
        ip_id,
        data[34 + header_len : ip_end],
        mss,
        wscale,
    )
