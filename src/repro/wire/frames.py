"""Full-frame composition: TCP header -> IPv4 -> Ethernet and back.

The sniffer serializes simulated segments through :func:`build_frame`
so captures contain genuine protocol bytes; the analyzer's front end
recovers them with :func:`parse_frame`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.wire import ethernet, ip, tcpw


class FrameError(ValueError):
    """Raised when a captured frame is not an IPv4/TCP frame."""


@dataclass(frozen=True)
class ParsedFrame:
    """A fully decoded Ethernet/IPv4/TCP frame."""

    eth: ethernet.EthernetFrame
    ipv4: ip.Ipv4Header
    tcp: tcpw.TcpHeader

    @property
    def src_ip(self) -> str:
        return self.ipv4.src

    @property
    def dst_ip(self) -> str:
        return self.ipv4.dst

    @property
    def flow(self) -> tuple[str, int, str, int]:
        """The (src_ip, src_port, dst_ip, dst_port) 4-tuple."""
        return (
            self.ipv4.src,
            self.tcp.src_port,
            self.ipv4.dst,
            self.tcp.dst_port,
        )


def build_frame(
    src_ip: str,
    dst_ip: str,
    tcp_header: tcpw.TcpHeader,
    identification: int = 0,
    ttl: int = 64,
) -> bytes:
    """Serialize a TCP header + payload into a complete Ethernet frame."""
    tcp_bytes = tcp_header.encode(src_ip, dst_ip)
    ip_bytes = ip.Ipv4Header(
        src=src_ip,
        dst=dst_ip,
        payload=tcp_bytes,
        identification=identification,
        ttl=ttl,
    ).encode()
    frame = ethernet.EthernetFrame(
        dst_mac=ethernet.mac_from_ip(dst_ip),
        src_mac=ethernet.mac_from_ip(src_ip),
        ethertype=ethernet.ETHERTYPE_IPV4,
        payload=ip_bytes,
    )
    return frame.encode()


def parse_frame(data: bytes, verify_checksums: bool = False) -> ParsedFrame:
    """Decode a captured Ethernet frame down to the TCP layer.

    Raises :class:`FrameError` for non-IPv4 or non-TCP frames so callers
    can skip them (real captures contain ARP, LLDP, ...).  Any decode
    failure on arbitrary damaged bytes — truncated headers, bad IHL,
    mangled options — also surfaces as :class:`FrameError`, never as a
    lower-level exception, so tolerant ingest can treat "one bad frame"
    uniformly.
    """
    try:
        eth = ethernet.decode(data)
        if eth.ethertype != ethernet.ETHERTYPE_IPV4:
            raise FrameError(f"not IPv4 (ethertype 0x{eth.ethertype:04x})")
        ipv4 = ip.decode(eth.payload, verify_checksum=verify_checksums)
        if ipv4.protocol != ip.PROTO_TCP:
            raise FrameError(f"not TCP (protocol {ipv4.protocol})")
        tcp = tcpw.decode(
            ipv4.payload,
            src_ip=ipv4.src,
            dst_ip=ipv4.dst,
            verify_checksum=verify_checksums,
        )
    except FrameError:
        raise
    except (ValueError, IndexError, struct.error) as exc:
        raise FrameError(f"undecodable frame: {exc}") from exc
    return ParsedFrame(eth=eth, ipv4=ipv4, tcp=tcp)
