"""Ethernet II frame encoding and decoding.

Only what a BGP monitoring capture needs: Ethernet II framing with the
IPv4 ethertype.  MAC addresses are carried as 6-byte ``bytes`` values.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

ETHERTYPE_IPV4 = 0x0800
HEADER_LEN = 14

_HEADER = struct.Struct("!6s6sH")


class EthernetError(ValueError):
    """Raised on malformed Ethernet frames."""


@dataclass(frozen=True)
class EthernetFrame:
    """A decoded Ethernet II frame."""

    dst_mac: bytes
    src_mac: bytes
    ethertype: int
    payload: bytes

    def encode(self) -> bytes:
        """Serialize to wire bytes."""
        if len(self.dst_mac) != 6 or len(self.src_mac) != 6:
            raise EthernetError("MAC addresses must be 6 bytes")
        return _HEADER.pack(self.dst_mac, self.src_mac, self.ethertype) + self.payload


def decode(data: bytes) -> EthernetFrame:
    """Parse wire bytes into an :class:`EthernetFrame`."""
    if len(data) < HEADER_LEN:
        raise EthernetError(f"frame too short: {len(data)} bytes")
    dst, src, ethertype = _HEADER.unpack_from(data)
    return EthernetFrame(dst, src, ethertype, data[HEADER_LEN:])


def mac_from_ip(ip: str) -> bytes:
    """A deterministic locally-administered MAC derived from an IPv4 string.

    The simulator does not model ARP; captures still need stable,
    distinct MAC addresses per host so tools like wireshark render them
    sensibly.
    """
    octets = [int(part) for part in ip.split(".")]
    if len(octets) != 4 or not all(0 <= o <= 255 for o in octets):
        raise EthernetError(f"bad IPv4 address {ip!r}")
    return bytes([0x02, 0x00] + octets)
