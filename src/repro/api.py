"""The stable entry point: one facade over the whole T-DAT pipeline.

Everything the repo can do — analyze a capture, reconstruct BGP
streams, run a measurement campaign — is reachable through a
:class:`Pipeline` carrying the execution knobs (``workers``,
``strict``, ``streaming``, ``seed``) once, instead of threading them
through every call::

    from repro.api import Pipeline

    pipe = Pipeline(workers=4)
    report = pipe.analyze("trace.pcap")
    result = pipe.campaign("ISP_A-Quagga", transfers=10)

Requests can also be built as data and executed later (the CLI and the
benchmark harness do this)::

    from repro.api import AnalysisRequest, CampaignRequest, Pipeline

    req = CampaignRequest(name="RV", transfers=8, seed=3)
    result = Pipeline(workers=2).run(req)

The engine modules (``repro.analysis.tdat``, ``repro.workloads.campaign``,
``repro.tools.pcap2bgp``, ``repro.exec.pool``) stay importable for code
that needs the full surface; this facade is the supported subset whose
signatures will not churn.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, BinaryIO, Iterator

from repro.analysis.budget import ResourceBudget
from repro.analysis.profile import FlowKey
from repro.analysis.series import (
    SERIES_BACKENDS,
    SNIFFER_AT_RECEIVER,
    SeriesConfig,
)
from repro.analysis.tdat import (
    ConnectionAnalysis,
    TdatReport,
    analyze_pcap,
    iter_analyze_pcap,
)
from repro.core.health import TraceHealth
from repro.exec.pool import WorkPool, available_parallelism
from repro.obs import Observability, use_obs
from repro.tools.pcap2bgp import StreamResult, pcap_to_bgp
from repro.wire.pcap import PcapRecord
from repro.workloads.campaign import (
    CampaignConfig,
    CampaignResult,
    campaign_config,
    run_campaign,
)

@dataclass
class AnalysisRequest:
    """One capture to analyze, plus the knobs that shape the run.

    The performance knobs (``mmap``, ``decode_batch``,
    ``series_backend``) select result-identical fast paths — every one
    is differentially tested against its pure-python reference and
    falls back automatically when its preconditions fail.  ``None``
    inherits the :class:`Pipeline` default.

    ``budget`` bounds the live analysis state
    (:class:`~repro.analysis.budget.ResourceBudget`); like the
    performance knobs, ``None`` inherits the pipeline's budget.
    """

    source: BinaryIO | str | Path | list[PcapRecord]
    sniffer_location: str = SNIFFER_AT_RECEIVER
    windows: dict[FlowKey, tuple[int, int]] | None = None
    config: SeriesConfig | None = None
    min_data_packets: int = 2
    strict: bool | None = None  # None → inherit from the Pipeline
    streaming: bool | None = None
    workers: int | None = None
    mmap: bool | None = None
    decode_batch: int | None = None
    series_backend: str | None = None  # one of SERIES_BACKENDS
    budget: ResourceBudget | None = None


@dataclass
class CampaignRequest:
    """One campaign to run: a registry name or an explicit config."""

    name: str | None = None
    config: CampaignConfig | None = None
    seed: int | None = None
    transfers: int | None = None
    strict: bool | None = None
    workers: int | None = None
    overrides: dict[str, Any] = field(default_factory=dict)
    # Supervision: journal completed episodes under ``checkpoint_dir``
    # and, with ``resume=True``, skip the ones already journaled there.
    checkpoint_dir: str | Path | None = None
    resume: bool = False

    def resolve(self) -> CampaignConfig:
        """Build the concrete :class:`CampaignConfig` this request names."""
        if (self.name is None) == (self.config is None):
            raise ValueError(
                "CampaignRequest needs exactly one of `name` or `config`"
            )
        if self.config is not None:
            config = self.config
            if self.seed is not None or self.transfers is not None:
                changes = {}
                if self.seed is not None:
                    changes["seed"] = self.seed
                if self.transfers is not None:
                    changes["transfers"] = self.transfers
                config = replace(config, **changes)
        else:
            kwargs: dict[str, Any] = {}
            if self.seed is not None:
                kwargs["seed"] = self.seed
            if self.transfers is not None:
                kwargs["transfers"] = self.transfers
            config = campaign_config(self.name, **kwargs)
        if self.overrides:
            config = replace(config, **self.overrides)
        return config


@dataclass
class ServeRequest:
    """Run the analysis service (:mod:`repro.serve`).

    ``port=0`` binds an ephemeral port (the server's ``port`` attribute
    holds the real one after startup).  ``budget``/``strict`` default
    to the pipeline's own knobs and become the default for every
    session the server creates; a client can still override both per
    session in ``POST /sessions``.
    """

    host: str = "127.0.0.1"
    port: int = 8321
    max_sessions: int = 64
    sniffer_location: str = SNIFFER_AT_RECEIVER
    min_data_packets: int = 2
    strict: bool | None = None  # None → inherit from the Pipeline
    budget: ResourceBudget | None = None
    trace_requests: bool = False
    drain_timeout: float = 30.0


@dataclass
class Pipeline:
    """Execution context shared by every request run through it.

    ``workers=0`` means "use every available CPU".  One
    :class:`~repro.exec.pool.WorkPool` is built lazily and reused, so a
    campaign and its follow-up analyses share worker processes.

    The supervision knobs flow into that pool: ``task_timeout`` bounds
    each task's execution wall clock (queue wait exempt),
    ``max_retries`` re-runs transient failures (crashed workers,
    timeouts, retryable task errors) with the same seed, and
    ``checkpoint_dir`` journals completed campaign episodes so an
    interrupted run can be resumed (see :class:`CampaignRequest.resume`).

    ``obs`` turns on observability for every request run through this
    pipeline: pass an :class:`~repro.obs.Observability` (to keep a
    handle on the tracer for exports), or simply ``obs=True`` to build
    a fresh one.  Campaign results then carry the merged metrics as
    ``result.metrics``, and ``pipeline.obs.tracer`` holds the spans.
    Left at ``None`` (the default), every instrumentation point in the
    engine dispatches through the shared no-op context.

    The performance knobs — ``mmap`` (zero-copy pcap scanning),
    ``decode_batch`` (fast-path decode granularity) and
    ``series_backend`` (``"auto"`` | ``"python"`` | ``"numpy"`` series
    kernels) — set the default for every analysis run through this
    pipeline; an :class:`AnalysisRequest` can override each per run.
    All of them are result-preserving: the fast paths are
    byte-identical to their references and degrade automatically.
    """

    workers: int = 1
    strict: bool = False
    streaming: bool = False
    mmap: bool | None = None
    decode_batch: int | None = None
    series_backend: str = "auto"
    budget: ResourceBudget | None = None
    seed: int | None = None
    task_timeout: float | None = None
    max_retries: int = 0
    checkpoint_dir: str | Path | None = None
    obs: Observability | bool | None = None
    _pool: WorkPool | None = field(  # guarded-by: _pool_lock
        default=None, repr=False, compare=False
    )
    _pool_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _pool_leased: bool = field(  # guarded-by: _pool_lock
        default=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.workers == 0:
            self.workers = available_parallelism()
        if self.obs is True:
            self.obs = Observability.create()
        elif self.obs is False:
            self.obs = None

    @property
    def pool(self) -> WorkPool:
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._make_pool(self.workers)
            return self._pool

    def _make_pool(self, workers: int) -> WorkPool:
        return WorkPool(
            workers=workers,
            task_timeout=self.task_timeout,
            max_retries=self.max_retries,
        )

    @contextmanager
    def _lease_pool(self, workers: int):
        """Check the shared pool out for one request.

        A :class:`~repro.exec.pool.WorkPool` supervises one ``map`` at
        a time — its per-map stats and worker bookkeeping are not
        reentrant — so the lazily-built shared pool must never be
        handed to two overlapping requests.  The first concurrent
        caller (and any request overriding ``workers``) leases the
        shared pool; everyone who finds it already leased gets a
        private pool for the duration of the call instead of racing
        one supervisor.  This is what lets server-driven analyses and
        direct ``analyze()`` calls overlap safely on one pipeline.
        """
        with self._pool_lock:
            shared = workers == self.workers and not self._pool_leased
            if shared:
                self._pool_leased = True
                if self._pool is None:
                    self._pool = self._make_pool(self.workers)
                pool = self._pool
        if not shared:
            pool = self._make_pool(workers)
        try:
            yield pool
        finally:
            if shared:
                with self._pool_lock:
                    self._pool_leased = False

    # ------------------------------------------------------------------ #
    # Analysis                                                           #
    # ------------------------------------------------------------------ #
    def analyze(
        self,
        source: BinaryIO | str | Path | list[PcapRecord],
        **knobs,
    ) -> TdatReport:
        """Run T-DAT over every connection of a capture."""
        return self.run(AnalysisRequest(source=source, **knobs))

    def iter_analyze(
        self,
        source: BinaryIO | str | Path | list[PcapRecord],
        **knobs,
    ) -> Iterator[ConnectionAnalysis]:
        """Yield each connection's analysis as its flow closes."""
        request = AnalysisRequest(source=source, **knobs)
        return iter_analyze_pcap(
            request.source,
            sniffer_location=request.sniffer_location,
            windows=request.windows,
            config=request.config,
            min_data_packets=request.min_data_packets,
            strict=self._knob(request.strict, self.strict),
            mmap=self._knob(request.mmap, self.mmap),
            decode_batch=self._knob(request.decode_batch, self.decode_batch),
            series_backend=self._knob(
                request.series_backend, self.series_backend
            ),
            budget=self._knob(request.budget, self.budget),
        )

    def extract_bgp(
        self,
        source: BinaryIO | str | Path | list[PcapRecord],
        min_data_packets: int = 1,
        health: TraceHealth | None = None,
    ) -> dict[tuple, StreamResult]:
        """Reconstruct per-connection BGP message streams (pcap2bgp)."""
        if health is None and not self.strict:
            health = TraceHealth()
        return pcap_to_bgp(
            source, min_data_packets=min_data_packets, health=health
        )

    # ------------------------------------------------------------------ #
    # The analysis service                                               #
    # ------------------------------------------------------------------ #
    def build_server(self, request: ServeRequest | None = None, **knobs):
        """Construct (but do not run) an analysis service.

        The returned :class:`~repro.serve.AnalysisServer` hosts
        sessions whose defaults come from this pipeline (budget,
        strict, series backend); callers drive it themselves —
        ``await server.serve()`` inside a loop, or ``server.run()``
        to block.  The pipeline's observability context (or, absent
        one, a metrics-only server context backing ``/metrics``) is
        ambient while the server runs, so every session thread
        records into it.
        """
        from repro.serve import AnalysisServer, SessionManager
        from repro.serve.http import server_observability

        if request is None:
            request = ServeRequest(**knobs)
        elif knobs:
            request = replace(request, **knobs)
        obs = self.obs or server_observability()
        manager = SessionManager(
            max_sessions=request.max_sessions,
            budget=self._knob(request.budget, self.budget),
            sniffer_location=request.sniffer_location,
            min_data_packets=request.min_data_packets,
            strict=self._knob(request.strict, self.strict),
            series_backend=self.series_backend,
        )
        return AnalysisServer(
            manager,
            host=request.host,
            port=request.port,
            obs=obs,
            trace_requests=request.trace_requests,
            drain_timeout=request.drain_timeout,
        )

    def serve(
        self,
        request: ServeRequest | None = None,
        on_ready=None,
        **knobs,
    ) -> bool:
        """Run the analysis service until it drains; blocking.

        Returns ``True`` when the drain was initiated by a signal
        (``tdat serve`` maps that to exit code 7), ``False`` for a
        programmatic ``POST /shutdown``.
        """
        return self.build_server(request, **knobs).run(on_ready=on_ready)

    # ------------------------------------------------------------------ #
    # Campaigns                                                          #
    # ------------------------------------------------------------------ #
    def campaign(
        self,
        name_or_config: str | CampaignConfig,
        **knobs,
    ) -> CampaignResult:
        """Run a campaign by registry name or explicit config."""
        if isinstance(name_or_config, CampaignConfig):
            request = CampaignRequest(config=name_or_config, **knobs)
        else:
            request = CampaignRequest(name=name_or_config, **knobs)
        return self.run(request)

    # ------------------------------------------------------------------ #
    # Dispatch                                                           #
    # ------------------------------------------------------------------ #
    def run(self, request: AnalysisRequest | CampaignRequest | ServeRequest):
        """Execute a request built elsewhere (CLI, benchmarks, tests).

        The pipeline's observability context (if any) is ambient for
        the duration of the request, so every engine layer it touches
        records into the same registry and tracer.
        """
        with use_obs(self.obs or None):
            if isinstance(request, AnalysisRequest):
                workers = self._knob(request.workers, self.workers)
                with self._lease_pool(workers) as pool:
                    return analyze_pcap(
                        request.source,
                        sniffer_location=request.sniffer_location,
                        windows=request.windows,
                        config=request.config,
                        min_data_packets=request.min_data_packets,
                        strict=self._knob(request.strict, self.strict),
                        streaming=self._knob(
                            request.streaming, self.streaming
                        ),
                        pool=pool,
                        mmap=self._knob(request.mmap, self.mmap),
                        decode_batch=self._knob(
                            request.decode_batch, self.decode_batch
                        ),
                        series_backend=self._knob(
                            request.series_backend, self.series_backend
                        ),
                        budget=self._knob(request.budget, self.budget),
                    )
            if isinstance(request, CampaignRequest):
                if request.seed is None and self.seed is not None:
                    request = replace(request, seed=self.seed)
                workers = self._knob(request.workers, self.workers)
                checkpoint_dir = self._knob(
                    request.checkpoint_dir, self.checkpoint_dir
                )
                with self._lease_pool(workers) as pool:
                    return run_campaign(
                        request.resolve(),
                        strict=self._knob(request.strict, self.strict),
                        pool=pool,
                        checkpoint_dir=checkpoint_dir,
                        resume_from=checkpoint_dir if request.resume else None,
                    )
            if isinstance(request, ServeRequest):
                return self.serve(request)
        raise TypeError(f"not a pipeline request: {request!r}")

    @staticmethod
    def _knob(value, default):
        return default if value is None else value


__all__ = [
    "AnalysisRequest",
    "CampaignRequest",
    "ServeRequest",
    "Pipeline",
    "TdatReport",
    "CampaignResult",
    "TraceHealth",
    "SERIES_BACKENDS",
    "SeriesConfig",
    "ResourceBudget",
]
