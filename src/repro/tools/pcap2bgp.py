"""pcap2bgp: reconstruct BGP messages out of a raw packet trace.

The paper's side tool (section II-A, Table VI): for vendor collectors
that keep no MRT archive, the BGP message stream is recovered from the
tcpdump trace itself.  The reconstruction handles TCP out-of-order
delivery and retransmissions, then extracts individual BGP messages
from the contiguous byte stream and stores them as MRT records.

Each message is stamped with the capture time of the packet whose
arrival made it complete and contiguous — the earliest moment a
receiver behind the tap could have had it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO

from repro.analysis.profile import Connection, Trace
from repro.bgp.messages import BgpError, BgpMessage, MessageDecoder, UpdateMessage
from repro.bgp.mrt import MrtRecord, write_mrt
from repro.core.health import STAGE_BGP, TraceHealth
from repro.wire.pcap import PcapRecord


@dataclass
class TimedMessage:
    """One reconstructed message with its completion timestamp."""

    timestamp_us: int
    message: BgpMessage


@dataclass
class StreamResult:
    """Reconstruction output for one direction of one connection."""

    sender_ip: str
    receiver_ip: str
    messages: list[TimedMessage]
    stream_bytes: int
    missing_bytes: int  # holes never filled (capture drops)
    decode_error: str | None = None
    resync_events: int = 0  # malformed messages skipped via marker scan
    skipped_bytes: int = 0  # stream bytes those skips discarded

    def updates(self) -> list[TimedMessage]:
        """Only the UPDATE messages."""
        return [m for m in self.messages if isinstance(m.message, UpdateMessage)]


def reconstruct_stream(
    connection: Connection,
    resync: bool = True,
    health: TraceHealth | None = None,
) -> StreamResult:
    """Reassemble the data direction of one connection into messages.

    With ``resync`` (the default) a malformed BGP message costs exactly
    that message: the decoder scans forward for the next marker and
    resumes, recording the skip in the result (and ``health`` when
    given).  With ``resync=False`` the first decode error stops the
    stream, preserved in ``decode_error`` — the legacy fail-fast mode.
    """
    messages: list[TimedMessage] = []
    pending: dict[int, bytes] = {}  # rel_seq -> payload not yet contiguous
    next_seq = 0
    stream_bytes = 0
    error: str | None = None
    current_time = 0

    def on_issue(kind: str, bytes_lost: int, detail: str) -> None:
        nonlocal error
        if error is None:
            error = f"{kind}: {detail}"
        if health is not None:
            health.record(
                STAGE_BGP, kind,
                timestamp_us=current_time,
                bytes_lost=bytes_lost,
                detail=f"{connection.key}: {detail}",
            )

    decoder = MessageDecoder(resync=resync, on_issue=on_issue)

    def feed(data: bytes, timestamp: int) -> None:
        nonlocal stream_bytes, error, current_time
        stream_bytes += len(data)
        current_time = timestamp
        if error is not None and not resync:
            return
        try:
            for message in decoder.feed(data):
                messages.append(TimedMessage(timestamp, message))
        except BgpError as exc:
            error = str(exc)
            if health is not None:
                health.record(
                    STAGE_BGP, "stream-desynchronized",
                    timestamp_us=timestamp,
                    detail=f"{connection.key}: {exc}",
                )

    for packet in connection.data_packets():
        seq = connection.relative_seq(packet)
        end = seq + packet.payload_len
        if end <= next_seq:
            continue  # pure retransmission of old data
        if seq > next_seq:
            pending.setdefault(seq, packet.payload)
            continue
        feed(packet.payload[next_seq - seq :], packet.timestamp_us)
        next_seq = end
        # Drain any stashed segments that are now contiguous.
        progressed = True
        while progressed:
            progressed = False
            for stash_seq in sorted(pending):
                payload = pending[stash_seq]
                stash_end = stash_seq + len(payload)
                if stash_end <= next_seq:
                    del pending[stash_seq]
                    progressed = True
                elif stash_seq <= next_seq:
                    del pending[stash_seq]
                    feed(payload[next_seq - stash_seq :], packet.timestamp_us)
                    next_seq = stash_end
                    progressed = True
                    break
    missing = sum(
        max(0, seq + len(payload) - max(next_seq, seq))
        for seq, payload in pending.items()
    )
    if missing > 0 and health is not None:
        # Capture drops left sequence holes that never filled: the
        # stashed segments beyond them could not be decoded.
        health.record(
            STAGE_BGP, "stream-hole",
            timestamp_us=current_time,
            bytes_lost=missing,
            detail=f"{connection.key}: {missing} stream bytes never arrived",
            benign=True,
        )
    return StreamResult(
        sender_ip=connection.sender_ip or "0.0.0.0",
        receiver_ip=connection.receiver_ip or "0.0.0.0",
        messages=messages,
        stream_bytes=stream_bytes,
        missing_bytes=missing,
        decode_error=error,
        resync_events=decoder.resync_count,
        skipped_bytes=decoder.bytes_skipped,
    )


class StreamingPcap2Bgp:
    """Online reconstruction: feed captured frames as they arrive.

    The paper notes pcap2bgp "could run either online or offline"; this
    is the online half.  Frames go in one at a time (e.g. straight off
    a live tap), reassembly state is kept per flow direction, and every
    completed BGP message is delivered to ``on_message(flow, timed)``
    the moment its last contiguous byte arrives.
    """

    def __init__(self, on_message=None, resync: bool = True) -> None:
        self.on_message = on_message
        self.resync = resync
        self._flows: dict[tuple, dict] = {}
        self.messages: list[tuple[tuple, TimedMessage]] = []
        self.frames_consumed = 0
        self.skipped_frames = 0
        self.resync_events = 0

    def feed(self, record: PcapRecord) -> list[TimedMessage]:
        """Process one captured frame; returns messages it completed."""
        from repro.wire import frames as _frames

        self.frames_consumed += 1
        try:
            parsed = _frames.parse_frame(record.data)
        except (_frames.FrameError, ValueError):
            self.skipped_frames += 1
            return []
        if not parsed.tcp.payload and not parsed.tcp.is_syn:
            return []
        flow = parsed.flow
        state = self._flows.get(flow)
        if state is None:
            state = {
                "isn": None,
                "next_seq": 0,
                "pending": {},
                "decoder": MessageDecoder(
                    resync=self.resync, on_issue=self._count_resync
                ),
                "dead": False,
            }
            self._flows[flow] = state
        if parsed.tcp.is_syn:
            state["isn"] = parsed.tcp.seq
            return []
        if state["dead"] or not parsed.tcp.payload:
            return []
        if state["isn"] is None:
            state["isn"] = parsed.tcp.seq - 1
        rel = (parsed.tcp.seq - state["isn"] - 1) & 0xFFFFFFFF
        return self._ingest(flow, state, rel, parsed.tcp.payload,
                            record.timestamp_us)

    def _count_resync(self, kind: str, bytes_lost: int, detail: str) -> None:
        self.resync_events += 1

    def _ingest(self, flow, state, seq, payload, timestamp):
        out: list[TimedMessage] = []

        def feed_bytes(data: bytes) -> None:
            if state["dead"]:
                return
            try:
                for message in state["decoder"].feed(data):
                    timed = TimedMessage(timestamp, message)
                    out.append(timed)
                    self.messages.append((flow, timed))
                    if self.on_message is not None:
                        self.on_message(flow, timed)
            except BgpError:
                state["dead"] = True

        end = seq + len(payload)
        if end <= state["next_seq"]:
            return out  # pure retransmission
        if seq > state["next_seq"]:
            state["pending"].setdefault(seq, payload)
            return out
        feed_bytes(payload[state["next_seq"] - seq:])
        state["next_seq"] = end
        progressed = True
        while progressed and not state["dead"]:
            progressed = False
            for stash_seq in sorted(state["pending"]):
                stashed = state["pending"][stash_seq]
                stash_end = stash_seq + len(stashed)
                if stash_end <= state["next_seq"]:
                    del state["pending"][stash_seq]
                    progressed = True
                elif stash_seq <= state["next_seq"]:
                    del state["pending"][stash_seq]
                    feed_bytes(stashed[state["next_seq"] - stash_seq:])
                    state["next_seq"] = stash_end
                    progressed = True
                    break
        return out

    def flows(self) -> list[tuple]:
        """The flow 4-tuples seen so far."""
        return list(self._flows)


def pcap_to_bgp(
    source: BinaryIO | str | Path | list[PcapRecord],
    min_data_packets: int = 1,
    resync: bool = True,
    health: TraceHealth | None = None,
) -> dict[tuple, StreamResult]:
    """Reconstruct every connection's BGP stream from a capture."""
    if isinstance(source, Trace):
        trace = source
    else:
        trace = Trace.from_pcap(
            source, health=health, tolerant=health is not None
        )
    results: dict[tuple, StreamResult] = {}
    for connection in trace:
        if connection.profile is None:
            continue
        if connection.profile.total_data_packets < min_data_packets:
            continue
        results[connection.key] = reconstruct_stream(
            connection, resync=resync, health=health
        )
    return results


def pcap_to_mrt(
    source: BinaryIO | str | Path | list[PcapRecord],
    target: BinaryIO | str | Path,
    local_as: int = 0,
    peer_as: int = 0,
) -> int:
    """pcap -> MRT file of all reconstructed messages; returns the count."""
    results = pcap_to_bgp(source)
    records = []
    for result in results.values():
        for timed in result.messages:
            records.append(
                MrtRecord(
                    timestamp_us=timed.timestamp_us,
                    peer_as=peer_as,
                    local_as=local_as,
                    peer_ip=result.sender_ip,
                    local_ip=result.receiver_ip,
                    message=timed.message,
                )
            )
    records.sort(key=lambda r: r.timestamp_us)
    write_mrt(target, records)
    return len(records)
