"""Correlating BGP messages with the TCP packets that carried them.

The paper's Table III shows updates a router *queued at the same
instant* arriving at the receiving BGP process seconds apart because of
retransmissions — a mapping between application messages and transport
packets.  This module makes that mapping a first-class API: for every
reconstructed BGP message it reports which sequence-range of the stream
held it, when its bytes were first put on the wire, when the receiver
finally had it contiguously, and whether retransmissions were involved.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.analysis.profile import Connection
from repro.bgp.messages import BgpMessage, UpdateMessage, encode_message
from repro.tools.pcap2bgp import reconstruct_stream


@dataclass
class CorrelatedMessage:
    """One BGP message aligned with its transport-level history."""

    message: BgpMessage
    start_seq: int  # relative stream offset of the first byte
    end_seq: int  # one past the last byte
    first_attempt_us: int  # first time any of its bytes hit the wire
    delivered_us: int  # when the receiver acknowledged the last byte
    retransmitted: bool  # did recovering it need retransmissions?

    @property
    def delay_us(self) -> int:
        """Wire-to-delivery delay (the paper's Table III column)."""
        return max(self.delivered_us - self.first_attempt_us, 0)

    @property
    def wire_length(self) -> int:
        return self.end_seq - self.start_seq


def correlate_messages(connection: Connection) -> list[CorrelatedMessage]:
    """Align every reconstructed message with its carrying packets."""
    stream = reconstruct_stream(connection)
    if stream.decode_error is not None:
        raise ValueError(f"stream does not decode: {stream.decode_error}")

    data = sorted(
        connection.data_packets(), key=lambda p: connection.relative_seq(p)
    )
    starts = [connection.relative_seq(p) for p in data]
    from repro.core.timeranges import TimeRangeSet

    # Bytes that crossed the tap more than once: retransmitted stream
    # content, independent of how the resends were re-segmented (a
    # go-back-N recovery coalesces holes into fresh MSS boundaries).
    seen = TimeRangeSet()
    retx_coverage = TimeRangeSet()
    for packet in connection.data_packets():
        seq = connection.relative_seq(packet)
        span = TimeRangeSet([(seq, seq + packet.payload_len)])
        for dup in seen.intersection(span):
            retx_coverage.add(dup)
        seen.add_span(seq, seq + packet.payload_len)

    max_payload = max((p.payload_len for p in data), default=0)

    def covering_packets(start: int, end: int):
        # Any packet whose [seq, seq+len) overlaps [start, end) counts;
        # walk back past duplicates and boundary-spanning segments.
        index = bisect.bisect_right(starts, start) - 1
        while index > 0 and starts[index - 1] + max_payload > start:
            index -= 1
        index = max(index, 0)
        found = []
        while index < len(data):
            seq = starts[index]
            if seq >= end:
                break
            packet = data[index]
            if seq + packet.payload_len > start:
                found.append(packet)
            index += 1
        return found

    def overlaps_retransmission(start: int, end: int) -> bool:
        return bool(retx_coverage.overlapping(start, end))

    # Delivery is judged by the receiver's cumulative-ACK frontier: the
    # tap may capture bytes the receiver never got (downstream losses),
    # so capture completion is not delivery.
    ack_events = sorted(
        (a.timestamp_us, connection.relative_ack(a))
        for a in connection.ack_packets()
    )
    frontier_times: list[int] = []
    frontier_values: list[int] = []
    best = 0
    for t, value in ack_events:
        if value > best:
            best = value
            frontier_times.append(t)
            frontier_values.append(best)

    def delivery_time(end: int, fallback: int) -> int:
        index = bisect.bisect_left(frontier_values, end)
        if index < len(frontier_times):
            return frontier_times[index]
        return fallback

    correlated: list[CorrelatedMessage] = []
    offset = 0
    for timed in stream.messages:
        length = len(encode_message(timed.message))
        start, end = offset, offset + length
        offset = end
        packets = covering_packets(start, end)
        first_attempt = min(
            (p.timestamp_us for p in packets), default=timed.timestamp_us
        )
        delivered = delivery_time(end, timed.timestamp_us)
        correlated.append(
            CorrelatedMessage(
                message=timed.message,
                start_seq=start,
                end_seq=end,
                first_attempt_us=first_attempt,
                delivered_us=max(delivered, first_attempt),
                retransmitted=overlaps_retransmission(start, end),
            )
        )
    return correlated


def delayed_updates(
    connection: Connection, min_delay_us: int = 500_000
) -> list[CorrelatedMessage]:
    """Table III extraction: UPDATEs delayed beyond ``min_delay_us``."""
    return [
        c
        for c in correlate_messages(connection)
        if isinstance(c.message, UpdateMessage) and c.delay_us >= min_delay_us
    ]
