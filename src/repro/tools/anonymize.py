"""Prefix-preserving trace anonymization for sharing captures.

The paper's datasets never left the ISP — the traces identify routers,
peers and routing policy.  This tool makes captures shareable while
keeping them useful for delay analysis:

* IPv4 addresses are anonymized with a Crypto-PAn-style
  prefix-preserving scheme (a keyed PRF decides each output bit from
  the input's bit-prefix), so subnet structure — which T-DAT's
  upstream/downstream reasoning relies on — survives;
* MAC addresses are re-derived from the anonymized IPs;
* IP and TCP checksums are recomputed so standard tools still accept
  the trace;
* optionally the TCP payload is zeroed (``strip_payload``), removing
  the BGP routing content entirely while preserving every length and
  timestamp — exactly the information T-DAT consumes.

Everything else (ports, sequence numbers, flags, windows, options,
timing) is preserved bit-for-bit.
"""

from __future__ import annotations

import hmac
import hashlib
from pathlib import Path
from typing import BinaryIO

from repro.wire import ethernet, frames, ip, tcpw
from repro.wire.pcap import PcapReader, PcapRecord, PcapWriter


class PrefixPreservingAnonymizer:
    """Crypto-PAn-style keyed, prefix-preserving IPv4 anonymization.

    Two addresses sharing a k-bit prefix map to addresses sharing
    exactly a k-bit prefix; the mapping is deterministic per key.
    """

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("anonymization key must be non-empty")
        self._key = key
        self._cache: dict[str, str] = {}

    def _prf_bit(self, prefix_bits: str) -> int:
        digest = hmac.new(
            self._key, prefix_bits.encode(), hashlib.sha256
        ).digest()
        return digest[0] & 1

    def anonymize_ip(self, address: str) -> str:
        """Map one dotted-quad address."""
        cached = self._cache.get(address)
        if cached is not None:
            return cached
        value = int.from_bytes(ip.ip_to_bytes(address), "big")
        bits = f"{value:032b}"
        out = 0
        for i in range(32):
            flip = self._prf_bit(bits[:i])
            out = (out << 1) | (int(bits[i]) ^ flip)
        result = ip.bytes_to_ip(out.to_bytes(4, "big"))
        self._cache[address] = result
        return result


def anonymize_record(
    record: PcapRecord,
    anonymizer: PrefixPreservingAnonymizer,
    strip_payload: bool = False,
) -> PcapRecord:
    """Anonymize one captured frame; non-IPv4/TCP frames pass through."""
    try:
        parsed = frames.parse_frame(record.data)
    except (frames.FrameError, ValueError):
        return record
    src = anonymizer.anonymize_ip(parsed.src_ip)
    dst = anonymizer.anonymize_ip(parsed.dst_ip)
    tcp = parsed.tcp
    if strip_payload and tcp.payload:
        tcp = tcpw.TcpHeader(
            src_port=tcp.src_port,
            dst_port=tcp.dst_port,
            seq=tcp.seq,
            ack=tcp.ack,
            flags=tcp.flags,
            window=tcp.window,
            payload=bytes(len(tcp.payload)),
            mss_option=tcp.mss_option,
            wscale_option=tcp.wscale_option,
            sack_permitted=tcp.sack_permitted,
            sack_blocks=tcp.sack_blocks,
            urgent=tcp.urgent,
        )
    data = frames.build_frame(
        src,
        dst,
        tcp,
        identification=parsed.ipv4.identification,
        ttl=parsed.ipv4.ttl,
    )
    return PcapRecord(
        timestamp_us=record.timestamp_us,
        data=data,
        original_length=record.original_length,
    )


def anonymize_pcap(
    source: BinaryIO | str | Path,
    target: BinaryIO | str | Path,
    key: bytes,
    strip_payload: bool = False,
) -> int:
    """Anonymize a whole capture file; returns the record count."""
    anonymizer = PrefixPreservingAnonymizer(key)
    count = 0
    with PcapReader(source) as reader, PcapWriter(target) as writer:
        for record in reader:
            writer.write(anonymize_record(record, anonymizer, strip_payload))
            count += 1
    return count
