"""``tdat``: one command line for the whole tool suite.

The paper's Table VI tools used to ship as five separate console
scripts; they are now subcommands of a single ``tdat`` command sharing
one parser, one error discipline and one exit-code contract:

* ``tdat analyze <trace.pcap>`` — full delay analysis (the classic
  ``tdat`` invocation; a bare ``tdat <trace.pcap>`` still works);
* ``tdat campaign <name>`` — run a measurement campaign;
* ``tdat report`` — run campaigns and render the survey tables;
* ``tdat bench`` — performance benchmarks (campaign scaling, per-stage
  ingest throughput, observability/checkpoint overhead) with an
  append-only run history and regression gates;
* ``tdat fuzz`` — fault-injection harness over the ingest pipeline;
* ``tdat chaos`` — seeded chaos sweep over the execution stack
  (checkpoint journal, work pool, graceful drain);
* ``tdat anonymize / pcap2bgp / tcptrace / bgplot`` — the offline
  capture tools.

All subcommands degrade gracefully on operational input: a missing
file or a trace too damaged to read produces a one-line error on
stderr and exit code 2, never a traceback.  Analysis subcommands
report everything tolerant ingest had to drop (the
:class:`~repro.core.health.TraceHealth` ledger) and exit with code 3
when the input was readable but damaged; ``--strict`` restores
fail-fast behaviour, and ``--workers N`` fans work out across
processes without changing any result.

Campaigns additionally run *supervised*: ``--task-timeout`` and
``--max-retries`` bound and retry individual episodes, and
``--checkpoint-dir`` journals completed episodes so that an
interrupted run (Ctrl-C, SIGTERM, reboot) exits with code 4 and can be
continued with ``--resume`` — the merged result is byte-identical to
an uninterrupted run.

Exit codes (shared by every subcommand, also shown in ``--help``):
see :data:`EXIT_CODE_TABLE`.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.render import analysis_to_dict, report_payload
from repro.analysis.series import (
    SNIFFER_AT_RECEIVER,
    SNIFFER_AT_SENDER,
    SNIFFER_IN_MIDDLE,
)
from repro.api import Pipeline
from repro.core.health import IngestError
from repro.lint.cli import (
    LINT_EXIT_CODES,
    configure_parser as _configure_lint_parser,
    run_with_args as _run_lint,
)
from repro.tools import bgplot, pcap2bgp, tcptrace_lite
from repro.tools.bench import (
    configure_parser as _configure_bench_parser,
    run_with_args as _run_bench,
)
from repro.tools.report import duration_statistics, render_markdown
from repro.wire.pcap import PcapError
from repro.workloads.campaign import CAMPAIGNS
from repro.workloads.checkpoint import CampaignInterrupted

_LOCATIONS = [SNIFFER_AT_RECEIVER, SNIFFER_AT_SENDER, SNIFFER_IN_MIDDLE]

EXIT_OK = 0
EXIT_NOTHING = 1
EXIT_ERROR = 2
EXIT_ISSUES = 3
EXIT_INTERRUPTED = 4
EXIT_REGRESSION = 5
EXIT_DEGRADED = 6
EXIT_DRAINED = 7

#: the one exit-code contract every subcommand shares; rendered
#: verbatim into ``--help`` so the table cannot drift from the code.
EXIT_CODE_TABLE = """\
exit codes:
  0  success
  1  nothing to analyze (no connections / no transfers)
  2  error (unreadable input, bad arguments, damaged beyond salvage)
  3  success, but tolerant ingest recorded non-benign issues
  4  interrupted; completed episodes checkpointed, re-run with --resume
  5  benchmark gate failed (tdat bench: speedup, overhead or regression)
  6  completed, but the resource budget shed state (degraded analysis)
  7  server drained on signal (tdat serve: in-flight sessions flushed)\
"""

SUBCOMMANDS = (
    "analyze",
    "bench",
    "campaign",
    "chaos",
    "fuzz",
    "report",
    "serve",
    "stats",
    "anonymize",
    "lint",
    "pcap2bgp",
    "tcptrace",
    "bgplot",
)


def _guarded_call(prog: str, func, *args) -> int:
    """Turn ingest failures into one-line errors + exit code 2.

    Every subcommand runs under this guard so operational mishaps — a
    missing trace, a non-pcap file, a capture damaged beyond what the
    tolerant reader can salvage, a decode failure — end in a
    diagnostic on stderr and a nonzero status, never a traceback.
    """
    try:
        return func(*args)
    except FileNotFoundError as exc:
        name = getattr(exc, "filename", None) or exc
        print(f"{prog}: error: no such file: {name}", file=sys.stderr)
        return EXIT_ERROR
    except IsADirectoryError as exc:
        print(f"{prog}: error: is a directory: {exc.filename}", file=sys.stderr)
        return EXIT_ERROR
    except (PcapError, IngestError, ValueError, OSError) as exc:
        print(f"{prog}: error: {exc}", file=sys.stderr)
        return EXIT_ERROR


def _execution_options(parser: argparse.ArgumentParser) -> None:
    """The knobs every analysis-running subcommand shares."""
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes (0 = all CPUs; results are identical)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail fast on damaged input instead of degrading gracefully",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of text",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="S",
        help="kill any single task running longer than S seconds "
        "(parallel runs; the failure is contained as a health issue)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="retry transient task failures (crashed worker, timeout) "
        "up to N times with the same seed (default: 0)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress progress and health chatter on stderr",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE",
        help="enable observability and write a Chrome trace_event JSON "
        "trace (open at https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="enable observability and write the metrics snapshot as "
        "JSON (render with `tdat stats FILE`)",
    )


def _status(args, message: str) -> None:
    """Progress/summary chatter: stderr, silenced by ``--quiet``.

    Keeping every non-result line off stdout is what makes
    ``tdat ... --json | json_tool`` composable.
    """
    if not getattr(args, "quiet", False):
        print(message, file=sys.stderr)


def _make_obs(args):
    """A live observability context when an export was requested."""
    if getattr(args, "trace_out", None) or getattr(args, "metrics_out", None):
        from repro.obs import Observability

        return Observability.create()
    return None


def _write_obs(args, obs) -> None:
    """Export the requested observability artifacts."""
    if obs is None:
        return
    if args.trace_out:
        obs.tracer.write_chrome(args.trace_out)
        _status(args, f"wrote Chrome trace -> {args.trace_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            json.dump(obs.metrics.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        _status(args, f"wrote metrics -> {args.metrics_out}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tdat",
        description="TCP Delay Analysis Tool for BGP table transfers",
        epilog=EXIT_CODE_TABLE,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="command")

    def add_parser(name: str, **kwargs) -> argparse.ArgumentParser:
        # Every subcommand shows the same exit-code table; one source.
        return sub.add_parser(
            name,
            epilog=EXIT_CODE_TABLE,
            formatter_class=argparse.RawDescriptionHelpFormatter,
            **kwargs,
        )

    p = add_parser(
        "analyze", help="delay analysis of every connection in a capture"
    )
    p.add_argument("pcap", help="input pcap trace")
    p.add_argument(
        "--sniffer-location",
        choices=_LOCATIONS,
        default=SNIFFER_AT_RECEIVER,
        help="where the capture was taken (default: receiver)",
    )
    p.add_argument(
        "--width", type=int, default=100, help="square-wave panel width"
    )
    p.add_argument(
        "--streaming", action="store_true",
        help="analyze each flow as it closes (bounded-memory ingest)",
    )
    p.add_argument(
        "--max-live-connections", type=int, default=None, metavar="N",
        help="budget: evict tracked state past N simultaneously open "
        "connections (deterministic; shed state is reported and the "
        "run exits 6 when anything was actually evicted)",
    )
    p.add_argument(
        "--max-state-bytes", type=int, default=None, metavar="B",
        help="budget: cap total tracked analysis state at B modeled bytes",
    )
    p.add_argument(
        "--max-connection-packets", type=int, default=None, metavar="N",
        help="budget: cap any single connection at N tracked packets "
        "(excess data is shed; the connection analyzes as incomplete)",
    )
    _execution_options(p)
    p.set_defaults(handler=_cmd_analyze)

    p = add_parser("campaign", help="run one measurement campaign")
    p.add_argument(
        "name", choices=sorted(CAMPAIGNS),
        help="campaign from the paper's Table I",
    )
    p.add_argument("--transfers", type=int, help="override the transfer count")
    p.add_argument("--seed", type=int, help="override the campaign seed")
    p.add_argument(
        "--fail-episode", type=int, action="append", default=[], metavar="N",
        help="inject a transient crash into episode N (repeatable; "
        "exercises the pool's fault isolation and retry path)",
    )
    p.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="journal completed episodes under DIR; an interrupted run "
        "exits with code 4 and can be continued with --resume",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="skip episodes already journaled in --checkpoint-dir "
        "(config and seed must match the journal's manifest)",
    )
    _execution_options(p)
    p.set_defaults(handler=_cmd_campaign)

    p = add_parser(
        "bench",
        help="performance benchmarks with run history + regression gates",
    )
    _configure_bench_parser(p)
    p.set_defaults(handler=_cmd_bench)

    p = add_parser(
        "serve",
        help="run the analysis service (long-running sessions over HTTP)",
    )
    p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    p.add_argument(
        "--port", type=int, default=8321,
        help="bind port; 0 picks an ephemeral port (default: 8321)",
    )
    p.add_argument(
        "--max-sessions", type=int, default=64, metavar="N",
        help="most concurrently live sessions (default: 64)",
    )
    p.add_argument(
        "--sniffer-location",
        choices=_LOCATIONS,
        default=SNIFFER_AT_RECEIVER,
        help="default capture vantage for new sessions "
        "(default: receiver; clients can override per session)",
    )
    p.add_argument(
        "--max-live-connections", type=int, default=None, metavar="N",
        help="default session budget: evict past N live connections",
    )
    p.add_argument(
        "--max-state-bytes", type=int, default=None, metavar="B",
        help="default session budget: cap tracked state at B bytes",
    )
    p.add_argument(
        "--max-connection-packets", type=int, default=None, metavar="N",
        help="default session budget: cap one connection at N packets",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="S",
        help="seconds a graceful drain waits for sessions (default: 30)",
    )
    p.add_argument(
        "--trace-requests", action="store_true",
        help="record a serve.request span per request (unbounded "
        "tracer growth; for short diagnostic runs)",
    )
    _execution_options(p)
    p.set_defaults(handler=_cmd_serve)

    p = add_parser(
        "report", help="run campaigns and render the survey tables"
    )
    p.add_argument(
        "--campaign", action="append", choices=sorted(CAMPAIGNS),
        metavar="NAME", help="campaign to include (repeatable; default: all)",
    )
    p.add_argument("--transfers", type=int, help="override the transfer count")
    p.add_argument("--seed", type=int, help="override the campaign seeds")
    p.add_argument("--out", help="write the report here instead of stdout")
    _execution_options(p)
    p.set_defaults(handler=_cmd_report)

    p = add_parser(
        "stats", help="render a metrics snapshot as a sorted table"
    )
    p.add_argument(
        "metrics", help="metrics JSON written by --metrics-out",
    )
    p.add_argument(
        "--deterministic-only", action="store_true",
        help="show only metrics that are identical across worker counts "
        "(drop wall-clock / execution-substrate entries)",
    )
    p.set_defaults(handler=_cmd_stats)

    p = add_parser(
        "chaos",
        help="seeded chaos sweep over the campaign execution stack",
    )
    p.add_argument(
        "--seeds", type=int, default=25,
        help="number of consecutive chaos seeds to sweep (default: 25)",
    )
    p.add_argument(
        "--base-seed", type=int, default=0,
        help="first seed of the sweep (default: 0)",
    )
    p.add_argument(
        "--transfers", type=int, default=3,
        help="episodes per micro campaign (default: 3)",
    )
    p.add_argument(
        "--matrix-out", metavar="PATH",
        help="write the per-fault-class outcome matrix (JSON) to PATH",
    )
    p.add_argument(
        "--json", action="store_true", dest="chaos_json",
        help="emit the full chaos report as JSON",
    )
    p.add_argument("--verbose", action="store_true", help="print every case")
    p.set_defaults(handler=_cmd_chaos)

    p = add_parser(
        "fuzz", help="fault-injection harness over the ingest pipeline"
    )
    p.add_argument(
        "--seeds", type=int, default=200,
        help="number of mangled variants to run (default: 200)",
    )
    p.add_argument(
        "--base-seed", type=int, default=0,
        help="first seed of the campaign (default: 0)",
    )
    p.add_argument(
        "--table", type=int, default=2_000,
        help="prefixes in the clean trace's table (default: 2000)",
    )
    p.add_argument(
        "--max-ops", type=int, default=3,
        help="most fault operators composed per case (default: 3)",
    )
    p.add_argument(
        "--stress", action="store_true",
        help="also run the adversarial stress corpus (connection "
        "floods, idle flows, pathological reordering) through a "
        "tight resource budget and check the degradation contract",
    )
    p.add_argument(
        "--stress-connections", type=int, default=2_000, metavar="N",
        help="connections in the stress corpus's flood trace "
        "(default: 2000)",
    )
    p.add_argument("--verbose", action="store_true", help="print every case")
    p.set_defaults(handler=_cmd_fuzz)

    p = add_parser(
        "anonymize", help="prefix-preserving pcap anonymization"
    )
    p.add_argument("pcap", help="input pcap trace")
    p.add_argument("out", help="anonymized output pcap")
    p.add_argument(
        "--key", required=True,
        help="anonymization key (same key -> same mapping)",
    )
    p.add_argument(
        "--strip-payload", action="store_true",
        help="zero TCP payloads (lengths and timing preserved)",
    )
    p.set_defaults(handler=_cmd_anonymize)

    p = add_parser(
        "pcap2bgp", help="reconstruct BGP messages into an MRT file"
    )
    p.add_argument("pcap", help="input pcap trace")
    p.add_argument("mrt", help="output MRT file")
    p.add_argument("--local-as", type=int, default=0)
    p.add_argument("--peer-as", type=int, default=0)
    p.set_defaults(handler=_cmd_pcap2bgp)

    p = add_parser("tcptrace", help="per-connection summaries")
    p.add_argument("pcap", help="input pcap trace")
    p.set_defaults(handler=_cmd_tcptrace)

    # Lint carries its own exit-code contract (0 clean / 1 findings /
    # 2 failed to run), so it bypasses the shared EXIT_CODE_TABLE.
    p = sub.add_parser(
        "lint",
        help="determinism & isolation static analysis over the source",
        epilog=LINT_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _configure_lint_parser(p)
    p.set_defaults(handler=_cmd_lint)

    p = add_parser("bgplot", help="event-series panels / CSV export")
    p.add_argument("pcap", help="input pcap trace")
    p.add_argument(
        "--csv", action="store_true", help="emit CSV instead of text panels"
    )
    p.add_argument(
        "--seq", action="store_true",
        help="render a tcptrace-style time-sequence graph too",
    )
    p.add_argument("--width", type=int, default=100)
    p.set_defaults(handler=_cmd_bgplot)

    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # Legacy compatibility: ``tdat trace.pcap`` predates subcommands.
    if argv and argv[0] not in SUBCOMMANDS and argv[0] not in ("-h", "--help"):
        argv.insert(0, "analyze")
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "resume", False) and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    return _guarded_call("tdat", args.handler, args)


# ---------------------------------------------------------------------- #
# Subcommand handlers                                                     #
# ---------------------------------------------------------------------- #
def _budget_from_args(args):
    """A :class:`ResourceBudget` when any budget flag was given."""
    limits = (
        args.max_live_connections, args.max_state_bytes,
        args.max_connection_packets,
    )
    if all(limit is None for limit in limits):
        return None
    from repro.analysis.budget import ResourceBudget

    return ResourceBudget(
        max_live_connections=args.max_live_connections,
        max_state_bytes=args.max_state_bytes,
        max_connection_packets=args.max_connection_packets,
    )


def _cmd_analyze(args) -> int:
    obs = _make_obs(args)
    pipe = Pipeline(
        workers=args.workers, strict=args.strict, streaming=args.streaming,
        task_timeout=args.task_timeout, max_retries=args.max_retries,
        obs=obs, budget=_budget_from_args(args),
    )
    report = pipe.analyze(args.pcap, sniffer_location=args.sniffer_location)
    _write_obs(args, obs)
    # Benign issues (recoveries, resume markers) are reported but do
    # not flip the exit code; only actual failures do.  A budget that
    # actually shed state gets its own completed-degraded exit path.
    noisy = not report.health.ok
    failed = bool(report.health.failures)
    degraded = report.degradation is not None and report.degradation.degraded
    if report.degradation is not None:
        _status(args, report.degradation.summary())
    if not len(report):
        if noisy:
            _status(args, report.health.summary())
        _status(args, "no analyzable TCP connections found")
        return EXIT_DEGRADED if degraded and not failed else EXIT_NOTHING
    if args.json:
        print(json.dumps(report_payload(report), indent=2))
    else:
        for analysis in report:
            print(bgplot.render_analysis(analysis, width=args.width))
            print()
    if noisy:
        _status(args, report.health.summary())
    if failed:
        return EXIT_ISSUES
    return EXIT_DEGRADED if degraded else EXIT_OK


def _cmd_campaign(args) -> int:
    overrides = {}
    if args.fail_episode:
        overrides["fail_episodes"] = tuple(args.fail_episode)
    obs = _make_obs(args)
    pipe = Pipeline(
        workers=args.workers, strict=args.strict,
        task_timeout=args.task_timeout, max_retries=args.max_retries,
        obs=obs,
    )
    try:
        result = pipe.campaign(
            args.name, seed=args.seed, transfers=args.transfers,
            overrides=overrides,
            checkpoint_dir=args.checkpoint_dir, resume=args.resume,
        )
    except CampaignInterrupted as exc:
        _write_obs(args, obs)
        print(f"tdat: {exc}", file=sys.stderr)
        return EXIT_INTERRUPTED
    _write_obs(args, obs)
    noisy = not result.health.ok
    failed = bool(result.health.failures)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        _status(
            args,
            f"campaign {result.name}: {len(result.records)} transfer(s), "
            f"{result.total_packets} data packets",
        )
    else:
        stats = duration_statistics(result)
        print(
            f"campaign {result.name} ({result.collector_kind} collector): "
            f"{len(result.records)} transfers, {result.routers} routers, "
            f"{result.total_packets} data packets, "
            f"{result.total_bytes} bytes"
        )
        if stats["count"]:
            print(
                f"durations: min {stats['min_s']:.1f}s / "
                f"median {stats['median_s']:.1f}s / "
                f"p80 {stats['p80_s']:.1f}s / max {stats['max_s']:.1f}s"
            )
        by_pathology: dict[str, int] = {}
        for record in result.records:
            by_pathology[record.pathology] = (
                by_pathology.get(record.pathology, 0) + 1
            )
        for pathology in sorted(by_pathology):
            print(f"  {pathology}: {by_pathology[pathology]}")
    if noisy:
        _status(args, result.health.summary())
    if not result.records:
        return EXIT_NOTHING
    return EXIT_ISSUES if failed else EXIT_OK


def _cmd_serve(args) -> int:
    """Run the analysis service until it drains.

    Startup failures (port in use, unresolvable bind address) raise
    ``OSError`` out of the bind, which the shared ``_guarded_call``
    discipline turns into a one-line stderr error and exit code 2 —
    never a traceback.
    """
    from repro.api import ServeRequest

    obs = _make_obs(args)
    pipe = Pipeline(
        strict=args.strict, obs=obs, budget=_budget_from_args(args),
    )
    request = ServeRequest(
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        sniffer_location=args.sniffer_location,
        trace_requests=args.trace_requests,
        drain_timeout=args.drain_timeout,
    )
    drained_on_signal = pipe.serve(
        request,
        on_ready=lambda host, port: _status(
            args, f"tdat serve: listening on http://{host}:{port}"
        ),
    )
    _write_obs(args, obs)
    if drained_on_signal:
        _status(args, "tdat serve: drained on signal")
        return EXIT_DRAINED
    return EXIT_OK


def _cmd_report(args) -> int:
    names = args.campaign or sorted(CAMPAIGNS)
    obs = _make_obs(args)
    pipe = Pipeline(
        workers=args.workers, strict=args.strict,
        task_timeout=args.task_timeout, max_retries=args.max_retries,
        obs=obs,
    )
    results = [
        pipe.campaign(name, seed=args.seed, transfers=args.transfers)
        for name in names
    ]
    _write_obs(args, obs)
    if args.json:
        text = json.dumps([r.to_dict() for r in results], indent=2)
    else:
        text = render_markdown(results)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        _status(args, f"wrote report -> {args.out}")
    else:
        print(text)
    for result in results:
        if not result.health.ok:
            _status(args, result.health.summary())
    failed = any(r.health.failures for r in results)
    return EXIT_ISSUES if failed else EXIT_OK


def _cmd_stats(args) -> int:
    """Render a ``--metrics-out`` snapshot as a sorted table."""
    with open(args.metrics) as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict):
        raise ValueError(
            f"{args.metrics}: not a metrics snapshot (expected a JSON object)"
        )
    rows = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        if not isinstance(entry, dict) or "type" not in entry:
            raise ValueError(
                f"{args.metrics}: entry {name!r} is not a metric"
            )
        if args.deterministic_only and entry.get("wall"):
            continue
        rows.append((name, entry))
    if not rows:
        print("no metrics recorded", file=sys.stderr)
        return EXIT_NOTHING
    width = max(max(len(name) for name, _ in rows), len("metric"))
    print(f"{'metric'.ljust(width)}  {'type':<10} value")
    for name, entry in rows:
        kind = entry["type"] + ("*" if entry.get("wall") else "")
        print(f"{name.ljust(width)}  {kind:<10} {_metric_summary(entry)}")
    if any(entry.get("wall") for _, entry in rows):
        _status(
            args,
            "* wall-domain metric: varies with host load and worker count",
        )
    return EXIT_OK


def _fmt_num(value) -> str:
    if isinstance(value, int):
        return str(value)
    return "0" if value == 0 else f"{value:.6g}"


def _metric_summary(entry: dict) -> str:
    kind = entry["type"]
    if kind == "counter":
        return _fmt_num(entry.get("value", 0))
    if kind == "gauge":
        return (
            f"{_fmt_num(entry.get('value', 0))} "
            f"(peak {_fmt_num(entry.get('peak', 0))}, "
            f"{entry.get('samples', 0)} sample(s))"
        )
    return (
        f"n={entry.get('count', 0)} "
        f"mean={_fmt_num(entry.get('mean', 0))} "
        f"min={_fmt_num(entry.get('min', 0))} "
        f"max={_fmt_num(entry.get('max', 0))} "
        f"total={_fmt_num(entry.get('total', 0))}"
    )


def _cmd_chaos(args) -> int:
    from repro.chaos import runner

    chaos_argv = [
        "--seeds", str(args.seeds),
        "--base-seed", str(args.base_seed),
        "--transfers", str(args.transfers),
    ]
    if args.matrix_out:
        chaos_argv += ["--matrix-out", args.matrix_out]
    if args.chaos_json:
        chaos_argv.append("--json")
    if args.verbose:
        chaos_argv.append("--verbose")
    return EXIT_ISSUES if runner.main(chaos_argv) else EXIT_OK


def _cmd_fuzz(args) -> int:
    from repro.faults import fuzz

    fuzz_argv = [
        "--seeds", str(args.seeds),
        "--base-seed", str(args.base_seed),
        "--table", str(args.table),
        "--max-ops", str(args.max_ops),
    ]
    if args.stress:
        fuzz_argv += [
            "--stress", "--stress-connections", str(args.stress_connections),
        ]
    if args.verbose:
        fuzz_argv.append("--verbose")
    return EXIT_ISSUES if fuzz.main(fuzz_argv) else EXIT_OK


def _cmd_anonymize(args) -> int:
    from repro.tools.anonymize import anonymize_pcap

    count = anonymize_pcap(
        args.pcap, args.out, args.key.encode(),
        strip_payload=args.strip_payload,
    )
    print(f"anonymized {count} records -> {args.out}")
    return EXIT_OK


def _cmd_pcap2bgp(args) -> int:
    count = pcap2bgp.pcap_to_mrt(
        args.pcap, args.mrt, local_as=args.local_as, peer_as=args.peer_as
    )
    print(f"wrote {count} MRT records to {args.mrt}")
    return EXIT_OK


def _cmd_tcptrace(args) -> int:
    rows = tcptrace_lite.summarize(args.pcap)
    print(tcptrace_lite.format_report(rows))
    return EXIT_OK


def _cmd_bgplot(args) -> int:
    report = Pipeline().analyze(args.pcap)
    for analysis in report:
        if args.csv:
            print(bgplot.series_to_csv(analysis.series))
        else:
            print(bgplot.render_panel(analysis.series, width=args.width))
            if args.seq:
                print()
                print(bgplot.render_time_sequence(analysis, width=args.width))
        print()
    return EXIT_OK


def _cmd_bench(args) -> int:
    # Returns EXIT_OK, EXIT_ERROR (a run failed or a fast path diverged
    # from its reference) or EXIT_REGRESSION (a perf gate tripped).
    return _run_bench(args)


def _cmd_lint(args) -> int:
    # Returns lint's own codes (0/1/2) documented in LINT_EXIT_CODES,
    # not the analysis table above.
    return _run_lint(args)


# The JSON flattening moved to repro.analysis.render so the analysis
# service shares it; the old private name stays importable for the
# benchmark harness and differential tests that compare shapes.
_analysis_to_dict = analysis_to_dict


if __name__ == "__main__":
    sys.exit(main())
