"""tcptrace-lite: per-connection summaries of a capture.

The repo's stand-in for the patched tcptrace of the paper's tool suite
(Table VI): connection inventory with the profile values T-DAT needs,
plus retransmission counts from the labeling pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO

from repro.analysis.labeling import (
    KIND_DOWNSTREAM,
    KIND_REORDERING,
    KIND_UPSTREAM,
    label_connection,
)
from repro.analysis.profile import Trace
from repro.wire.pcap import PcapRecord


@dataclass
class ConnectionSummary:
    """One row of the tcptrace-lite report."""

    key: tuple
    sender_ip: str
    start_us: int
    duration_us: int
    data_packets: int
    data_bytes: int
    ack_packets: int
    mss: int
    rtt_us: int
    max_advertised_window: int
    retransmissions: int
    upstream_losses: int
    downstream_losses: int
    reordered: int
    saw_syn: bool
    saw_fin: bool
    saw_rst: bool

    def format_row(self) -> str:
        src, sport, dst, dport = self.key
        return (
            f"{src}:{sport} <-> {dst}:{dport}  "
            f"dur={self.duration_us / 1e6:.3f}s pkts={self.data_packets} "
            f"bytes={self.data_bytes} mss={self.mss} "
            f"rtt={self.rtt_us / 1000:.1f}ms wnd={self.max_advertised_window} "
            f"retx={self.retransmissions} "
            f"(up={self.upstream_losses} down={self.downstream_losses} "
            f"ooo={self.reordered})"
        )


def summarize(
    source: BinaryIO | str | Path | list[PcapRecord],
) -> list[ConnectionSummary]:
    """Summarize every connection in a capture."""
    trace = Trace.from_pcap(source)
    rows = []
    for connection in trace:
        profile = connection.profile
        if profile is None:
            continue
        labeling = label_connection(connection)
        rows.append(
            ConnectionSummary(
                key=connection.key,
                sender_ip=connection.sender_ip or "?",
                start_us=profile.start_time_us,
                duration_us=profile.duration_us,
                data_packets=profile.total_data_packets,
                data_bytes=profile.total_data_bytes,
                ack_packets=profile.total_ack_packets,
                mss=profile.mss,
                rtt_us=profile.rtt_us,
                max_advertised_window=profile.max_advertised_window,
                retransmissions=len(labeling.retransmissions()),
                upstream_losses=labeling.count(KIND_UPSTREAM),
                downstream_losses=labeling.count(KIND_DOWNSTREAM),
                reordered=labeling.count(KIND_REORDERING),
                saw_syn=profile.saw_syn,
                saw_fin=profile.saw_fin,
                saw_rst=profile.saw_rst,
            )
        )
    rows.sort(key=lambda r: r.start_us)
    return rows


def format_report(rows: list[ConnectionSummary]) -> str:
    """The human-readable multi-line report."""
    lines = [f"{len(rows)} TCP connection(s)"]
    lines.extend(row.format_row() for row in rows)
    return "\n".join(lines)
