"""BGPlot: render time-sequence graphs and event-series square waves.

The repo's stand-in for the paper's SCNMPlot-derived visualizer
(Table VI, Figure 11): the TCP sequence progression and the binary
square curves of selected event series, as plain-text panels and as CSV
series any plotting tool can consume.
"""

from __future__ import annotations

import io

from repro.analysis.series import ConnectionSeries
from repro.analysis.tdat import ConnectionAnalysis
from repro.core.events import EventSeries

DEFAULT_SERIES = [
    "Transmission",
    "SendAppLimited",
    "UpstreamLoss",
    "DownstreamLoss",
    "AdvBndOut",
    "CwdBndOut",
]


def render_square_wave(
    series: EventSeries,
    start_us: int,
    end_us: int,
    width: int = 100,
) -> str:
    """One text line: '█' where the series covers, '·' elsewhere."""
    if end_us <= start_us:
        return ""
    cells = []
    step = (end_us - start_us) / width
    for i in range(width):
        cell_start = round(start_us + i * step)
        cell_end = round(start_us + (i + 1) * step)
        covered = series.ranges.overlapping(cell_start, max(cell_end, cell_start + 1))
        cells.append("█" if covered else "·")
    return "".join(cells)


def render_panel(
    series_bundle: ConnectionSeries,
    names: list[str] | None = None,
    width: int = 100,
) -> str:
    """A multi-line panel: one labelled square wave per series."""
    names = names or DEFAULT_SERIES
    start = series_bundle.window.start
    end = series_bundle.window.end
    label_width = max(len(n) for n in names) + 1
    lines = [
        f"window: [{start / 1e6:.3f}s, {end / 1e6:.3f}s]  "
        f"({(end - start) / 1e6:.3f}s)"
    ]
    for name in names:
        series = series_bundle.catalog.get_or_empty(name).clip(start, end)
        wave = render_square_wave(series, start, end, width)
        ratio = series.delay_ratio(end - start)
        lines.append(f"{name:<{label_width}}|{wave}| {ratio:6.1%}")
    return "\n".join(lines)


def render_analysis(analysis: ConnectionAnalysis, width: int = 100) -> str:
    """The full text report for one analyzed connection."""
    conn = analysis.connection
    profile = conn.profile
    src, sport, dst, dport = conn.key
    out = io.StringIO()
    out.write(f"connection {src}:{sport} <-> {dst}:{dport}\n")
    out.write(
        f"  sender={conn.sender_ip} mss={profile.mss} "
        f"rtt={profile.rtt_us / 1000:.1f}ms "
        f"(d1={profile.d1_us / 1000:.1f}ms d2={profile.d2_us / 1000:.1f}ms) "
        f"max_wnd={profile.max_advertised_window}\n"
    )
    out.write(
        f"  data: {profile.total_data_packets} pkts / "
        f"{profile.total_data_bytes} bytes, "
        f"retx={len(analysis.labeling.retransmissions())}\n"
    )
    rs, rr, rn = analysis.factors.group_vector
    out.write(f"  delay ratios: sender={rs:.2f} receiver={rr:.2f} network={rn:.2f}\n")
    major = analysis.factors.major_factors()
    out.write(f"  major factors: {major if major else 'none (unknown)'}\n")
    if analysis.timer_gaps.detected:
        out.write(
            f"  ! timer gaps: ~{analysis.timer_gaps.timer_us / 1000:.0f}ms "
            f"({analysis.timer_gaps.plateau_count} gaps, "
            f"{analysis.timer_gaps.induced_delay_us / 1e6:.1f}s induced)\n"
        )
    if analysis.consecutive_losses.detected:
        out.write(
            f"  ! consecutive losses: {analysis.consecutive_losses.episodes} "
            f"episode(s), worst run {analysis.consecutive_losses.worst_run}, "
            f"{analysis.consecutive_losses.induced_delay_us / 1e6:.1f}s induced\n"
        )
    if analysis.zero_ack_bug.detected:
        out.write(
            f"  ! zero-window probe bug: "
            f"{analysis.zero_ack_bug.occurrences} occurrence(s)\n"
        )
    out.write(render_panel(analysis.series, width=width))
    return out.getvalue()


def render_time_sequence(
    analysis: ConnectionAnalysis,
    width: int = 100,
    height: int = 24,
    window: tuple[int, int] | None = None,
) -> str:
    """A tcptrace-style ASCII time-sequence graph.

    Data packets plot as ``.`` at (time, relative sequence), labeled
    retransmissions as ``R``, and the cumulative-ACK frontier as ``a``
    — the view the paper's Figures 5-8 are drawn in.
    """
    conn = analysis.connection
    data = conn.data_packets()
    if not data:
        return "(no data packets)"
    if window is None:
        window = (data[0].timestamp_us, data[-1].timestamp_us + 1)
    start, end = window
    span = max(end - start, 1)
    max_seq = max(conn.relative_seq(p) + p.payload_len for p in data)
    max_seq = max(max_seq, 1)
    grid = [[" "] * width for _ in range(height)]

    def plot(t_us: int, seq: int, char: str, only_blank: bool = False) -> None:
        if not start <= t_us < end:
            return
        x = min(int((t_us - start) / span * width), width - 1)
        y = height - 1 - min(int(seq / max_seq * height), height - 1)
        if grid[y][x] == "R":
            return  # retransmission marks win
        if only_blank and grid[y][x] != " ":
            return
        grid[y][x] = char

    retx_times = {
        l.packet.timestamp_us for l in analysis.labeling.retransmissions()
    }
    for packet in data:
        char = "R" if packet.timestamp_us in retx_times else "."
        plot(packet.timestamp_us, conn.relative_seq(packet), char)
    # ACKs trail just below the data line; draw them into free cells so
    # the data points stay visible at coarse resolutions.
    for packet in conn.ack_packets():
        plot(packet.timestamp_us, conn.relative_ack(packet), "a",
             only_blank=True)

    lines = [
        f"time-sequence [{start / 1e6:.3f}s .. {end / 1e6:.3f}s], "
        f"seq 0..{max_seq} ('.'=data, 'R'=retransmission, 'a'=ACK)"
    ]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    return "\n".join(lines)


def series_to_csv(
    series_bundle: ConnectionSeries, names: list[str] | None = None
) -> str:
    """CSV rows ``series,start_us,end_us,duration_us`` for plotting."""
    names = names or DEFAULT_SERIES
    lines = ["series,start_us,end_us,duration_us"]
    for name in names:
        for rng in series_bundle.catalog.get_or_empty(name).ranges:
            lines.append(f"{name},{rng.start},{rng.end},{rng.duration}")
    return "\n".join(lines)


def sequence_points_csv(analysis: ConnectionAnalysis) -> str:
    """CSV of the time-sequence graph (data and ACK points)."""
    conn = analysis.connection
    lines = ["kind,time_us,relative_seq"]
    for packet in conn.data_packets():
        lines.append(f"data,{packet.timestamp_us},{conn.relative_seq(packet)}")
    for packet in conn.ack_packets():
        lines.append(f"ack,{packet.timestamp_us},{conn.relative_ack(packet)}")
    return "\n".join(lines)
