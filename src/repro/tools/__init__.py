"""Analysis tool suite: pcap2bgp, tcptrace-lite, bgplot, reports, CLIs."""

from repro.tools.anonymize import PrefixPreservingAnonymizer, anonymize_pcap
from repro.tools.bgplot import (
    render_analysis,
    render_panel,
    render_time_sequence,
    series_to_csv,
)
from repro.tools.correlate import (
    CorrelatedMessage,
    correlate_messages,
    delayed_updates,
)
from repro.tools.pcap2bgp import (
    StreamingPcap2Bgp,
    pcap_to_mrt,
    reconstruct_stream,
)
from repro.tools.report import (
    dataset_summary,
    detector_findings,
    duration_statistics,
    factor_distribution,
    render_markdown,
)
from repro.tools.tcptrace_lite import ConnectionSummary, format_report, summarize


def __getattr__(name: str):
    # Deprecated re-export: the supported entry point is the
    # repro.api facade (engine code imports repro.tools.pcap2bgp).
    if name == "pcap_to_bgp":
        from repro.core.deprecation import warn_deprecated
        from repro.tools.pcap2bgp import pcap_to_bgp

        warn_deprecated(
            "importing pcap_to_bgp from repro.tools is deprecated; "
            "use repro.api.Pipeline().extract_bgp(...) or import it from "
            "repro.tools.pcap2bgp"
        )
        return pcap_to_bgp
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ConnectionSummary",
    "CorrelatedMessage",
    "PrefixPreservingAnonymizer",
    "StreamingPcap2Bgp",
    "anonymize_pcap",
    "correlate_messages",
    "delayed_updates",
    "render_time_sequence",
    "dataset_summary",
    "detector_findings",
    "duration_statistics",
    "factor_distribution",
    "format_report",
    "pcap_to_bgp",
    "pcap_to_mrt",
    "reconstruct_stream",
    "render_analysis",
    "render_markdown",
    "render_panel",
    "series_to_csv",
    "summarize",
]
