"""Analysis tool suite: pcap2bgp, tcptrace-lite, bgplot, reports, CLIs."""

from repro.tools.anonymize import PrefixPreservingAnonymizer, anonymize_pcap
from repro.tools.bgplot import (
    render_analysis,
    render_panel,
    render_time_sequence,
    series_to_csv,
)
from repro.tools.correlate import (
    CorrelatedMessage,
    correlate_messages,
    delayed_updates,
)
from repro.tools.pcap2bgp import (
    StreamingPcap2Bgp,
    pcap_to_bgp,
    pcap_to_mrt,
    reconstruct_stream,
)
from repro.tools.report import (
    dataset_summary,
    detector_findings,
    duration_statistics,
    factor_distribution,
    render_markdown,
)
from repro.tools.tcptrace_lite import ConnectionSummary, format_report, summarize

__all__ = [
    "ConnectionSummary",
    "CorrelatedMessage",
    "PrefixPreservingAnonymizer",
    "StreamingPcap2Bgp",
    "anonymize_pcap",
    "correlate_messages",
    "delayed_updates",
    "render_time_sequence",
    "dataset_summary",
    "detector_findings",
    "duration_statistics",
    "factor_distribution",
    "format_report",
    "pcap_to_bgp",
    "pcap_to_mrt",
    "reconstruct_stream",
    "render_analysis",
    "render_markdown",
    "render_panel",
    "series_to_csv",
    "summarize",
]
