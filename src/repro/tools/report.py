"""Campaign reports: CampaignResult -> the paper-style summary tables.

Takes the structured output of :func:`repro.workloads.run_campaign`
and renders the survey an operator would publish: the dataset summary
(Table I), duration statistics (Figure 3), the major-delay-factor
distribution with per-factor breakdown (Table IV) and the detector
findings with induced delays (Table V) — as plain text or Markdown.
"""

from __future__ import annotations

import statistics
from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.analysis.factors import FACTORS

if TYPE_CHECKING:  # avoid a circular import (campaign uses repro.tools)
    from repro.workloads.campaign import CampaignResult

_GROUP_LABELS = {
    "sender": "Sender-side limited",
    "receiver": "Receiver-side limited",
    "network": "Network limited",
}


def dataset_summary(results: Iterable["CampaignResult"]) -> list[dict]:
    """Table I rows, one per campaign."""
    rows = []
    for result in results:
        rows.append(
            {
                "trace": result.name,
                "collector": result.collector_kind,
                "routers": result.routers,
                "packets": result.total_packets,
                "bytes": result.total_bytes,
                "transfers": len(result.records),
            }
        )
    return rows


def duration_statistics(result: "CampaignResult") -> dict:
    """Figure 3-style summary for one campaign."""
    durations = result.durations_s()
    if not durations:
        return {"count": 0}
    return {
        "count": len(durations),
        "min_s": durations[0],
        "median_s": statistics.median(durations),
        "p80_s": durations[min(int(0.8 * len(durations)), len(durations) - 1)],
        "max_s": durations[-1],
    }


def factor_distribution(result: "CampaignResult", threshold: float = 0.3) -> dict:
    """Table IV for one campaign: groups, breakdown and unknowns."""
    groups = {g: 0 for g in _GROUP_LABELS}
    breakdown = {factor: 0 for factor in FACTORS}
    unknown = 0
    for record in result.records:
        majors = record.factors.major_groups(threshold)
        if not majors:
            unknown += 1
        for group in majors:
            groups[group] += 1
            dominant = record.factors.dominant_factor(group)
            if dominant is not None:
                breakdown[dominant] += 1
    return {"groups": groups, "breakdown": breakdown, "unknown": unknown}


def detector_findings(result: "CampaignResult") -> dict:
    """Table V rows for one campaign (peer-group runs separately)."""

    def summarize(records, delay_us):
        return {
            "count": len(records),
            "avg_delay_s": (
                sum(delay_us(r) for r in records) / len(records) / 1e6
                if records
                else 0.0
            ),
        }

    timers = [r for r in result.records if r.timer.detected]
    losses = [r for r in result.records if r.consecutive.detected]
    bugs = [r for r in result.records if r.zero_bug.detected]
    return {
        "timer_gaps": summarize(timers, lambda r: r.timer.induced_delay_us),
        "consecutive_losses": summarize(
            losses, lambda r: r.consecutive.induced_delay_us
        ),
        "zero_ack_bug": summarize(
            bugs, lambda r: r.zero_bug.induced_delay_us
        ),
    }


def render_markdown(results: Iterable["CampaignResult"]) -> str:
    """The full multi-campaign report as Markdown."""
    results = list(results)
    lines = ["# BGP table-transfer delay survey", ""]

    lines.append("## Datasets")
    lines.append("")
    lines.append("| trace | collector | routers | packets | bytes | transfers |")
    lines.append("|---|---|---:|---:|---:|---:|")
    for row in dataset_summary(results):
        lines.append(
            f"| {row['trace']} | {row['collector']} | {row['routers']} "
            f"| {row['packets']} | {row['bytes']} | {row['transfers']} |"
        )
    lines.append("")

    lines.append("## Transfer durations (seconds)")
    lines.append("")
    lines.append("| trace | n | min | median | p80 | max |")
    lines.append("|---|---:|---:|---:|---:|---:|")
    for result in results:
        stats = duration_statistics(result)
        if stats["count"]:
            lines.append(
                f"| {result.name} | {stats['count']} | {stats['min_s']:.2f} "
                f"| {stats['median_s']:.2f} | {stats['p80_s']:.2f} "
                f"| {stats['max_s']:.2f} |"
            )
    lines.append("")

    lines.append("## Major delay factors (threshold 0.3)")
    for result in results:
        dist = factor_distribution(result)
        lines.append("")
        lines.append(f"### {result.name}")
        lines.append("")
        for group, label in _GROUP_LABELS.items():
            lines.append(f"- {label}: {dist['groups'][group]}")
        lines.append(f"- Unknown: {dist['unknown']}")
        lines.append("")
        lines.append("| factor | group | transfers |")
        lines.append("|---|---|---:|")
        for factor, (series, group) in FACTORS.items():
            lines.append(
                f"| {factor} | {group} | {dist['breakdown'][factor]} |"
            )
    lines.append("")

    lines.append("## Detected transport problems")
    lines.append("")
    lines.append("| trace | problem | count | avg induced delay (s) |")
    lines.append("|---|---|---:|---:|")
    for result in results:
        findings = detector_findings(result)
        for problem, row in findings.items():
            lines.append(
                f"| {result.name} | {problem.replace('_', ' ')} "
                f"| {row['count']} | {row['avg_delay_s']:.2f} |"
            )
    lines.append("")
    return "\n".join(lines)
