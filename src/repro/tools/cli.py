"""Command-line entry points for the analysis tool suite.

Installed as console scripts (see ``pyproject.toml``):

* ``tdat <trace.pcap>`` — full delay analysis of every connection;
* ``pcap2bgp <trace.pcap> <out.mrt>`` — reconstruct BGP messages;
* ``tcptrace-lite <trace.pcap>`` — connection summaries;
* ``bgplot <trace.pcap>`` — square-wave panels / CSV export.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.series import (
    SNIFFER_AT_RECEIVER,
    SNIFFER_AT_SENDER,
    SNIFFER_IN_MIDDLE,
)
from repro.analysis.tdat import analyze_pcap
from repro.tools import bgplot, pcap2bgp, tcptrace_lite

_LOCATIONS = [SNIFFER_AT_RECEIVER, SNIFFER_AT_SENDER, SNIFFER_IN_MIDDLE]


def tdat_main(argv: list[str] | None = None) -> int:
    """Analyze a pcap trace and print the delay report."""
    parser = argparse.ArgumentParser(
        prog="tdat", description="TCP Delay Analysis Tool"
    )
    parser.add_argument("pcap", help="input pcap trace")
    parser.add_argument(
        "--sniffer-location",
        choices=_LOCATIONS,
        default=SNIFFER_AT_RECEIVER,
        help="where the capture was taken (default: receiver)",
    )
    parser.add_argument(
        "--width", type=int, default=100, help="square-wave panel width"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of text panels",
    )
    args = parser.parse_args(argv)
    report = analyze_pcap(args.pcap, sniffer_location=args.sniffer_location)
    if not len(report):
        print("no analyzable TCP connections found", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps([_analysis_to_dict(a) for a in report], indent=2))
        return 0
    for analysis in report:
        print(bgplot.render_analysis(analysis, width=args.width))
        print()
    return 0


def _analysis_to_dict(analysis) -> dict:
    """Flatten one connection's analysis for JSON output."""
    profile = analysis.connection.profile
    src, sport, dst, dport = analysis.connection.key
    rs, rr, rn = analysis.factors.group_vector
    return {
        "connection": f"{src}:{sport}<->{dst}:{dport}",
        "sender": analysis.connection.sender_ip,
        "profile": {
            "mss": profile.mss,
            "rtt_us": profile.rtt_us,
            "d1_us": profile.d1_us,
            "d2_us": profile.d2_us,
            "max_advertised_window": profile.max_advertised_window,
            "data_packets": profile.total_data_packets,
            "data_bytes": profile.total_data_bytes,
            "duration_us": profile.duration_us,
        },
        "retransmissions": len(analysis.labeling.retransmissions()),
        "factors": {
            "ratios": analysis.factors.ratios,
            "groups": {"sender": rs, "receiver": rr, "network": rn},
            "major": analysis.factors.major_factors(),
        },
        "detectors": {
            "timer_gaps": {
                "detected": analysis.timer_gaps.detected,
                "timer_us": analysis.timer_gaps.timer_us,
                "induced_delay_us": analysis.timer_gaps.induced_delay_us,
            },
            "consecutive_losses": {
                "detected": analysis.consecutive_losses.detected,
                "episodes": analysis.consecutive_losses.episodes,
                "worst_run": analysis.consecutive_losses.worst_run,
                "induced_delay_us": analysis.consecutive_losses.induced_delay_us,
            },
            "zero_ack_bug": {
                "detected": analysis.zero_ack_bug.detected,
                "occurrences": analysis.zero_ack_bug.occurrences,
            },
            "capture_voids": {
                "detected": analysis.capture_voids.detected,
                "phantom_bytes": analysis.capture_voids.phantom_bytes,
                "excluded_us": analysis.capture_voids.excluded_us,
            },
        },
    }


def pcap2bgp_main(argv: list[str] | None = None) -> int:
    """Reconstruct BGP messages from a pcap trace into an MRT file."""
    parser = argparse.ArgumentParser(
        prog="pcap2bgp",
        description="Reconstruct BGP messages from a TCP packet trace",
    )
    parser.add_argument("pcap", help="input pcap trace")
    parser.add_argument("mrt", help="output MRT file")
    parser.add_argument("--local-as", type=int, default=0)
    parser.add_argument("--peer-as", type=int, default=0)
    args = parser.parse_args(argv)
    count = pcap2bgp.pcap_to_mrt(
        args.pcap, args.mrt, local_as=args.local_as, peer_as=args.peer_as
    )
    print(f"wrote {count} MRT records to {args.mrt}")
    return 0


def tcptrace_main(argv: list[str] | None = None) -> int:
    """Print per-connection summaries of a pcap trace."""
    parser = argparse.ArgumentParser(
        prog="tcptrace-lite", description="TCP connection summaries"
    )
    parser.add_argument("pcap", help="input pcap trace")
    args = parser.parse_args(argv)
    rows = tcptrace_lite.summarize(args.pcap)
    print(tcptrace_lite.format_report(rows))
    return 0


def anonymize_main(argv: list[str] | None = None) -> int:
    """Prefix-preservingly anonymize a pcap for sharing."""
    from repro.tools.anonymize import anonymize_pcap

    parser = argparse.ArgumentParser(
        prog="pcap-anonymize",
        description="Prefix-preserving pcap anonymization for delay analysis",
    )
    parser.add_argument("pcap", help="input pcap trace")
    parser.add_argument("out", help="anonymized output pcap")
    parser.add_argument(
        "--key", required=True,
        help="anonymization key (same key -> same mapping)",
    )
    parser.add_argument(
        "--strip-payload", action="store_true",
        help="zero TCP payloads (lengths and timing preserved)",
    )
    args = parser.parse_args(argv)
    count = anonymize_pcap(
        args.pcap, args.out, args.key.encode(), strip_payload=args.strip_payload
    )
    print(f"anonymized {count} records -> {args.out}")
    return 0


def bgplot_main(argv: list[str] | None = None) -> int:
    """Render event-series panels (or CSV) for a pcap trace."""
    parser = argparse.ArgumentParser(
        prog="bgplot", description="Event series visualizer"
    )
    parser.add_argument("pcap", help="input pcap trace")
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of text panels"
    )
    parser.add_argument(
        "--seq", action="store_true",
        help="render a tcptrace-style time-sequence graph too",
    )
    parser.add_argument("--width", type=int, default=100)
    args = parser.parse_args(argv)
    report = analyze_pcap(args.pcap)
    for analysis in report:
        if args.csv:
            print(bgplot.series_to_csv(analysis.series))
        else:
            print(bgplot.render_panel(analysis.series, width=args.width))
            if args.seq:
                print()
                print(bgplot.render_time_sequence(analysis, width=args.width))
        print()
    return 0
