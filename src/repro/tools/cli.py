"""Legacy console-script entry points, now deprecated shims over ``tdat``.

The tool suite consolidated into one ``tdat`` command with subcommands
(:mod:`repro.tools.tdat_cli`).  The historical script names —
``pcap2bgp``, ``tcptrace-lite``, ``bgplot``, ``pcap-anonymize`` and the
subcommand-less ``tdat <trace.pcap>`` — keep working through these
wrappers, which raise a :class:`DeprecationWarning` at call time
(importing this module stays silent), then prepend the matching
subcommand and delegate.  Error discipline and exit codes are
unchanged: one-line errors on stderr, 0 success, 1 nothing to analyze,
2 error, 3 success with recorded ingest issues.  Removal schedule:
see the deprecation table in ``docs/architecture.md``.
"""

from __future__ import annotations

import sys

from repro.core.deprecation import warn_deprecated
from repro.tools.tdat_cli import (
    EXIT_ERROR,
    EXIT_ISSUES,
    EXIT_NOTHING,
    EXIT_OK,
    _analysis_to_dict,
    main,
)

__all__ = [
    "EXIT_ERROR",
    "EXIT_ISSUES",
    "EXIT_NOTHING",
    "EXIT_OK",
    "anonymize_main",
    "bgplot_main",
    "main",
    "pcap2bgp_main",
    "tcptrace_main",
    "tdat_main",
]


def _delegate(legacy: str, subcommand: str, argv: list[str] | None) -> int:
    warn_deprecated(
        f"the {legacy!r} console script is deprecated; "
        f"run `tdat {subcommand}` instead"
    )
    if argv is None:
        argv = sys.argv[1:]
    return main([subcommand, *argv])


def tdat_main(argv: list[str] | None = None) -> int:
    """Analyze a pcap trace and print the delay report."""
    warn_deprecated(
        "repro.tools.cli.tdat_main is deprecated; "
        "use repro.tools.tdat_cli.main (the `tdat` console script)"
    )
    # No subcommand prefix: ``main`` maps a bare trace to ``analyze``
    # itself, and flags like ``--help`` should hit the top-level parser.
    return main(argv)


def pcap2bgp_main(argv: list[str] | None = None) -> int:
    """Reconstruct BGP messages from a pcap trace into an MRT file."""
    return _delegate("pcap2bgp", "pcap2bgp", argv)


def tcptrace_main(argv: list[str] | None = None) -> int:
    """Print per-connection summaries of a pcap trace."""
    return _delegate("tcptrace-lite", "tcptrace", argv)


def anonymize_main(argv: list[str] | None = None) -> int:
    """Prefix-preservingly anonymize a pcap for sharing."""
    return _delegate("pcap-anonymize", "anonymize", argv)


def bgplot_main(argv: list[str] | None = None) -> int:
    """Render event-series panels (or CSV) for a pcap trace."""
    return _delegate("bgplot", "bgplot", argv)
