"""Command-line entry points for the analysis tool suite.

Installed as console scripts (see ``pyproject.toml``):

* ``tdat <trace.pcap>`` — full delay analysis of every connection;
* ``pcap2bgp <trace.pcap> <out.mrt>`` — reconstruct BGP messages;
* ``tcptrace-lite <trace.pcap>`` — connection summaries;
* ``bgplot <trace.pcap>`` — square-wave panels / CSV export.

All tools degrade gracefully on operational input: a missing file or a
trace too damaged to read produces a one-line error on stderr and exit
code 2, never a traceback.  ``tdat`` additionally reports everything
its tolerant ingest had to drop (the :class:`TraceHealth` ledger) and
exits with code 3 when the capture was readable but damaged; pass
``--strict`` to restore fail-fast behaviour.

Exit codes: 0 success, 1 nothing to analyze, 2 error, 3 success with
recorded ingest issues (``tdat`` only).
"""

from __future__ import annotations

import argparse
import functools
import json
import sys

from repro.analysis.series import (
    SNIFFER_AT_RECEIVER,
    SNIFFER_AT_SENDER,
    SNIFFER_IN_MIDDLE,
)
from repro.analysis.tdat import analyze_pcap
from repro.core.health import IngestError
from repro.tools import bgplot, pcap2bgp, tcptrace_lite
from repro.wire.pcap import PcapError

_LOCATIONS = [SNIFFER_AT_RECEIVER, SNIFFER_AT_SENDER, SNIFFER_IN_MIDDLE]

EXIT_OK = 0
EXIT_NOTHING = 1
EXIT_ERROR = 2
EXIT_ISSUES = 3


def _guarded(func):
    """Turn ingest failures into one-line errors + exit code 2.

    Every entry point runs under this guard so operational mishaps —
    a missing trace, a non-pcap file, a capture damaged beyond what
    the tolerant reader can salvage, a decode failure — end in a
    diagnostic on stderr and a nonzero status, never a traceback.
    """

    @functools.wraps(func)
    def wrapper(argv: list[str] | None = None) -> int:
        prog = func.__name__.removesuffix("_main").replace("_", "-")
        try:
            return func(argv)
        except FileNotFoundError as exc:
            name = getattr(exc, "filename", None) or exc
            print(f"{prog}: error: no such file: {name}", file=sys.stderr)
            return EXIT_ERROR
        except IsADirectoryError as exc:
            print(f"{prog}: error: is a directory: {exc.filename}",
                  file=sys.stderr)
            return EXIT_ERROR
        except (PcapError, IngestError, ValueError, OSError) as exc:
            print(f"{prog}: error: {exc}", file=sys.stderr)
            return EXIT_ERROR

    return wrapper


@_guarded
def tdat_main(argv: list[str] | None = None) -> int:
    """Analyze a pcap trace and print the delay report."""
    parser = argparse.ArgumentParser(
        prog="tdat", description="TCP Delay Analysis Tool"
    )
    parser.add_argument("pcap", help="input pcap trace")
    parser.add_argument(
        "--sniffer-location",
        choices=_LOCATIONS,
        default=SNIFFER_AT_RECEIVER,
        help="where the capture was taken (default: receiver)",
    )
    parser.add_argument(
        "--width", type=int, default=100, help="square-wave panel width"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of text panels",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail fast on damaged input instead of degrading gracefully",
    )
    args = parser.parse_args(argv)
    report = analyze_pcap(
        args.pcap, sniffer_location=args.sniffer_location, strict=args.strict
    )
    issues = not report.health.ok
    if not len(report):
        if issues:
            print(report.health.summary(), file=sys.stderr)
        print("no analyzable TCP connections found", file=sys.stderr)
        return EXIT_NOTHING
    if args.json:
        payload = {
            "connections": [_analysis_to_dict(a) for a in report],
            "health": report.health.to_dict(),
        }
        print(json.dumps(payload, indent=2))
    else:
        for analysis in report:
            print(bgplot.render_analysis(analysis, width=args.width))
            print()
        if issues:
            print(report.health.summary(), file=sys.stderr)
    return EXIT_ISSUES if issues else EXIT_OK


def _analysis_to_dict(analysis) -> dict:
    """Flatten one connection's analysis for JSON output."""
    profile = analysis.connection.profile
    src, sport, dst, dport = analysis.connection.key
    rs, rr, rn = analysis.factors.group_vector
    return {
        "connection": f"{src}:{sport}<->{dst}:{dport}",
        "sender": analysis.connection.sender_ip,
        "profile": {
            "mss": profile.mss,
            "rtt_us": profile.rtt_us,
            "d1_us": profile.d1_us,
            "d2_us": profile.d2_us,
            "max_advertised_window": profile.max_advertised_window,
            "data_packets": profile.total_data_packets,
            "data_bytes": profile.total_data_bytes,
            "duration_us": profile.duration_us,
        },
        "retransmissions": len(analysis.labeling.retransmissions()),
        "factors": {
            "ratios": analysis.factors.ratios,
            "groups": {"sender": rs, "receiver": rr, "network": rn},
            "major": analysis.factors.major_factors(),
        },
        "detectors": {
            "timer_gaps": {
                "detected": analysis.timer_gaps.detected,
                "timer_us": analysis.timer_gaps.timer_us,
                "induced_delay_us": analysis.timer_gaps.induced_delay_us,
            },
            "consecutive_losses": {
                "detected": analysis.consecutive_losses.detected,
                "episodes": analysis.consecutive_losses.episodes,
                "worst_run": analysis.consecutive_losses.worst_run,
                "induced_delay_us": analysis.consecutive_losses.induced_delay_us,
            },
            "zero_ack_bug": {
                "detected": analysis.zero_ack_bug.detected,
                "occurrences": analysis.zero_ack_bug.occurrences,
            },
            "capture_voids": {
                "detected": analysis.capture_voids.detected,
                "phantom_bytes": analysis.capture_voids.phantom_bytes,
                "excluded_us": analysis.capture_voids.excluded_us,
            },
        },
    }


@_guarded
def pcap2bgp_main(argv: list[str] | None = None) -> int:
    """Reconstruct BGP messages from a pcap trace into an MRT file."""
    parser = argparse.ArgumentParser(
        prog="pcap2bgp",
        description="Reconstruct BGP messages from a TCP packet trace",
    )
    parser.add_argument("pcap", help="input pcap trace")
    parser.add_argument("mrt", help="output MRT file")
    parser.add_argument("--local-as", type=int, default=0)
    parser.add_argument("--peer-as", type=int, default=0)
    args = parser.parse_args(argv)
    count = pcap2bgp.pcap_to_mrt(
        args.pcap, args.mrt, local_as=args.local_as, peer_as=args.peer_as
    )
    print(f"wrote {count} MRT records to {args.mrt}")
    return 0


@_guarded
def tcptrace_main(argv: list[str] | None = None) -> int:
    """Print per-connection summaries of a pcap trace."""
    parser = argparse.ArgumentParser(
        prog="tcptrace-lite", description="TCP connection summaries"
    )
    parser.add_argument("pcap", help="input pcap trace")
    args = parser.parse_args(argv)
    rows = tcptrace_lite.summarize(args.pcap)
    print(tcptrace_lite.format_report(rows))
    return 0


@_guarded
def anonymize_main(argv: list[str] | None = None) -> int:
    """Prefix-preservingly anonymize a pcap for sharing."""
    from repro.tools.anonymize import anonymize_pcap

    parser = argparse.ArgumentParser(
        prog="pcap-anonymize",
        description="Prefix-preserving pcap anonymization for delay analysis",
    )
    parser.add_argument("pcap", help="input pcap trace")
    parser.add_argument("out", help="anonymized output pcap")
    parser.add_argument(
        "--key", required=True,
        help="anonymization key (same key -> same mapping)",
    )
    parser.add_argument(
        "--strip-payload", action="store_true",
        help="zero TCP payloads (lengths and timing preserved)",
    )
    args = parser.parse_args(argv)
    count = anonymize_pcap(
        args.pcap, args.out, args.key.encode(), strip_payload=args.strip_payload
    )
    print(f"anonymized {count} records -> {args.out}")
    return 0


@_guarded
def bgplot_main(argv: list[str] | None = None) -> int:
    """Render event-series panels (or CSV) for a pcap trace."""
    parser = argparse.ArgumentParser(
        prog="bgplot", description="Event series visualizer"
    )
    parser.add_argument("pcap", help="input pcap trace")
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of text panels"
    )
    parser.add_argument(
        "--seq", action="store_true",
        help="render a tcptrace-style time-sequence graph too",
    )
    parser.add_argument("--width", type=int, default=100)
    args = parser.parse_args(argv)
    report = analyze_pcap(args.pcap)
    for analysis in report:
        if args.csv:
            print(bgplot.series_to_csv(analysis.series))
        else:
            print(bgplot.render_panel(analysis.series, width=args.width))
            if args.seq:
                print()
                print(bgplot.render_time_sequence(analysis, width=args.width))
        print()
    return 0
