"""The benchmark harness behind ``tdat bench``.

Four modes, all appending to one schema-versioned JSON history
(``--out``, default ``BENCH_campaign.json``) so the file accumulates a
comparable performance record across commits:

* ``campaign`` — the parallel campaign engine vs. the serial baseline,
  each in a fresh subprocess (clean wall time and peak RSS), with a
  byte-identity check between the two reports and an optional
  ``--assert-speedup`` gate;
* ``ingest`` — per-stage packets/sec over a capture: pcap record
  reading, frame decoding, and the full ``analyze_pcap`` pipeline,
  each measured twice — fast paths on (mmap scanning, fused frame
  decode, auto series backend) and forced off — with a byte-identity
  check between the two analysis reports and a ``--baseline`` /
  ``--max-regression`` gate over the history;
* ``obs-overhead`` — the observability subsystem's cost: an
  obs-enabled serial campaign vs. disabled samples plus the no-op
  dispatch micro-benchmark;
* ``checkpoint-overhead`` — a serial campaign with the fsync'd
  episode journal vs. the plain run.

Exit codes follow the ``tdat`` contract
(:data:`repro.tools.tdat_cli.EXIT_CODE_TABLE`): 0 on success, 2 when
a run failed outright or a fast path diverged from its reference, and
5 when a performance gate (speedup, overhead ratio, or packets/sec
regression) failed.

The harness never reads the clock for metadata: the caller supplies
``--timestamp`` (CI passes ``$(date -u -Iseconds)``), so entries are
reproducible modulo the measured wall times themselves.
"""

from __future__ import annotations

import argparse
import hashlib
import io
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parents[2]

#: bump when the BENCH_campaign.json entry layout changes incompatibly.
SCHEMA = 1

# The slice of tdat's EXIT_CODE_TABLE this harness uses (kept numeric
# here to avoid importing the CLI module from the engine side).
_EXIT_OK = 0
_EXIT_ERROR = 2
_EXIT_REGRESSION = 5

MODES = ("campaign", "ingest", "obs-overhead", "checkpoint-overhead")


def _git_sha() -> str:
    """The repo's HEAD commit, or a CI-provided SHA, or "unknown"."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
        if proc.returncode == 0 and proc.stdout.strip():
            return proc.stdout.strip()
    except OSError:
        pass
    return os.environ.get("GITHUB_SHA", "unknown")


def _append_history(out: Path, entry: dict) -> None:
    """Append ``entry`` to the schema-versioned run history at ``out``."""
    history = {"schema": SCHEMA, "runs": []}
    if out.exists():
        try:
            existing = json.loads(out.read_text())
            if (
                isinstance(existing, dict)
                and existing.get("schema") == SCHEMA
                and isinstance(existing.get("runs"), list)
            ):
                history = existing
        except (OSError, json.JSONDecodeError):
            pass  # non-conforming file: start a fresh history
    history["runs"].append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")


def _latest_baseline(path: Path, benchmark: str) -> dict | None:
    """The most recent ``benchmark`` entry in a history file, if any."""
    try:
        history = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(history, dict) or history.get("schema") != SCHEMA:
        return None
    runs = [
        run for run in history.get("runs", [])
        if isinstance(run, dict) and run.get("benchmark") == benchmark
    ]
    return runs[-1] if runs else None


def _status(args, message: str) -> None:
    """Progress chatter: stderr, so ``--json`` stdout stays parseable."""
    if not getattr(args, "quiet", False):
        print(message, file=sys.stderr)


def _emit(args, summary: dict, lines: list[str]) -> None:
    """The result: JSON or human-readable, on stdout."""
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        for line in lines:
            print(line)


# ---------------------------------------------------------------------- #
# Campaign mode (serial vs parallel, obs/checkpoint overhead riders)      #
# ---------------------------------------------------------------------- #
def _child(args: argparse.Namespace) -> int:
    """One measured campaign run; emits a single JSON line on stdout."""
    from repro.api import Pipeline

    start = time.perf_counter()
    result = Pipeline(workers=args.workers, obs=args.obs).campaign(
        args.campaign,
        seed=args.seed,
        transfers=args.transfers,
        overrides={"zero_bug_episodes": 0},
        checkpoint_dir=args.checkpoint_dir or None,
    )
    wall_s = time.perf_counter() - start
    payload = json.dumps(result.to_dict(), sort_keys=True)
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        children = resource.getrusage(resource.RUSAGE_CHILDREN)
        peak_rss_kb = max(usage.ru_maxrss, children.ru_maxrss)
    except ImportError:  # non-POSIX: report what we can
        peak_rss_kb = 0
    print(json.dumps({
        "wall_s": wall_s,
        "records": len(result.records),
        "digest": hashlib.sha256(payload.encode()).hexdigest(),
        "peak_rss_kb": peak_rss_kb,
        "health_ok": result.health.ok,
    }))
    return 0


def _measure(
    args: argparse.Namespace,
    workers: int,
    checkpoint_dir: str = "",
    obs: bool = False,
) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "repro.tools.bench",
        "--as-child",
        "--campaign", args.campaign,
        "--seed", str(args.seed),
        "--transfers", str(args.transfers),
        "--workers", str(workers),
    ]
    if checkpoint_dir:
        cmd += ["--checkpoint-dir", checkpoint_dir]
    if obs:
        cmd += ["--obs"]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"child run (workers={workers}) failed")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _noop_dispatch_ns(iterations: int = 200_000) -> float:
    """Per-operation cost of a disabled instrumentation point, in ns.

    Measures the exact disabled fast path instrumented code takes:
    ``get_obs()`` once plus an ``enabled`` check per operation — the
    "disabled costs ~nothing" contract, quantified.
    """
    from repro.obs import get_obs

    counter = get_obs().metrics.counter("bench.noop")
    start = time.perf_counter()
    for _ in range(iterations):
        obs = get_obs()
        if obs.enabled:
            counter.inc()
    elapsed = time.perf_counter() - start
    return elapsed / iterations * 1e9


def _run_campaign_mode(args) -> int:
    from repro.exec.pool import available_parallelism

    _status(args, f"serial run: {args.campaign}, {args.transfers} transfers ...")
    serial = _measure(args, workers=1)
    _status(args, f"  {serial['wall_s']:.1f}s, {serial['records']} records")
    _status(args, f"parallel run: workers={args.workers} ...")
    parallel = _measure(args, workers=args.workers)
    _status(args, f"  {parallel['wall_s']:.1f}s, {parallel['records']} records")

    identical = serial["digest"] == parallel["digest"]
    speedup = serial["wall_s"] / parallel["wall_s"]
    summary = {
        "benchmark": "campaign",
        "git_sha": _git_sha(),
        "timestamp": args.timestamp or "unknown",
        "campaign": args.campaign,
        "seed": args.seed,
        "transfers": args.transfers,
        "workers": args.workers,
        "cpus": available_parallelism(),
        "serial": {
            "wall_s": round(serial["wall_s"], 3),
            "transfers_per_s": round(serial["records"] / serial["wall_s"], 4),
            "peak_rss_kb": serial["peak_rss_kb"],
        },
        "parallel": {
            "wall_s": round(parallel["wall_s"], 3),
            "transfers_per_s": round(
                parallel["records"] / parallel["wall_s"], 4
            ),
            "peak_rss_kb": parallel["peak_rss_kb"],
        },
        "speedup": round(speedup, 3),
        "identical": identical,
    }

    if args.mode == "checkpoint-overhead" or args.checkpoint_overhead:
        with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as ckpt:
            _status(args, "checkpointed serial run (fsync'd journal) ...")
            journaled = _measure(args, workers=1, checkpoint_dir=ckpt)
        _status(
            args, f"  {journaled['wall_s']:.1f}s, {journaled['records']} records"
        )
        summary["checkpointed"] = {
            "wall_s": round(journaled["wall_s"], 3),
            "peak_rss_kb": journaled["peak_rss_kb"],
            "identical_to_serial": journaled["digest"] == serial["digest"],
            # >1.0 means the journal costs time; the interesting number
            # for deciding whether to checkpoint long campaigns.
            "overhead_ratio": round(
                journaled["wall_s"] / serial["wall_s"], 3
            ),
        }

    if args.mode == "obs-overhead" or args.obs_overhead:
        _status(args, "obs-enabled serial run (metrics + tracing) ...")
        enabled = _measure(args, workers=1, obs=True)
        _status(args, f"  {enabled['wall_s']:.1f}s, {enabled['records']} records")
        # Two samples, best-of: the disabled path is identical code to
        # the serial baseline, so any measured "overhead" is run-to-run
        # noise — one extra sample keeps the guard from flaking on a
        # single slow scheduler quantum.
        _status(args, "obs-disabled serial runs (no-op samples) ...")
        disabled_samples = [_measure(args, workers=1) for _ in range(2)]
        disabled_wall = min(s["wall_s"] for s in disabled_samples)
        for sample in disabled_samples:
            _status(args, f"  {sample['wall_s']:.1f}s, {sample['records']} records")
        summary["obs"] = {
            "enabled_wall_s": round(enabled["wall_s"], 3),
            "disabled_wall_s": round(disabled_wall, 3),
            "identical_to_serial": enabled["digest"] == serial["digest"]
            and all(
                s["digest"] == serial["digest"] for s in disabled_samples
            ),
            # >1.0 means turning observability on costs time.
            "enabled_overhead_ratio": round(
                enabled["wall_s"] / serial["wall_s"], 3
            ),
            # The guard that the always-compiled-in no-op dispatch path
            # costs ~nothing.
            "disabled_overhead_ratio": round(
                disabled_wall / serial["wall_s"], 3
            ),
            "noop_dispatch_ns": round(_noop_dispatch_ns(), 1),
        }

    _append_history(Path(args.out), summary)
    _emit(args, summary, [json.dumps(summary, indent=2)])
    _status(args, f"summary appended -> {args.out}")

    if not identical:
        print("FAIL: parallel report differs from serial", file=sys.stderr)
        return _EXIT_ERROR
    if "checkpointed" in summary and not summary["checkpointed"][
        "identical_to_serial"
    ]:
        print(
            "FAIL: checkpointed report differs from plain serial",
            file=sys.stderr,
        )
        return _EXIT_ERROR
    if args.assert_speedup is not None and speedup < args.assert_speedup:
        print(
            f"FAIL: speedup {speedup:.2f} < required "
            f"{args.assert_speedup:.2f} (cpus={summary['cpus']})",
            file=sys.stderr,
        )
        return _EXIT_REGRESSION
    if "obs" in summary:
        if not summary["obs"]["identical_to_serial"]:
            print(
                "FAIL: observability changed the campaign report",
                file=sys.stderr,
            )
            return _EXIT_ERROR
        if (
            args.assert_obs_overhead is not None
            and summary["obs"]["enabled_overhead_ratio"]
            > args.assert_obs_overhead
        ):
            print(
                f"FAIL: obs-enabled overhead "
                f"{summary['obs']['enabled_overhead_ratio']:.3f} > allowed "
                f"{args.assert_obs_overhead:.3f}",
                file=sys.stderr,
            )
            return _EXIT_REGRESSION
        if (
            args.assert_obs_disabled_overhead is not None
            and summary["obs"]["disabled_overhead_ratio"]
            > args.assert_obs_disabled_overhead
        ):
            print(
                f"FAIL: obs-disabled overhead "
                f"{summary['obs']['disabled_overhead_ratio']:.3f} > allowed "
                f"{args.assert_obs_disabled_overhead:.3f}",
                file=sys.stderr,
            )
            return _EXIT_REGRESSION
    return _EXIT_OK


# ---------------------------------------------------------------------- #
# Ingest mode (per-stage packets/sec, fast paths vs reference)            #
# ---------------------------------------------------------------------- #
def _synthesize_corpus(path: Path, args) -> int:
    """Simulate ``--transfers`` campaign episodes into one pcap file.

    The episodes' captures are merged on the timestamp axis, so the
    corpus exercises concurrent connections the way a monitoring-point
    capture would.  Returns the record count.
    """
    from repro.wire.pcap import read_pcap, write_pcap
    from repro.workloads.campaign import (
        _draw_specs,
        campaign_config,
        run_episode,
    )

    config = campaign_config(
        args.campaign, seed=args.seed, transfers=args.transfers
    )
    specs, _ = _draw_specs(config)
    records = []
    for spec in specs:
        buffer = io.BytesIO()
        run_episode(spec, pcap_out=buffer)
        buffer.seek(0)
        records.extend(read_pcap(buffer))
    records.sort(key=lambda record: record.timestamp_us)
    with open(path, "wb") as handle:
        write_pcap(handle, records)
    return len(records)


def _best_of(repeat: int, fn) -> float:
    """Best (minimum) wall time of ``repeat`` runs of ``fn``."""
    best = float("inf")
    for _ in range(max(repeat, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _analysis_digest(report) -> str:
    """Canonical digest of an analysis report, for identity checks."""
    from repro.tools.tdat_cli import _analysis_to_dict

    payload = json.dumps(
        {
            "connections": {
                str(key): _analysis_to_dict(analysis)
                for key, analysis in report.analyses.items()
            },
            "health": report.health.to_dict(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _run_ingest(args) -> int:
    from repro.analysis.tdat import analyze_pcap
    from repro.wire import frames
    from repro.wire.pcap import PcapReader, read_pcap

    tmp_ctx = None
    if args.pcap:
        corpus = Path(args.pcap)
        _status(args, f"ingest corpus: {corpus}")
    else:
        tmp_ctx = tempfile.TemporaryDirectory(prefix="bench-ingest-")
        corpus = Path(tmp_ctx.name) / "corpus.pcap"
        _status(
            args,
            f"synthesizing corpus: {args.campaign}, "
            f"{args.transfers} transfers ...",
        )
        _synthesize_corpus(corpus, args)
    try:
        records = read_pcap(corpus, tolerant=True)
        count = len(records)
        if not count:
            print("tdat bench: corpus holds no records", file=sys.stderr)
            return _EXIT_ERROR
        _status(args, f"  {count} records; timing (best of {args.repeat}) ...")

        def read_fast():
            for _ in PcapReader(corpus, tolerant=True):
                pass

        def read_reference():
            for _ in PcapReader(corpus, tolerant=True, mmap=False):
                pass

        def parse_fast():
            parse = frames.parse_packet
            for record in records:
                try:
                    parse(record.data)
                except frames.FrameError:
                    pass

        def parse_reference():
            parse = frames.parse_frame
            for record in records:
                try:
                    parse(record.data)
                except frames.FrameError:
                    pass

        def analyze_fast():
            return analyze_pcap(corpus)

        def analyze_reference():
            return analyze_pcap(
                corpus, mmap=False, series_backend="python"
            )

        stages = {}
        for name, fast_fn, ref_fn in (
            ("read", read_fast, read_reference),
            ("parse", parse_fast, parse_reference),
            ("analyze", analyze_fast, analyze_reference),
        ):
            fast_s = _best_of(args.repeat, fast_fn)
            ref_s = _best_of(args.repeat, ref_fn)
            stages[name] = {
                "fast_pps": round(count / fast_s, 1),
                "reference_pps": round(count / ref_s, 1),
                "ratio": round(ref_s / fast_s, 3),
            }
            _status(
                args,
                f"  {name}: {stages[name]['fast_pps']:.0f} pkts/s fast, "
                f"{stages[name]['reference_pps']:.0f} reference "
                f"({stages[name]['ratio']:.2f}x)",
            )

        identical = (
            _analysis_digest(analyze_fast())
            == _analysis_digest(analyze_reference())
        )
    finally:
        if tmp_ctx is not None:
            tmp_ctx.cleanup()

    summary = {
        "benchmark": "ingest",
        "git_sha": _git_sha(),
        "timestamp": args.timestamp or "unknown",
        "campaign": None if args.pcap else args.campaign,
        "seed": None if args.pcap else args.seed,
        "transfers": None if args.pcap else args.transfers,
        "pcap": args.pcap or None,
        "records": count,
        "repeat": args.repeat,
        "stages": stages,
        # The headline number the regression gate watches: end-to-end
        # analyze_pcap throughput with every fast path enabled.
        "analyze_pps": stages["analyze"]["fast_pps"],
        "identical": identical,
    }

    gate_failure = None
    if args.baseline:
        baseline = _latest_baseline(Path(args.baseline), "ingest")
        if baseline is None:
            _status(
                args,
                f"no ingest baseline in {args.baseline}; gate skipped",
            )
        else:
            floor = baseline["analyze_pps"] * (1.0 - args.max_regression)
            summary["baseline"] = {
                "analyze_pps": baseline["analyze_pps"],
                "git_sha": baseline.get("git_sha", "unknown"),
                "floor_pps": round(floor, 1),
            }
            if summary["analyze_pps"] < floor:
                gate_failure = (
                    f"FAIL: analyze throughput {summary['analyze_pps']:.0f} "
                    f"pkts/s under regression floor {floor:.0f} "
                    f"(baseline {baseline['analyze_pps']:.0f}, "
                    f"max regression {args.max_regression:.0%})"
                )

    _append_history(Path(args.out), summary)
    lines = [
        f"ingest: {count} records",
        *(
            f"  {name}: {stage['fast_pps']:.0f} pkts/s fast, "
            f"{stage['reference_pps']:.0f} reference ({stage['ratio']:.2f}x)"
            for name, stage in stages.items()
        ),
        f"fast path identical to reference: {identical}",
    ]
    _emit(args, summary, lines)
    _status(args, f"summary appended -> {args.out}")

    if not identical:
        print(
            "FAIL: fast-path analysis differs from reference",
            file=sys.stderr,
        )
        return _EXIT_ERROR
    if gate_failure:
        print(gate_failure, file=sys.stderr)
        return _EXIT_REGRESSION
    return _EXIT_OK


# ---------------------------------------------------------------------- #
# Parser + entry points                                                   #
# ---------------------------------------------------------------------- #
def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the bench options to ``parser`` (shared with ``tdat``)."""
    parser.add_argument(
        "mode", nargs="?", default="campaign", choices=MODES,
        help="what to benchmark (default: campaign)",
    )
    parser.add_argument(
        "--campaign", default="ISP_A-Quagga",
        help="campaign the workload is drawn from (default: ISP_A-Quagga)",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--transfers", type=int, default=6,
        help="episodes in the workload (default: 6)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker count of the parallel campaign run (default: 4)",
    )
    parser.add_argument(
        "--out", default="BENCH_campaign.json",
        help="run-history JSON the summary is appended to",
    )
    parser.add_argument(
        "--timestamp", default="",
        help="ISO timestamp recorded in the history entry (the caller "
        "supplies it; the benchmark never reads the clock for metadata)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the summary as JSON on stdout",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress progress chatter on stderr",
    )
    parser.add_argument(
        "--pcap", metavar="FILE",
        help="ingest mode: benchmark this capture instead of "
        "synthesizing one from the campaign",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="ingest mode: samples per stage, best-of (default: 3)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="ingest mode: gate against the latest ingest entry in "
        "this history file",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.15, metavar="X",
        help="ingest mode: allowed fractional packets/sec drop vs. the "
        "baseline before failing with exit code 5 (default: 0.15)",
    )
    parser.add_argument(
        "--assert-speedup", type=float, metavar="X",
        help="campaign mode: exit 5 unless parallel speedup >= X",
    )
    parser.add_argument(
        "--checkpoint-overhead", action="store_true",
        help="campaign mode: also measure a checkpointed serial run "
        "(same as mode checkpoint-overhead)",
    )
    parser.add_argument(
        "--obs-overhead", action="store_true",
        help="campaign mode: also measure observability overhead "
        "(same as mode obs-overhead)",
    )
    parser.add_argument(
        "--assert-obs-overhead", type=float, metavar="X",
        help="with obs-overhead: exit 5 unless the obs-enabled run is "
        "within ratio X of the plain serial run",
    )
    parser.add_argument(
        "--assert-obs-disabled-overhead", type=float, metavar="X",
        help="with obs-overhead: exit 5 unless a second obs-disabled "
        "sample stays within ratio X of the plain serial run",
    )
    parser.add_argument(
        "--as-child", action="store_true", help=argparse.SUPPRESS
    )
    parser.add_argument(
        "--checkpoint-dir", default="", help=argparse.SUPPRESS
    )
    parser.add_argument(
        "--obs", action="store_true", help=argparse.SUPPRESS
    )


def run_with_args(args: argparse.Namespace) -> int:
    """Dispatch a parsed bench invocation (shared with ``tdat bench``)."""
    if args.as_child:
        return _child(args)
    if args.mode == "ingest":
        return _run_ingest(args)
    return _run_campaign_mode(args)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tdat bench", description=__doc__.splitlines()[0]
    )
    configure_parser(parser)
    return run_with_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
