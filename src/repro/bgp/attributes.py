"""BGP path attributes (RFC 4271 section 4.3) with wire codecs.

Two-byte AS numbers are used throughout, matching the 2008–2011
measurement era of the paper.  The supported attributes are the ones
present in virtually every table-transfer UPDATE: ORIGIN, AS_PATH,
NEXT_HOP, MULTI_EXIT_DISC and LOCAL_PREF.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.wire.ip import bytes_to_ip, ip_to_bytes

# Attribute type codes.
ORIGIN = 1
AS_PATH = 2
NEXT_HOP = 3
MULTI_EXIT_DISC = 4
LOCAL_PREF = 5
AS4_PATH = 17

# RFC 6793: the 2-byte stand-in for a 4-byte AS number.
AS_TRANS = 23456

# Attribute flag bits.
FLAG_OPTIONAL = 0x80
FLAG_TRANSITIVE = 0x40
FLAG_EXTENDED_LENGTH = 0x10

# ORIGIN values.
ORIGIN_IGP = 0
ORIGIN_EGP = 1
ORIGIN_INCOMPLETE = 2

# AS_PATH segment types.
AS_SET = 1
AS_SEQUENCE = 2


class AttributeError_(ValueError):
    """Raised on malformed path attributes."""


@dataclass(frozen=True)
class AsPathSegment:
    """One AS_PATH segment: an AS_SEQUENCE or AS_SET of AS numbers.

    ASNs above 65535 are carried per RFC 6793: the 2-byte AS_PATH shows
    :data:`AS_TRANS` and the true values travel in an AS4_PATH
    attribute (see :meth:`PathAttributes.encode`).
    """

    segment_type: int
    asns: tuple[int, ...]

    def encode(self, wide: bool = False) -> bytes:
        """Wire form; ``wide`` selects 4-byte ASNs (AS4_PATH)."""
        if not 1 <= len(self.asns) <= 255:
            raise AttributeError_(f"segment of {len(self.asns)} ASNs")
        if wide:
            body = struct.pack(f"!{len(self.asns)}I", *self.asns)
        else:
            narrowed = tuple(
                asn if asn <= 0xFFFF else AS_TRANS for asn in self.asns
            )
            body = struct.pack(f"!{len(self.asns)}H", *narrowed)
        return struct.pack("!BB", self.segment_type, len(self.asns)) + body

    def has_wide_asns(self) -> bool:
        """True if any ASN needs more than 2 bytes."""
        return any(asn > 0xFFFF for asn in self.asns)


@dataclass(frozen=True)
class PathAttributes:
    """The attribute set shared by all routes in one UPDATE."""

    origin: int = ORIGIN_IGP
    as_path: tuple[AsPathSegment, ...] = ()
    next_hop: str = "0.0.0.0"
    med: int | None = None
    local_pref: int | None = None

    @classmethod
    def from_path(cls, asns: list[int] | tuple[int, ...], next_hop: str,
                  origin: int = ORIGIN_IGP, med: int | None = None,
                  local_pref: int | None = None) -> "PathAttributes":
        """Convenience: a single AS_SEQUENCE path."""
        segments = (AsPathSegment(AS_SEQUENCE, tuple(asns)),) if asns else ()
        return cls(origin=origin, as_path=segments, next_hop=next_hop,
                   med=med, local_pref=local_pref)

    def path_asns(self) -> tuple[int, ...]:
        """Flattened AS numbers across all segments (display helper)."""
        return tuple(asn for seg in self.as_path for asn in seg.asns)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize the full path-attribute block of an UPDATE.

        Paths containing 4-byte ASNs use RFC 6793's interoperable form:
        AS_TRANS placeholders in AS_PATH plus a full-width AS4_PATH.
        """
        parts = [
            _encode_attribute(FLAG_TRANSITIVE, ORIGIN, bytes([self.origin])),
            _encode_attribute(
                FLAG_TRANSITIVE,
                AS_PATH,
                b"".join(seg.encode() for seg in self.as_path),
            ),
            _encode_attribute(
                FLAG_TRANSITIVE, NEXT_HOP, ip_to_bytes(self.next_hop)
            ),
        ]
        if any(seg.has_wide_asns() for seg in self.as_path):
            parts.append(
                _encode_attribute(
                    FLAG_OPTIONAL | FLAG_TRANSITIVE,
                    AS4_PATH,
                    b"".join(seg.encode(wide=True) for seg in self.as_path),
                )
            )
        if self.med is not None:
            parts.append(
                _encode_attribute(
                    FLAG_OPTIONAL, MULTI_EXIT_DISC, struct.pack("!I", self.med)
                )
            )
        if self.local_pref is not None:
            parts.append(
                _encode_attribute(
                    FLAG_TRANSITIVE, LOCAL_PREF, struct.pack("!I", self.local_pref)
                )
            )
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "PathAttributes":
        """Parse an UPDATE's path-attribute block."""
        origin = ORIGIN_IGP
        as_path: tuple[AsPathSegment, ...] = ()
        as4_path: tuple[AsPathSegment, ...] = ()
        next_hop = "0.0.0.0"
        med: int | None = None
        local_pref: int | None = None
        i = 0
        while i < len(data):
            if i + 2 > len(data):
                raise AttributeError_("truncated attribute header")
            flags, type_code = data[i], data[i + 1]
            i += 2
            if flags & FLAG_EXTENDED_LENGTH:
                if i + 2 > len(data):
                    raise AttributeError_("truncated extended length")
                (length,) = struct.unpack_from("!H", data, i)
                i += 2
            else:
                if i + 1 > len(data):
                    raise AttributeError_("truncated length")
                length = data[i]
                i += 1
            if i + length > len(data):
                raise AttributeError_(
                    f"attribute {type_code} length {length} overruns block"
                )
            body = data[i : i + length]
            i += length
            if type_code == ORIGIN:
                if length != 1:
                    raise AttributeError_("ORIGIN must be 1 byte")
                origin = body[0]
            elif type_code == AS_PATH:
                as_path = _decode_as_path(body)
            elif type_code == AS4_PATH:
                as4_path = _decode_as_path(body, wide=True)
            elif type_code == NEXT_HOP:
                next_hop = bytes_to_ip(body)
            elif type_code == MULTI_EXIT_DISC:
                (med,) = struct.unpack("!I", body)
            elif type_code == LOCAL_PREF:
                (local_pref,) = struct.unpack("!I", body)
            # Unknown attributes are skipped (transitive pass-through).
        if as4_path:
            as_path = _merge_as4_path(as_path, as4_path)
        return cls(origin=origin, as_path=as_path, next_hop=next_hop,
                   med=med, local_pref=local_pref)


def _encode_attribute(flags: int, type_code: int, body: bytes) -> bytes:
    if len(body) > 255:
        flags |= FLAG_EXTENDED_LENGTH
        header = struct.pack("!BBH", flags, type_code, len(body))
    else:
        header = struct.pack("!BBB", flags, type_code, len(body))
    return header + body


def _decode_as_path(body: bytes, wide: bool = False) -> tuple[AsPathSegment, ...]:
    segments = []
    width = 4 if wide else 2
    fmt = "I" if wide else "H"
    i = 0
    while i < len(body):
        if i + 2 > len(body):
            raise AttributeError_("truncated AS_PATH segment header")
        seg_type, count = body[i], body[i + 1]
        i += 2
        need = count * width
        if i + need > len(body):
            raise AttributeError_("truncated AS_PATH segment")
        asns = struct.unpack(f"!{count}{fmt}", body[i : i + need])
        i += need
        segments.append(AsPathSegment(seg_type, asns))
    return tuple(segments)


def _merge_as4_path(
    narrow: tuple[AsPathSegment, ...], wide: tuple[AsPathSegment, ...]
) -> tuple[AsPathSegment, ...]:
    """RFC 6793 reconstruction: substitute AS_TRANS with the true ASNs.

    When the segment structures match (the common case for a speaker
    that generated both), substitute element-wise; otherwise prefer the
    AS4_PATH outright — our simplified form of the RFC's prepend rule.
    """
    if [(_seg.segment_type, len(_seg.asns)) for _seg in narrow] != [
        (_seg.segment_type, len(_seg.asns)) for _seg in wide
    ]:
        return wide
    merged = []
    for nseg, wseg in zip(narrow, wide):
        asns = tuple(
            w if n == AS_TRANS else n for n, w in zip(nseg.asns, wseg.asns)
        )
        merged.append(AsPathSegment(nseg.segment_type, asns))
    return tuple(merged)
