"""BGP peer-group replication with blocking semantics.

The paper (section II-B3) describes the vendor peer-group feature:
updates for peers with identical outbound policy are generated once,
placed in a common queue, and replicated to every member's TCP
connection — and "the queued common updates would be cleared only after
being successfully delivered to all peers", so one slow or failed
member drags the whole group down.  That is precisely the behaviour
implemented here: the group advances its common queue only when *every*
active member's TCP has fully delivered (ACKed) the previous batch.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.bgp.messages import encode_message
from repro.bgp.speaker import BgpSession
from repro.bgp.table import Rib
from repro.netsim.simulator import PeriodicTimer, Simulator


class PeerGroup:
    """A common update queue replicated to member sessions in lockstep."""

    def __init__(
        self,
        sim: Simulator,
        members: list[BgpSession],
        batch_messages: int = 20,
        poll_interval_us: int = 5_000,
        advance_threshold_bytes: int = 0,
    ) -> None:
        if not members:
            raise ValueError("a peer group needs at least one member")
        if batch_messages <= 0:
            raise ValueError(f"non-positive batch {batch_messages}")
        self.sim = sim
        self.members = list(members)
        self.active = list(members)
        self.batch_messages = batch_messages
        self.advance_threshold_bytes = advance_threshold_bytes
        self._queue: deque[bytes] = deque()
        self._poller = PeriodicTimer(
            sim, poll_interval_us, self._poll, name="peer-group"
        )
        self.batches_sent = 0
        self.messages_replicated = 0
        self.on_drained: Callable[[], None] | None = None
        for member in self.members:
            self._chain_down_callback(member)

    def _chain_down_callback(self, member: BgpSession) -> None:
        previous = member.on_down

        def _down(session: BgpSession, reason: str) -> None:
            self.remove_member(session)
            if previous is not None:
                previous(session, reason)

        member.on_down = _down

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    def announce_table(self, rib: Rib) -> int:
        """Queue one table transfer for replication to all members."""
        updates = [encode_message(u) for u in rib.to_updates()]
        self._queue.extend(updates)
        for member in self.active:
            member.transfer_started_at_us = self.sim.now
        if not self._poller.running:
            self._poller.start(initial_delay_us=0)
        return len(updates)

    @property
    def pending_messages(self) -> int:
        """Messages not yet replicated to the members."""
        return len(self._queue)

    def remove_member(self, session: BgpSession) -> None:
        """Drop a (failed) member; the group resumes without it."""
        if session in self.active:
            self.active.remove(session)

    # ------------------------------------------------------------------
    # Replication engine
    # ------------------------------------------------------------------
    def _all_members_drained(self) -> bool:
        return all(
            member.endpoint.sender.buffered_bytes <= self.advance_threshold_bytes
            for member in self.active
        )

    def _poll(self) -> None:
        if not self._queue:
            self._poller.stop()
            if self.on_drained is not None:
                self.on_drained()
            return
        if not self.active:
            # Everyone failed; drop the queue.
            self._queue.clear()
            self._poller.stop()
            return
        if not self._all_members_drained():
            return
        batch = [
            self._queue.popleft()
            for _ in range(min(self.batch_messages, len(self._queue)))
        ]
        for member in self.active:
            for encoded in batch:
                member.endpoint.send(encoded)
                member.updates_sent += 1
        self.batches_sent += 1
        self.messages_replicated += len(batch)
        if not self._queue:
            for member in self.active:
                member.transfer_drained_at_us = self.sim.now
