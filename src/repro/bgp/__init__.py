"""BGP substrate: messages, tables, sessions, sender models, collectors."""

from repro.bgp.attributes import AsPathSegment, PathAttributes
from repro.bgp.collector import (
    BaseCollector,
    CollectorCpu,
    QuaggaCollector,
    VendorCollector,
)
from repro.bgp.messages import (
    BgpError,
    BgpMessage,
    KeepaliveMessage,
    MessageDecoder,
    NotificationMessage,
    OpenMessage,
    Prefix,
    UpdateMessage,
    decode_message,
    encode_message,
)
from repro.bgp.mrt import MrtRecord, read_mrt, write_mrt
from repro.bgp.peer_group import PeerGroup
from repro.bgp.sender_models import (
    ImmediateSender,
    RateLimitedSender,
    SenderModel,
    TimerBatchSender,
)
from repro.bgp.speaker import BgpSession, BgpSessionState
from repro.bgp.table import Rib, Route, generate_table

__all__ = [
    "AsPathSegment",
    "BaseCollector",
    "BgpError",
    "BgpMessage",
    "BgpSession",
    "BgpSessionState",
    "CollectorCpu",
    "ImmediateSender",
    "KeepaliveMessage",
    "MessageDecoder",
    "MrtRecord",
    "NotificationMessage",
    "OpenMessage",
    "PathAttributes",
    "PeerGroup",
    "Prefix",
    "QuaggaCollector",
    "RateLimitedSender",
    "Rib",
    "Route",
    "SenderModel",
    "TimerBatchSender",
    "UpdateMessage",
    "VendorCollector",
    "decode_message",
    "encode_message",
    "generate_table",
    "read_mrt",
    "write_mrt",
]
