"""BGP collectors: the paper's *Receiver* boxes.

Two kinds mirror the measurement setup (paper section II-A):

* :class:`QuaggaCollector` — a PC-based monitor that archives every
  received update as an MRT record.
* :class:`VendorCollector` — a looking-glass router that keeps only the
  current RIB (no archive).

Both read their TCP sockets through a shared :class:`CollectorCpu`
whose service rate models the receiving BGP process.  When many routers
transfer tables concurrently, the run queue grows, sockets drain
slowly, advertised windows close, and the receiver becomes the
bottleneck — the effect the paper quantifies in Figure 15.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.bgp.messages import UpdateMessage
from repro.bgp.mrt import MrtRecord, write_mrt
from repro.bgp.speaker import BgpSession
from repro.bgp.table import Rib, Route
from repro.netsim.node import Host
from repro.netsim.simulator import Simulator
from repro.tcp.socket import TcpEndpoint


class CollectorCpu:
    """A single service queue shared by all of a collector's sessions.

    Each scheduling quantum reads up to ``read_chunk_bytes`` from one
    session's socket and charges ``per_message_us`` for every decoded
    message plus ``per_byte_us`` per byte parsed.
    """

    def __init__(
        self,
        sim: Simulator,
        per_message_us: int = 150,
        per_byte_us: float = 0.02,
        read_chunk_bytes: int = 4096,
        stall_every_us: int = 0,
        stall_duration_us: int = 0,
    ) -> None:
        """``stall_every_us``/``stall_duration_us`` model periodic
        periods where the BGP process does other work (table scans,
        the paper's loaded collectors) and reads nothing at all."""
        self.sim = sim
        self.per_message_us = per_message_us
        self.per_byte_us = per_byte_us
        self.read_chunk_bytes = read_chunk_bytes
        self.stall_every_us = stall_every_us
        self.stall_duration_us = stall_duration_us
        self._runnable: deque[BgpSession] = deque()
        self._queued: set[int] = set()
        self._busy = False
        self.total_busy_us = 0
        self.quanta = 0

    def _stall_remaining(self, now_us: int) -> int:
        """Microseconds left of an active stall window, else 0."""
        if self.stall_every_us <= 0 or self.stall_duration_us <= 0:
            return 0
        phase = now_us % self.stall_every_us
        if phase < self.stall_duration_us:
            return self.stall_duration_us - phase
        return 0

    def notify_readable(self, session: BgpSession) -> None:
        """A session's socket has data; enqueue it for service."""
        if id(session) not in self._queued:
            self._runnable.append(session)
            self._queued.add(id(session))
        if not self._busy:
            self._busy = True
            self.sim.schedule(0, self._serve)

    @property
    def run_queue_depth(self) -> int:
        """Sessions currently waiting for CPU service."""
        return len(self._runnable)

    def _serve(self) -> None:
        if not self._runnable:
            self._busy = False
            return
        stall = self._stall_remaining(self.sim.now)
        if stall > 0:
            self.sim.schedule(stall, self._serve)
            return
        session = self._runnable.popleft()
        self._queued.discard(id(session))
        data_before = session.endpoint.readable_bytes
        messages = session.process_input(self.read_chunk_bytes)
        consumed = min(data_before, self.read_chunk_bytes)
        service_us = max(
            1,
            round(
                len(messages) * self.per_message_us
                + consumed * self.per_byte_us
            ),
        )
        self.total_busy_us += service_us
        self.quanta += 1
        if session.endpoint.readable_bytes > 0 and id(session) not in self._queued:
            self._runnable.append(session)
            self._queued.add(id(session))
        self.sim.schedule(service_us, self._serve)


class BaseCollector:
    """Common machinery of Quagga- and vendor-style collectors."""

    archives_mrt = False

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        local_as: int,
        bgp_id: str,
        cpu: CollectorCpu | None = None,
        hold_time_s: int = 180,
    ) -> None:
        self.sim = sim
        self.host = host
        self.local_as = local_as
        self.bgp_id = bgp_id
        self.cpu = cpu or CollectorCpu(sim)
        self.hold_time_s = hold_time_s
        self.sessions: list[BgpSession] = []
        self.archive: list[MrtRecord] = []
        self.rib = Rib()
        self.updates_archived = 0
        self.on_update: Callable[[BgpSession, UpdateMessage, int], None] | None = None

    def add_session(
        self, endpoint: TcpEndpoint, peer_as: int, peer_ip: str
    ) -> BgpSession:
        """Bind a collector-side BGP session to an accepted endpoint."""
        session = BgpSession(
            self.sim,
            endpoint,
            local_as=self.local_as,
            bgp_id=self.bgp_id,
            hold_time_s=self.hold_time_s,
            on_update=self._session_update,
            auto_read=False,
        )
        session.peer_as = peer_as
        session.peer_ip = peer_ip
        session.on_readable = self.cpu.notify_readable
        self.sessions.append(session)
        return session

    def _session_update(
        self, session: BgpSession, update: UpdateMessage, timestamp_us: int
    ) -> None:
        for prefix in update.announced:
            if update.attributes is not None:
                self.rib.add(Route(prefix, update.attributes))
        for prefix in update.withdrawn:
            self.rib.withdraw(prefix)
        if self.archives_mrt:
            self.archive.append(
                MrtRecord(
                    timestamp_us=timestamp_us,
                    peer_as=getattr(session, "peer_as", 0),
                    local_as=self.local_as,
                    peer_ip=getattr(session, "peer_ip", "0.0.0.0"),
                    local_ip=self.host.ip,
                    message=update,
                )
            )
            self.updates_archived += 1
        if self.on_update is not None:
            self.on_update(session, update, timestamp_us)

    def kill(self) -> None:
        """The collector box fails: every socket goes silent.

        This is the paper's Figure 9 trigger — routers keep
        retransmitting into the dead box until their hold timers fire.
        """
        for session in self.sessions:
            session.endpoint.kill(silent=True)
            session._hold_timer.stop()
            session._keepalive_timer.stop()


class QuaggaCollector(BaseCollector):
    """A Quagga-style monitor that archives updates in MRT format."""

    archives_mrt = True

    def write_archive(self, path) -> int:
        """Dump the MRT archive to ``path``; returns the record count."""
        write_mrt(path, self.archive)
        return len(self.archive)

    def write_rib_snapshot(self, path, peer_as: int = 0,
                           peer_ip: str = "0.0.0.0") -> int:
        """Dump the current RIB as a TABLE_DUMP_V2 snapshot.

        Real Quagga collectors write periodic RIB dumps alongside the
        update archive; returns the number of RIB entries written.
        """
        from repro.bgp.mrt import RibSnapshot

        snapshot = RibSnapshot(
            timestamp_us=self.sim.now,
            collector_id=self.bgp_id,
            peer_as=peer_as,
            peer_ip=peer_ip,
            entries=tuple(
                (route.prefix, route.attributes) for route in self.rib
            ),
        )
        data = snapshot.encode()
        if isinstance(path, (str, bytes)) or hasattr(path, "__fspath__"):
            with open(path, "wb") as stream:
                stream.write(data)
        else:
            path.write(data)
        return len(snapshot.entries)


class VendorCollector(BaseCollector):
    """A vendor looking-glass: current RIB only, no archive."""

    archives_mrt = False
