"""The BGP session state machine over a simulated TCP endpoint.

A :class:`BgpSession` drives one side of a peering: OPEN exchange,
keepalive/hold timers, table transfer through a pluggable sender model,
and incremental decoding of the inbound message stream.  Callbacks
expose everything a collector or scenario needs to observe.
"""

from __future__ import annotations

import enum
from collections.abc import Callable

from repro.bgp.messages import (
    ERR_HOLD_TIMER_EXPIRED,
    ERR_OPEN_MESSAGE,
    OPEN_ERR_BAD_PEER_AS,
    OPEN_ERR_UNACCEPTABLE_HOLD_TIME,
    OPEN_ERR_UNSUPPORTED_VERSION,
    BgpMessage,
    KeepaliveMessage,
    MessageDecoder,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    encode_message,
)
from repro.bgp.sender_models import ImmediateSender, SenderModel
from repro.bgp.table import Rib
from repro.core.units import seconds
from repro.netsim.simulator import PeriodicTimer, Simulator, Timer
from repro.tcp.socket import TcpEndpoint

DEFAULT_HOLD_TIME_S = 180


class BgpSessionState(enum.Enum):
    """The RFC 4271 FSM states the simulation distinguishes."""

    IDLE = "idle"
    CONNECT = "connect"
    OPEN_SENT = "open-sent"
    OPEN_CONFIRM = "open-confirm"
    ESTABLISHED = "established"


class BgpSession:
    """One BGP peering endpoint bound to a TCP connection."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: TcpEndpoint,
        local_as: int,
        bgp_id: str,
        hold_time_s: int = DEFAULT_HOLD_TIME_S,
        expected_peer_as: int | None = None,
        rib: Rib | None = None,
        sender_model: SenderModel | None = None,
        on_established: Callable[["BgpSession"], None] | None = None,
        on_update: Callable[["BgpSession", UpdateMessage, int], None] | None = None,
        on_message: Callable[["BgpSession", BgpMessage, int], None] | None = None,
        on_down: Callable[["BgpSession", str], None] | None = None,
        auto_read: bool = True,
    ) -> None:
        self.sim = sim
        self.endpoint = endpoint
        self.local_as = local_as
        self.bgp_id = bgp_id
        self.configured_hold_time_s = hold_time_s
        self.hold_time_s = hold_time_s
        self.expected_peer_as = expected_peer_as
        self.rib = rib
        self.sender_model = sender_model or ImmediateSender()
        self.sender_model.attach(self._write_message)
        self.on_established = on_established
        self.on_update = on_update
        self.on_message = on_message
        self.on_down = on_down
        self.auto_read = auto_read
        # Invoked instead of process_input() when auto_read is False;
        # lets a collector CPU schedule the reads itself.
        self.on_readable: Callable[["BgpSession"], None] | None = None
        self.state = BgpSessionState.IDLE
        self.peer_open: OpenMessage | None = None
        self.decoder = MessageDecoder()
        self._hold_timer = Timer(sim, self._hold_expired, name="bgp-hold")
        self._keepalive_timer = PeriodicTimer(
            sim, seconds(max(hold_time_s // 3, 1)), self._send_keepalive,
            name="bgp-keepalive",
        )
        self.established_at_us: int | None = None
        self.down_at_us: int | None = None
        self.updates_received = 0
        self.updates_sent = 0
        self.transfer_started_at_us: int | None = None
        self.transfer_drained_at_us: int | None = None
        endpoint.on_established = self._tcp_established
        endpoint.on_data = self._tcp_readable
        endpoint.on_close = self._tcp_closed
        self.sender_model.on_drained = self._transfer_drained
        self.state = BgpSessionState.CONNECT

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------
    def _write_message(self, encoded: bytes) -> None:
        self.endpoint.send(encoded)
        self.updates_sent += 1

    def send_message(self, message: BgpMessage) -> None:
        """Encode and send a protocol message immediately."""
        self.endpoint.send(encode_message(message))

    def announce_table(self, rib: Rib | None = None) -> int:
        """Queue a full table transfer through the sender model.

        Returns the number of UPDATE messages queued.
        """
        table = rib if rib is not None else self.rib
        if table is None:
            return 0
        updates = [encode_message(u) for u in table.to_updates()]
        self.transfer_started_at_us = self.sim.now
        self.sender_model.enqueue(updates)
        return len(updates)

    def _transfer_drained(self) -> None:
        self.transfer_drained_at_us = self.sim.now

    def _send_keepalive(self) -> None:
        if self.state is BgpSessionState.ESTABLISHED:
            self.send_message(KeepaliveMessage())

    # ------------------------------------------------------------------
    # TCP callbacks
    # ------------------------------------------------------------------
    def _tcp_established(self, endpoint: TcpEndpoint) -> None:
        self.send_message(
            OpenMessage(
                my_as=self.local_as,
                hold_time_s=self.configured_hold_time_s,
                bgp_id=self.bgp_id,
            )
        )
        self.state = BgpSessionState.OPEN_SENT

    def _tcp_readable(self, endpoint: TcpEndpoint) -> None:
        if self.auto_read:
            self.process_input()
        elif self.on_readable is not None:
            self.on_readable(self)

    def process_input(self, max_bytes: int | None = None) -> list[BgpMessage]:
        """Read from TCP and process complete messages.

        Collectors with a CPU model call this themselves with a byte
        budget; ``auto_read`` sessions call it on every data arrival.
        """
        data = self.endpoint.read(max_bytes)
        if not data:
            return []
        messages = self.decoder.feed(data)
        for message in messages:
            self._handle_message(message)
        return messages

    def _tcp_closed(self, endpoint: TcpEndpoint) -> None:
        if self.state is not BgpSessionState.IDLE:
            self._go_down("tcp-closed")

    # ------------------------------------------------------------------
    # Inbound FSM
    # ------------------------------------------------------------------
    def _handle_message(self, message: BgpMessage) -> None:
        self._restart_hold_timer()
        if self.on_message is not None:
            self.on_message(self, message, self.sim.now)
        if isinstance(message, OpenMessage):
            self._handle_open(message)
        elif isinstance(message, KeepaliveMessage):
            self._handle_keepalive()
        elif isinstance(message, UpdateMessage):
            self.updates_received += 1
            if self.on_update is not None:
                self.on_update(self, message, self.sim.now)
        elif isinstance(message, NotificationMessage):
            self._go_down(f"notification-{message.error_code}")

    def _handle_open(self, message: OpenMessage) -> None:
        error = self._validate_open(message)
        if error is not None:
            code, subcode = error
            try:
                self.send_message(NotificationMessage(code, subcode))
            except RuntimeError:
                pass
            self._go_down(f"open-rejected-{subcode}")
            self.endpoint.abort()
            return
        self.peer_open = message
        self.hold_time_s = min(self.configured_hold_time_s, message.hold_time_s)
        self.send_message(KeepaliveMessage())
        if self.state is BgpSessionState.OPEN_SENT:
            self.state = BgpSessionState.OPEN_CONFIRM

    def _validate_open(self, message: OpenMessage) -> tuple[int, int] | None:
        """RFC 4271 section 6.2 OPEN checks; None means acceptable."""
        if message.version != 4:
            return (ERR_OPEN_MESSAGE, OPEN_ERR_UNSUPPORTED_VERSION)
        if (
            self.expected_peer_as is not None
            and message.my_as != self.expected_peer_as
        ):
            return (ERR_OPEN_MESSAGE, OPEN_ERR_BAD_PEER_AS)
        if message.hold_time_s in (1, 2):
            # Zero means "no keepalives"; 1-2s are unacceptable.
            return (ERR_OPEN_MESSAGE, OPEN_ERR_UNACCEPTABLE_HOLD_TIME)
        return None

    def _handle_keepalive(self) -> None:
        if self.state is BgpSessionState.OPEN_CONFIRM:
            self._establish()

    def _establish(self) -> None:
        self.state = BgpSessionState.ESTABLISHED
        self.established_at_us = self.sim.now
        interval = seconds(max(self.hold_time_s // 3, 1))
        self._keepalive_timer.interval_us = interval
        self._keepalive_timer.start()
        self._restart_hold_timer()
        if self.on_established is not None:
            self.on_established(self)

    # ------------------------------------------------------------------
    # Timers and teardown
    # ------------------------------------------------------------------
    def _restart_hold_timer(self) -> None:
        if self.hold_time_s > 0:
            self._hold_timer.start(seconds(self.hold_time_s))

    def _hold_expired(self) -> None:
        try:
            self.send_message(NotificationMessage(ERR_HOLD_TIMER_EXPIRED))
        except RuntimeError:
            pass  # TCP may already be unusable
        # Record the reason before the abort's on_close fires.
        self._go_down("hold-timer-expired")
        self.endpoint.abort()

    def _go_down(self, reason: str) -> None:
        if self.state is BgpSessionState.IDLE:
            return
        self.state = BgpSessionState.IDLE
        self.down_at_us = self.sim.now
        self._hold_timer.stop()
        self._keepalive_timer.stop()
        self.sender_model.stop()
        if self.on_down is not None:
            self.on_down(self, reason)

    def shutdown(self, notify: bool = True) -> None:
        """Administrative teardown (CEASE)."""
        if notify and self.state is not BgpSessionState.IDLE:
            try:
                self.send_message(NotificationMessage(6))  # CEASE
            except RuntimeError:
                pass
        self._go_down("cease")
        self.endpoint.abort()
