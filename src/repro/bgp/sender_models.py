"""BGP sender behaviour models.

How a router hands its table to TCP determines the sender-side delay
factors T-DAT measures:

* :class:`ImmediateSender` — everything enters the socket at once; the
  transfer is never application-limited (TCP windows dominate).
* :class:`TimerBatchSender` — the undocumented timer-driven behaviour
  of Houidi et al. [15] that the paper confirms (section II-B1): a
  fixed number of messages per timer tick (80/100/200/400 ms observed),
  leaving periodic gaps on the wire.
* :class:`RateLimitedSender` — a token-bucket style pacing model for
  routers with an outbound update rate limit.

Models receive *encoded* messages (byte strings) so they are agnostic
to BGP message structure.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.core.units import US_PER_SECOND
from repro.netsim.simulator import PeriodicTimer, Simulator


class SenderModel:
    """Base: feeds encoded messages into a TCP write callback."""

    def __init__(self) -> None:
        self._queue: deque[bytes] = deque()
        self._write: Callable[[bytes], None] | None = None
        self.on_drained: Callable[[], None] | None = None
        self.total_messages = 0

    def attach(self, write: Callable[[bytes], None]) -> None:
        """Bind the TCP write callback (done by the BGP session)."""
        self._write = write

    def enqueue(self, messages: list[bytes]) -> None:
        """Queue encoded messages for transmission."""
        self._queue.extend(messages)
        self._kick()

    @property
    def pending_messages(self) -> int:
        """Messages not yet handed to TCP."""
        return len(self._queue)

    def _emit(self, count: int | None = None) -> None:
        assert self._write is not None, "sender model not attached"
        sent = 0
        while self._queue and (count is None or sent < count):
            self._write(self._queue.popleft())
            self.total_messages += 1
            sent += 1
        if not self._queue and sent and self.on_drained is not None:
            self.on_drained()

    def _kick(self) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        """Cancel any internal timers (session torn down)."""


class ImmediateSender(SenderModel):
    """Write every queued message to TCP as soon as it is enqueued."""

    def _kick(self) -> None:
        self._emit()


class TimerBatchSender(SenderModel):
    """Send ``messages_per_tick`` messages every ``interval_us``.

    Reproduces the timer-driven implementation behind the paper's "gaps
    in table transfers": each expiration releases a burst, then the
    connection idles until the next tick.
    """

    def __init__(
        self,
        sim: Simulator,
        interval_us: int,
        messages_per_tick: int,
    ) -> None:
        super().__init__()
        if messages_per_tick <= 0:
            raise ValueError(f"non-positive batch {messages_per_tick}")
        self.sim = sim
        self.interval_us = interval_us
        self.messages_per_tick = messages_per_tick
        self._timer = PeriodicTimer(sim, interval_us, self._tick, name="bgp-batch")

    def _kick(self) -> None:
        if not self._timer.running and self._queue:
            self._timer.start(initial_delay_us=0)

    def _tick(self) -> None:
        self._emit(self.messages_per_tick)
        if not self._queue:
            self._timer.stop()

    def stop(self) -> None:
        self._timer.stop()


class RateLimitedSender(SenderModel):
    """Pace messages so the byte rate approximates ``bytes_per_second``."""

    def __init__(self, sim: Simulator, bytes_per_second: float) -> None:
        super().__init__()
        if bytes_per_second <= 0:
            raise ValueError(f"non-positive rate {bytes_per_second}")
        self.sim = sim
        self.bytes_per_second = bytes_per_second
        self._scheduled = False

    def _kick(self) -> None:
        if not self._scheduled and self._queue:
            self._scheduled = True
            self.sim.schedule(0, self._send_next)

    def _send_next(self) -> None:
        self._scheduled = False
        if not self._queue:
            return
        message = self._queue[0]
        delay = max(1, round(len(message) * US_PER_SECOND / self.bytes_per_second))
        self._emit(1)
        if self._queue:
            self._scheduled = True
            self.sim.schedule(delay, self._send_next)
        # on_drained fires inside _emit when the queue empties.
