"""Routing tables: the RIB and a synthetic global-table generator.

The paper's transfers move "5~8 MB for the full BGP table" (section
II-B) — a few hundred thousand prefixes in 2008–2011.  The generator
produces tables with the same wire-level character: unique prefixes of
realistic lengths, AS paths of 1–6 hops drawn from a skewed ASN pool,
and attribute sharing so that many prefixes pack into each UPDATE, as
real routers emit them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import (
    HEADER_LEN,
    MAX_MESSAGE_LEN,
    Prefix,
    UpdateMessage,
    encode_message,
)


@dataclass(frozen=True)
class Route:
    """One RIB entry: a prefix with its path attributes."""

    prefix: Prefix
    attributes: PathAttributes


class Rib:
    """A Routing Information Base keyed by prefix."""

    def __init__(self, routes: list[Route] | None = None) -> None:
        self._routes: dict[str, Route] = {}
        for route in routes or ():
            self.add(route)

    def add(self, route: Route) -> None:
        """Insert or replace the route for its prefix."""
        self._routes[str(route.prefix)] = route

    def withdraw(self, prefix: Prefix) -> Route | None:
        """Remove and return the route for ``prefix`` if present."""
        return self._routes.pop(str(prefix), None)

    def lookup(self, prefix: Prefix) -> Route | None:
        """Exact-match lookup."""
        return self._routes.get(str(prefix))

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self):
        return iter(self._routes.values())

    def __contains__(self, prefix: Prefix) -> bool:
        return str(prefix) in self._routes

    def prefixes(self) -> list[Prefix]:
        """All prefixes, in insertion order."""
        return [route.prefix for route in self._routes.values()]

    def to_updates(self, max_message_len: int = MAX_MESSAGE_LEN) -> list[UpdateMessage]:
        """Pack the whole table into UPDATE messages.

        Routes sharing a ``PathAttributes`` value ride in the same
        UPDATE until the 4096-byte limit, exactly as a router walks its
        RIB grouped by attribute set during a table transfer.
        """
        groups: dict[PathAttributes, list[Prefix]] = {}
        for route in self._routes.values():
            groups.setdefault(route.attributes, []).append(route.prefix)
        updates: list[UpdateMessage] = []
        for attributes, prefixes in groups.items():
            base_len = HEADER_LEN + 4 + len(attributes.encode())
            current: list[Prefix] = []
            used = base_len
            for prefix in prefixes:
                nlri_len = 1 + (prefix.length + 7) // 8
                if used + nlri_len > max_message_len and current:
                    updates.append(
                        UpdateMessage(tuple(current), attributes)
                    )
                    current = []
                    used = base_len
                current.append(prefix)
                used += nlri_len
            if current:
                updates.append(UpdateMessage(tuple(current), attributes))
        return updates

    def wire_size(self) -> int:
        """Total encoded size of the table transfer in bytes."""
        return sum(len(encode_message(u)) for u in self.to_updates())


# Observed prefix-length mix of the 2010-era global table (approximate).
_PREFIX_LENGTH_WEIGHTS = [
    (24, 0.53),
    (23, 0.07),
    (22, 0.08),
    (21, 0.04),
    (20, 0.05),
    (19, 0.05),
    (18, 0.04),
    (17, 0.02),
    (16, 0.09),
    (15, 0.01),
    (14, 0.01),
    (13, 0.005),
    (12, 0.005),
    (11, 0.002),
    (10, 0.002),
    (9, 0.002),
    (8, 0.004),
]


def generate_table(
    size: int,
    rng: random.Random,
    next_hop: str = "10.0.0.1",
    asn_pool: int = 3000,
    attribute_groups: int | None = None,
    wide_asn_fraction: float = 0.0,
) -> Rib:
    """Create a synthetic routing table of ``size`` unique prefixes.

    ``attribute_groups`` bounds the number of distinct attribute sets;
    by default roughly one per 60 prefixes, which yields the several-
    hundred-byte UPDATE messages real table transfers carry.
    """
    if size < 0:
        raise ValueError(f"negative table size {size}")
    if attribute_groups is None:
        attribute_groups = max(1, size // 60)
    lengths, weights = zip(*_PREFIX_LENGTH_WEIGHTS)
    attribute_sets = [
        _random_attributes(rng, next_hop, asn_pool, wide_asn_fraction)
        for _ in range(attribute_groups)
    ]
    rib = Rib()
    seen: set[str] = set()
    while len(rib) < size:
        length = rng.choices(lengths, weights)[0]
        prefix = _random_prefix(rng, length)
        if str(prefix) in seen:
            continue
        seen.add(str(prefix))
        attributes = rng.choice(attribute_sets)
        rib.add(Route(prefix, attributes))
    return rib


def _random_prefix(rng: random.Random, length: int) -> Prefix:
    address = rng.getrandbits(32)
    mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
    address &= mask
    # Stay inside unicast space.
    first_octet = (address >> 24) & 0xFF
    if first_octet in (0, 10, 127) or first_octet >= 224:
        address = (address & 0x00FFFFFF) | (unicast_octet(rng) << 24)
    octets = [(address >> shift) & 0xFF for shift in (24, 16, 8, 0)]
    return Prefix(".".join(map(str, octets)), length)


def unicast_octet(rng: random.Random) -> int:
    """A first octet drawn from routable unicast space."""
    while True:
        octet = rng.randint(1, 223)
        if octet not in (10, 127):
            return octet


def _random_attributes(
    rng: random.Random,
    next_hop: str,
    asn_pool: int,
    wide_asn_fraction: float = 0.0,
) -> PathAttributes:
    # Skewed ASN popularity: low ASNs (big transits) appear often.
    hops = rng.choices([1, 2, 3, 4, 5, 6], [5, 20, 30, 25, 15, 5])[0]
    path = []
    for _ in range(hops):
        asn = min(int(rng.paretovariate(0.6) * 100), 64000)
        asn = max(1, asn % asn_pool + 1)
        if wide_asn_fraction and rng.random() < wide_asn_fraction:
            # A post-2009 4-byte AS (carried via AS_TRANS + AS4_PATH).
            asn += 4_200_000_000
        path.append(asn)
    return PathAttributes.from_path(
        path,
        next_hop=next_hop,
        med=rng.choice([None, 0, 10, 100]),
    )
