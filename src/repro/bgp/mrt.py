"""MRT (Multi-threaded Routing Toolkit) export format, RFC 6396 subset.

Quagga collectors archive received updates as BGP4MP_MESSAGE records;
``pcap2bgp`` writes the same format when reconstructing messages from a
raw packet trace, so downstream BGP analyses (like MCT) run on either
source identically.

Records carry microsecond timestamps using the BGP4MP_ET extended
variant when sub-second precision is present, and plain BGP4MP
otherwise.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO

from repro.bgp.messages import BgpMessage, decode_message, encode_message
from repro.core.units import US_PER_SECOND
from repro.wire.ip import bytes_to_ip, ip_to_bytes

MRT_TABLE_DUMP_V2 = 13
MRT_BGP4MP = 16
MRT_BGP4MP_ET = 17
BGP4MP_MESSAGE = 1
TDV2_PEER_INDEX_TABLE = 1
TDV2_RIB_IPV4_UNICAST = 2

_COMMON_HEADER = struct.Struct("!IHHI")
_BGP4MP_HEADER = struct.Struct("!HHHH4s4s")


class MrtError(ValueError):
    """Raised on malformed MRT data."""


@dataclass(frozen=True)
class MrtRecord:
    """One archived BGP message with its collection metadata."""

    timestamp_us: int
    peer_as: int
    local_as: int
    peer_ip: str
    local_ip: str
    message: BgpMessage

    def encode(self) -> bytes:
        """Serialize as BGP4MP(_ET) / BGP4MP_MESSAGE."""
        seconds, micros = divmod(self.timestamp_us, US_PER_SECOND)
        bgp_bytes = encode_message(self.message)
        body = _BGP4MP_HEADER.pack(
            self.peer_as,
            self.local_as,
            0,  # interface index
            1,  # AFI IPv4
            ip_to_bytes(self.peer_ip),
            ip_to_bytes(self.local_ip),
        ) + bgp_bytes
        if micros:
            body = struct.pack("!I", micros) + body
            mrt_type = MRT_BGP4MP_ET
        else:
            mrt_type = MRT_BGP4MP
        header = _COMMON_HEADER.pack(seconds, mrt_type, BGP4MP_MESSAGE, len(body))
        return header + body


@dataclass(frozen=True)
class RibSnapshot:
    """A TABLE_DUMP_V2 RIB snapshot: one peer's view of a table."""

    timestamp_us: int
    collector_id: str
    peer_as: int
    peer_ip: str
    entries: tuple  # of (Prefix, PathAttributes)

    def encode(self) -> bytes:
        """Serialize as PEER_INDEX_TABLE + RIB_IPV4_UNICAST records."""
        seconds = self.timestamp_us // US_PER_SECOND
        view_name = b""
        peer_entry = (
            struct.pack("!B", 0)  # IPv4 peer, 2-byte AS
            + ip_to_bytes(self.peer_ip)  # peer BGP ID (reuse the IP)
            + ip_to_bytes(self.peer_ip)
            + struct.pack("!H", self.peer_as)
        )
        index_body = (
            ip_to_bytes(self.collector_id)
            + struct.pack("!H", len(view_name))
            + view_name
            + struct.pack("!H", 1)
            + peer_entry
        )
        out = [
            _COMMON_HEADER.pack(
                seconds, MRT_TABLE_DUMP_V2, TDV2_PEER_INDEX_TABLE,
                len(index_body),
            )
            + index_body
        ]
        for sequence, (prefix, attributes) in enumerate(self.entries):
            attrs = attributes.encode()
            body = (
                struct.pack("!I", sequence)
                + prefix.encode()
                + struct.pack("!H", 1)  # one RIB entry (one peer)
                + struct.pack("!HIH", 0, seconds, len(attrs))
                + attrs
            )
            out.append(
                _COMMON_HEADER.pack(
                    seconds, MRT_TABLE_DUMP_V2, TDV2_RIB_IPV4_UNICAST,
                    len(body),
                )
                + body
            )
        return b"".join(out)


def read_rib_snapshot(source: BinaryIO | str | Path) -> RibSnapshot:
    """Parse a TABLE_DUMP_V2 snapshot written by :class:`RibSnapshot`."""
    from repro.bgp.attributes import PathAttributes
    from repro.bgp.messages import Prefix

    if isinstance(source, (str, Path)):
        with open(source, "rb") as stream:
            return read_rib_snapshot(stream)
    header = source.read(_COMMON_HEADER.size)
    if len(header) < _COMMON_HEADER.size:
        raise MrtError("truncated TABLE_DUMP_V2 header")
    seconds, mrt_type, subtype, length = _COMMON_HEADER.unpack(header)
    if mrt_type != MRT_TABLE_DUMP_V2 or subtype != TDV2_PEER_INDEX_TABLE:
        raise MrtError("snapshot must start with PEER_INDEX_TABLE")
    body = source.read(length)
    collector_id = bytes_to_ip(body[:4])
    (view_len,) = struct.unpack_from("!H", body, 4)
    offset = 6 + view_len
    (peer_count,) = struct.unpack_from("!H", body, offset)
    if peer_count != 1:
        raise MrtError(f"expected a single peer, found {peer_count}")
    offset += 2
    peer_type = body[offset]
    if peer_type & 0x03:
        raise MrtError("only IPv4 peers with 2-byte AS are supported")
    peer_ip = bytes_to_ip(body[offset + 5 : offset + 9])
    (peer_as,) = struct.unpack_from("!H", body, offset + 9)

    entries = []
    while True:
        header = source.read(_COMMON_HEADER.size)
        if not header:
            break
        if len(header) < _COMMON_HEADER.size:
            raise MrtError("truncated RIB record header")
        seconds, mrt_type, subtype, length = _COMMON_HEADER.unpack(header)
        body = source.read(length)
        if len(body) < length:
            raise MrtError("truncated RIB record body")
        if mrt_type != MRT_TABLE_DUMP_V2 or subtype != TDV2_RIB_IPV4_UNICAST:
            continue
        prefix_len = body[4]
        nbytes = (prefix_len + 7) // 8
        raw = body[5 : 5 + nbytes] + b"\x00" * (4 - nbytes)
        prefix = Prefix(bytes_to_ip(raw), prefix_len)
        offset = 5 + nbytes + 2  # skip entry count (always 1)
        (_peer_index, _originated, attr_len) = struct.unpack_from(
            "!HIH", body, offset
        )
        offset += 8
        attributes = PathAttributes.decode(body[offset : offset + attr_len])
        entries.append((prefix, attributes))
    return RibSnapshot(
        timestamp_us=seconds * US_PER_SECOND,
        collector_id=collector_id,
        peer_as=peer_as,
        peer_ip=peer_ip,
        entries=tuple(entries),
    )


def write_mrt(target: BinaryIO | str | Path, records: Iterable[MrtRecord]) -> None:
    """Write records to an MRT file."""
    if isinstance(target, (str, Path)):
        with open(target, "wb") as stream:
            for record in records:
                stream.write(record.encode())
        return
    for record in records:
        target.write(record.encode())


def read_mrt(source: BinaryIO | str | Path) -> Iterator[MrtRecord]:
    """Iterate records out of an MRT file."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as stream:
            yield from _read_stream(stream)
        return
    yield from _read_stream(source)


def _read_stream(stream: BinaryIO) -> Iterator[MrtRecord]:
    while True:
        header = stream.read(_COMMON_HEADER.size)
        if not header:
            return
        if len(header) < _COMMON_HEADER.size:
            raise MrtError("truncated MRT common header")
        seconds, mrt_type, subtype, length = _COMMON_HEADER.unpack(header)
        body = stream.read(length)
        if len(body) < length:
            raise MrtError("truncated MRT record body")
        micros = 0
        if mrt_type == MRT_BGP4MP_ET:
            if length < 4:
                raise MrtError("BGP4MP_ET record too short")
            (micros,) = struct.unpack_from("!I", body)
            body = body[4:]
        elif mrt_type != MRT_BGP4MP:
            continue  # skip unknown record types, like bgpdump does
        if subtype != BGP4MP_MESSAGE:
            continue
        if len(body) < _BGP4MP_HEADER.size:
            raise MrtError("BGP4MP body too short")
        peer_as, local_as, _ifindex, afi, peer_ip, local_ip = (
            _BGP4MP_HEADER.unpack_from(body)
        )
        if afi != 1:
            continue  # IPv4 only
        message = decode_message(body[_BGP4MP_HEADER.size :])
        yield MrtRecord(
            timestamp_us=seconds * US_PER_SECOND + micros,
            peer_as=peer_as,
            local_as=local_as,
            peer_ip=bytes_to_ip(peer_ip),
            local_ip=bytes_to_ip(local_ip),
            message=message,
        )
