"""BGP-4 message encoding/decoding (RFC 4271 section 4).

Implements OPEN, UPDATE, KEEPALIVE and NOTIFICATION with the standard
19-byte header (16-byte all-ones marker, length, type), plus an
incremental :class:`MessageDecoder` that extracts messages out of a
reassembled TCP byte stream — the building block of both the collector
and the ``pcap2bgp`` side tool.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.bgp.attributes import PathAttributes
from repro.wire.ip import bytes_to_ip, ip_to_bytes

MARKER = b"\xff" * 16
HEADER_LEN = 19
MAX_MESSAGE_LEN = 4096

TYPE_OPEN = 1
TYPE_UPDATE = 2
TYPE_NOTIFICATION = 3
TYPE_KEEPALIVE = 4

TYPE_NAMES = {
    TYPE_OPEN: "OPEN",
    TYPE_UPDATE: "UPDATE",
    TYPE_NOTIFICATION: "NOTIFICATION",
    TYPE_KEEPALIVE: "KEEPALIVE",
}

# NOTIFICATION error codes (subset).
ERR_OPEN_MESSAGE = 2
ERR_HOLD_TIMER_EXPIRED = 4
ERR_CEASE = 6

# OPEN message error subcodes (RFC 4271 section 6.2).
OPEN_ERR_UNSUPPORTED_VERSION = 1
OPEN_ERR_BAD_PEER_AS = 2
OPEN_ERR_BAD_BGP_ID = 3
OPEN_ERR_UNACCEPTABLE_HOLD_TIME = 6

# OPEN optional parameter and capability codes (RFC 5492 / 6793).
PARAM_CAPABILITIES = 2
CAP_MULTIPROTOCOL = 1
CAP_ROUTE_REFRESH = 2
CAP_AS4 = 65

# RFC 6793: 2-byte stand-in AS for speakers with a 4-byte AS number.
AS_TRANS = 23456


class BgpError(ValueError):
    """Raised on malformed BGP messages."""


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix in CIDR form."""

    network: str
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise BgpError(f"bad prefix length {self.length}")

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"10.0.0.0/8"`` notation."""
        network, _, length = text.partition("/")
        return cls(network, int(length))

    def encode(self) -> bytes:
        """NLRI wire form: length byte + minimal network bytes."""
        nbytes = (self.length + 7) // 8
        return bytes([self.length]) + ip_to_bytes(self.network)[:nbytes]


def decode_prefixes(data: bytes) -> list[Prefix]:
    """Parse a run of NLRI-encoded prefixes."""
    prefixes = []
    i = 0
    while i < len(data):
        length = data[i]
        if length > 32:
            raise BgpError(f"bad prefix length {length}")
        nbytes = (length + 7) // 8
        if i + 1 + nbytes > len(data):
            raise BgpError("truncated prefix")
        raw = data[i + 1 : i + 1 + nbytes] + b"\x00" * (4 - nbytes)
        prefixes.append(Prefix(bytes_to_ip(raw), length))
        i += 1 + nbytes
    return prefixes


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpenMessage:
    """BGP OPEN: version, AS, hold time, router ID, capabilities.

    ``my_as`` is the speaker's *true* AS number; values above 65535 are
    carried per RFC 6793 (AS_TRANS in the fixed field plus the AS4
    capability).  ``capabilities`` holds further ``(code, value)``
    pairs (RFC 5492); the AS4 capability is managed automatically.
    """

    my_as: int
    hold_time_s: int
    bgp_id: str
    version: int = 4
    capabilities: tuple[tuple[int, bytes], ...] = ()

    type_code = TYPE_OPEN

    def body(self) -> bytes:
        caps = list(self.capabilities)
        wire_as = self.my_as
        if self.my_as > 0xFFFF:
            wire_as = AS_TRANS
            caps = [c for c in caps if c[0] != CAP_AS4]
            caps.append((CAP_AS4, struct.pack("!I", self.my_as)))
        params = b""
        for code, value in caps:
            capability = struct.pack("!BB", code, len(value)) + value
            params += struct.pack(
                "!BB", PARAM_CAPABILITIES, len(capability)
            ) + capability
        return struct.pack(
            "!BHH4sB",
            self.version,
            wire_as,
            self.hold_time_s,
            ip_to_bytes(self.bgp_id),
            len(params),
        ) + params

    @classmethod
    def from_body(cls, body: bytes) -> "OpenMessage":
        if len(body) < 10:
            raise BgpError("OPEN too short")
        version, my_as, hold_time, bgp_id, opt_len = struct.unpack_from(
            "!BHH4sB", body
        )
        if 10 + opt_len > len(body):
            raise BgpError("OPEN optional parameters truncated")
        capabilities = []
        i = 10
        end = 10 + opt_len
        while i < end:
            if i + 2 > end:
                raise BgpError("truncated OPEN optional parameter")
            param_type, param_len = body[i], body[i + 1]
            i += 2
            if i + param_len > end:
                raise BgpError("OPEN optional parameter overruns")
            if param_type == PARAM_CAPABILITIES:
                j = i
                while j < i + param_len:
                    if j + 2 > i + param_len:
                        raise BgpError("truncated capability")
                    code, cap_len = body[j], body[j + 1]
                    j += 2
                    if j + cap_len > i + param_len:
                        raise BgpError("capability overruns")
                    capabilities.append((code, body[j : j + cap_len]))
                    j += cap_len
            i += param_len
        true_as = my_as
        kept = []
        for code, value in capabilities:
            if code == CAP_AS4 and len(value) == 4:
                (true_as,) = struct.unpack("!I", value)
            else:
                kept.append((code, value))
        return cls(my_as=true_as, hold_time_s=hold_time,
                   bgp_id=bytes_to_ip(bgp_id), version=version,
                   capabilities=tuple(kept))

    def supports(self, code: int) -> bool:
        """True if the OPEN advertised the given capability code."""
        return any(c == code for c, _ in self.capabilities)


@dataclass(frozen=True)
class UpdateMessage:
    """BGP UPDATE: withdrawals plus one attribute set with its NLRI."""

    announced: tuple[Prefix, ...] = ()
    attributes: PathAttributes | None = None
    withdrawn: tuple[Prefix, ...] = ()

    type_code = TYPE_UPDATE

    def body(self) -> bytes:
        withdrawn = b"".join(p.encode() for p in self.withdrawn)
        attrs = self.attributes.encode() if self.attributes is not None else b""
        nlri = b"".join(p.encode() for p in self.announced)
        return (
            struct.pack("!H", len(withdrawn))
            + withdrawn
            + struct.pack("!H", len(attrs))
            + attrs
            + nlri
        )

    @classmethod
    def from_body(cls, body: bytes) -> "UpdateMessage":
        if len(body) < 4:
            raise BgpError("UPDATE too short")
        (withdrawn_len,) = struct.unpack_from("!H", body, 0)
        i = 2 + withdrawn_len
        if i + 2 > len(body):
            raise BgpError("UPDATE truncated after withdrawals")
        withdrawn = decode_prefixes(body[2:i])
        (attr_len,) = struct.unpack_from("!H", body, i)
        i += 2
        if i + attr_len > len(body):
            raise BgpError("UPDATE truncated in attributes")
        attrs_raw = body[i : i + attr_len]
        attributes = PathAttributes.decode(attrs_raw) if attrs_raw else None
        announced = decode_prefixes(body[i + attr_len :])
        return cls(
            announced=tuple(announced),
            attributes=attributes,
            withdrawn=tuple(withdrawn),
        )


@dataclass(frozen=True)
class KeepaliveMessage:
    """BGP KEEPALIVE: header only."""

    type_code = TYPE_KEEPALIVE

    def body(self) -> bytes:
        return b""

    @classmethod
    def from_body(cls, body: bytes) -> "KeepaliveMessage":
        if body:
            raise BgpError("KEEPALIVE must have an empty body")
        return cls()


@dataclass(frozen=True)
class NotificationMessage:
    """BGP NOTIFICATION: error code/subcode and diagnostic data."""

    error_code: int
    error_subcode: int = 0
    data: bytes = b""

    type_code = TYPE_NOTIFICATION

    def body(self) -> bytes:
        return bytes([self.error_code, self.error_subcode]) + self.data

    @classmethod
    def from_body(cls, body: bytes) -> "NotificationMessage":
        if len(body) < 2:
            raise BgpError("NOTIFICATION too short")
        return cls(error_code=body[0], error_subcode=body[1], data=body[2:])


BgpMessage = OpenMessage | UpdateMessage | KeepaliveMessage | NotificationMessage

_BODY_PARSERS = {
    TYPE_OPEN: OpenMessage.from_body,
    TYPE_UPDATE: UpdateMessage.from_body,
    TYPE_KEEPALIVE: KeepaliveMessage.from_body,
    TYPE_NOTIFICATION: NotificationMessage.from_body,
}


def encode_message(message: BgpMessage) -> bytes:
    """Wrap a message body in the 19-byte BGP header."""
    body = message.body()
    length = HEADER_LEN + len(body)
    if length > MAX_MESSAGE_LEN:
        raise BgpError(f"message of {length} bytes exceeds 4096")
    return MARKER + struct.pack("!HB", length, message.type_code) + body


def decode_message(data: bytes) -> BgpMessage:
    """Parse exactly one complete BGP message."""
    message, consumed = _decode_one(data)
    if consumed != len(data):
        raise BgpError(f"{len(data) - consumed} trailing bytes")
    return message


def _decode_one(data: bytes) -> tuple[BgpMessage, int]:
    if len(data) < HEADER_LEN:
        raise BgpError("truncated header")
    if data[:16] != MARKER:
        raise BgpError("bad marker")
    length, type_code = struct.unpack_from("!HB", data, 16)
    if not HEADER_LEN <= length <= MAX_MESSAGE_LEN:
        raise BgpError(f"bad message length {length}")
    if len(data) < length:
        raise BgpError("truncated body")
    parser = _BODY_PARSERS.get(type_code)
    if parser is None:
        raise BgpError(f"unknown message type {type_code}")
    return parser(data[HEADER_LEN:length]), length


class MessageDecoder:
    """Incremental decoder over a reassembled TCP byte stream.

    Feed bytes as they arrive; complete messages pop out.  Used by the
    BGP speaker's receive path and by ``pcap2bgp``.

    With ``resync=True`` the decoder never raises: after a malformed
    message it scans forward for the next 16-byte all-ones marker and
    resumes there, containing the blast radius to one message instead
    of the whole session (the spirit of RFC 7606).  Every skip is
    counted in ``resync_count`` / ``bytes_skipped`` and reported to the
    optional ``on_issue(kind, bytes_lost, detail)`` callback.
    """

    def __init__(self, resync: bool = False, on_issue=None) -> None:
        self._buffer = bytearray()
        self.messages_decoded = 0
        self.resync = resync
        self.on_issue = on_issue
        self.resync_count = 0
        self.bytes_skipped = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a complete message."""
        return len(self._buffer)

    def _skip(self, count: int, kind: str, detail: str) -> None:
        """Discard ``count`` buffered bytes, accounting for them."""
        del self._buffer[:count]
        self.resync_count += 1
        self.bytes_skipped += count
        if self.on_issue is not None:
            self.on_issue(kind, count, detail)

    def _scan_distance(self) -> int | None:
        """Bytes to discard so the buffer starts at the next marker.

        Returns None when no marker is in reach yet (all but a partial
        marker's worth of the buffer can be dropped; the tail might be
        a marker prefix completed by the next feed).
        """
        position = bytes(self._buffer).find(MARKER, 1)
        return position if position >= 0 else None

    def feed(self, data: bytes) -> list[BgpMessage]:
        """Append stream bytes and return all newly completed messages."""
        self._buffer.extend(data)
        messages: list[BgpMessage] = []
        while True:
            if len(self._buffer) < HEADER_LEN:
                break
            if bytes(self._buffer[:16]) != MARKER:
                if not self.resync:
                    raise BgpError("stream desynchronized: bad marker")
                distance = self._scan_distance()
                if distance is None:
                    # Keep a marker-length tail: it may be a prefix of a
                    # marker whose remainder is still in flight.
                    keep = len(MARKER) - 1
                    if len(self._buffer) > keep:
                        self._skip(
                            len(self._buffer) - keep,
                            "bad-marker", "no marker in buffered stream",
                        )
                    break
                self._skip(distance, "bad-marker",
                           f"marker found {distance} bytes ahead")
                continue
            (length,) = struct.unpack_from("!H", self._buffer, 16)
            if not HEADER_LEN <= length <= MAX_MESSAGE_LEN:
                if not self.resync:
                    raise BgpError(f"bad message length {length}")
                self._skip(1, "bad-length", f"message length {length}")
                continue
            if len(self._buffer) < length:
                break
            try:
                message, _ = _decode_one(bytes(self._buffer[:length]))
            except ValueError as exc:
                if not self.resync:
                    raise
                # The framing was sound but the body was not: drop
                # exactly this message and continue with the next.
                self._skip(length, "malformed-message", str(exc))
                continue
            del self._buffer[:length]
            messages.append(message)
            self.messages_decoded += 1
        return messages
