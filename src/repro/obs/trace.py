"""Span tracing with explicit clocks, exported for Perfetto.

A span is a named interval — an episode, a simulation run, one
analysis stage.  Two clock domains coexist:

* **wall** spans are timed with ``time.monotonic()`` relative to the
  tracer's origin (never ``time.time()``: traces must not depend on
  the host calendar, and monotonic time cannot step backwards);
* **sim** spans carry simulation-time intervals verbatim (the
  simulator's integer microseconds), so they are deterministic: the
  same seed produces the same sim spans regardless of host or worker
  count.

Nesting is positional, the way Chrome's ``trace_event`` format defines
it: spans on the same (pid, tid) track nest by containment of their
``[ts, ts+dur]`` intervals.  Worker-local tracers start their origin
at task start, so when the campaign driver merges them — one tid per
episode — every episode's track begins near zero with its
``episode → simulate → analyze`` hierarchy intact.

Exports: :meth:`Tracer.write_jsonl` (one span object per line, this
module's schema) and :meth:`Tracer.write_chrome` (the Chrome
``trace_event`` JSON object form, loadable at https://ui.perfetto.dev).
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterable
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

CLOCK_WALL = "wall"
CLOCK_SIM = "sim"

#: Chrome trace_event pid assignments: one process row per clock
#: domain, so wall-clock tracks and sim-time tracks never share a
#: timeline in Perfetto.
PID_WALL = 1
PID_SIM = 2


@dataclass(frozen=True)
class SpanRecord:
    """One completed span; picklable across worker boundaries."""

    name: str
    cat: str
    clock: str  # CLOCK_WALL | CLOCK_SIM
    start_us: int
    dur_us: int
    tid: int = 0
    args: dict | None = None

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "cat": self.cat,
            "clock": self.clock,
            "start_us": self.start_us,
            "dur_us": self.dur_us,
            "tid": self.tid,
        }
        if self.args:
            out["args"] = self.args
        return out


class Tracer:
    """Collects :class:`SpanRecord` items from one execution context."""

    enabled = True

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self._origin = time.monotonic()

    def now_us(self) -> int:
        """Wall microseconds since this tracer's origin."""
        return int((time.monotonic() - self._origin) * 1_000_000)

    @contextmanager
    def span(self, name: str, cat: str = "pipeline", args: dict | None = None):
        """Record a wall-clock span around the ``with`` body.

        The span is recorded even when the body raises — a crashed
        stage still shows up in the trace, which is rather the point.
        """
        start = self.now_us()
        try:
            yield
        finally:
            self.spans.append(
                SpanRecord(
                    name=name,
                    cat=cat,
                    clock=CLOCK_WALL,
                    start_us=start,
                    dur_us=self.now_us() - start,
                    args=args,
                )
            )

    def add_span(
        self,
        name: str,
        start_us: int,
        dur_us: int,
        clock: str = CLOCK_SIM,
        cat: str = "sim",
        tid: int = 0,
        args: dict | None = None,
    ) -> None:
        """Record a span with explicit clock values (sim-time spans)."""
        self.spans.append(
            SpanRecord(
                name=name,
                cat=cat,
                clock=clock,
                start_us=start_us,
                dur_us=dur_us,
                tid=tid,
                args=args,
            )
        )

    def merge(self, spans: Iterable[SpanRecord], tid: int | None = None) -> None:
        """Adopt spans collected elsewhere (a worker's episode tracer).

        ``tid`` reassigns every adopted span to one track, which is how
        the campaign driver gives each episode its own Perfetto row.
        """
        for span in spans:
            if tid is not None and span.tid != tid:
                span = SpanRecord(
                    name=span.name,
                    cat=span.cat,
                    clock=span.clock,
                    start_us=span.start_us,
                    dur_us=span.dur_us,
                    tid=tid,
                    args=span.args,
                )
            self.spans.append(span)

    # ------------------------------------------------------------------ #
    # Exports                                                            #
    # ------------------------------------------------------------------ #
    def chrome_events(self) -> list[dict]:
        """Chrome ``trace_event`` complete events (``ph: "X"``)."""
        events = []
        for span in self.spans:
            pid = PID_SIM if span.clock == CLOCK_SIM else PID_WALL
            event = {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start_us,
                "dur": span.dur_us,
                "pid": pid,
                "tid": span.tid,
            }
            args = dict(span.args) if span.args else {}
            args["clock"] = span.clock
            event["args"] = args
            events.append(event)
        return events

    def to_chrome(self) -> dict:
        """The Chrome trace JSON object form, with named process rows."""
        metadata = [
            {
                "name": "process_name", "ph": "M", "pid": PID_WALL, "tid": 0,
                "args": {"name": "pipeline (wall clock)"},
            },
            {
                "name": "process_name", "ph": "M", "pid": PID_SIM, "tid": 0,
                "args": {"name": "simulation (sim time)"},
            },
        ]
        return {
            "traceEvents": metadata + self.chrome_events(),
            "displayTimeUnit": "ms",
        }

    def write_chrome(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_chrome()) + "\n")

    def write_jsonl(self, path: str | Path) -> None:
        with open(path, "w") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_dict()) + "\n")


@contextmanager
def _null_span():
    yield


class NullTracer:
    """The disabled tracer: every call is a no-op."""

    enabled = False
    spans: list[SpanRecord] = []

    def now_us(self) -> int:
        return 0

    def span(self, name: str, cat: str = "pipeline", args: dict | None = None):
        return _null_span()

    def add_span(self, *args, **kwargs) -> None:
        pass

    def merge(self, spans, tid=None) -> None:
        pass

    def chrome_events(self) -> list[dict]:
        return []

    def to_chrome(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def write_chrome(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_chrome()) + "\n")

    def write_jsonl(self, path) -> None:
        Path(path).write_text("")


NULL_TRACER = NullTracer()
