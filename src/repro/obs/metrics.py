"""Metrics: counters, gauges and fixed-bucket histograms.

The paper's T-DAT attributes every second of a slow transfer to a
cause; this registry is the same discipline applied to the pipeline
itself — every event processed, byte ingested, task queued and journal
fsync is countable, so a slow campaign can be diagnosed from its
metrics instead of post-mortem guesswork.

Three design constraints shape the API:

* **cheap when disabled** — instrumented code obtains its registry
  through :func:`repro.obs.runtime.get_obs`; with observability off
  that returns the module-level :data:`NULL_REGISTRY`, whose
  instruments are shared no-op singletons.  The disabled cost of an
  instrumentation point is one attribute lookup and an empty method
  call, and hot loops (the simulator's event loop) aggregate locally
  and flush once per run, so even that cost is paid per *run*, not per
  event;
* **picklable** — instruments are plain ``__slots__`` objects and the
  registry a plain object of dicts, so a per-worker registry crosses a
  :class:`~repro.exec.pool.WorkPool` process boundary unchanged;
* **mergeable, deterministically** — counters add, histograms add
  bucket-wise, gauges keep their peak (an order-independent fold), so
  folding per-worker registries in task order yields the same snapshot
  regardless of how many workers ran or in what order they finished.

Every instrument carries a ``wall`` flag: wall-domain metrics (task
timings, heartbeat gaps — anything measured against the host clock or
the execution substrate) are excluded from
:meth:`MetricsRegistry.to_dict(deterministic_only=True) <MetricsRegistry.to_dict>`,
the view that must be byte-identical between serial and parallel runs.
"""

from __future__ import annotations

#: default bucket upper bounds for wall-clock duration histograms, in
#: seconds: microsecond ingest ops up to multi-minute campaign stages.
SECONDS_BUCKETS = (
    0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
    60.0, 300.0,
)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "wall", "value")

    def __init__(self, name: str, wall: bool = False) -> None:
        self.name = name
        self.wall = wall
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value
        self.wall = self.wall or other.wall


class Gauge:
    """A point-in-time value; the peak is the order-independent view.

    ``value`` is the most recently set sample (meaningful only when
    sets happen in a deterministic order, as the campaign fold does);
    ``peak`` is the maximum ever set, which merges commutatively.
    """

    __slots__ = ("name", "wall", "value", "peak", "samples")

    def __init__(self, name: str, wall: bool = False) -> None:
        self.name = name
        self.wall = wall
        self.value = 0
        self.peak = 0
        self.samples = 0

    def set(self, value: int | float) -> None:
        self.value = value
        if self.samples == 0 or value > self.peak:
            self.peak = value
        self.samples += 1

    def merge(self, other: "Gauge") -> None:
        if other.samples:
            self.value = other.value
            if self.samples == 0 or other.peak > self.peak:
                self.peak = other.peak
            self.samples += other.samples
        self.wall = self.wall or other.wall


class Histogram:
    """Fixed upper-bound buckets plus count/total/min/max.

    ``bounds`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.  Fixed buckets are what
    makes two independently collected histograms mergeable without
    rebinning.
    """

    __slots__ = ("name", "wall", "bounds", "counts", "count", "total",
                 "vmin", "vmax")

    def __init__(
        self,
        name: str,
        bounds: tuple[float, ...] = SECONDS_BUCKETS,
        wall: bool = False,
    ) -> None:
        self.name = name
        self.wall = wall
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = 0.0
        self.vmax = 0.0

    def observe(self, value: int | float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        if self.count == 0:
            self.vmin = self.vmax = value
        else:
            self.vmin = min(self.vmin, value)
            self.vmax = max(self.vmax, value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError(
                f"histogram {self.name}: bucket bounds differ "
                f"({self.bounds} vs {other.bounds}); cannot merge"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        if other.count:
            if self.count == 0:
                self.vmin, self.vmax = other.vmin, other.vmax
            else:
                self.vmin = min(self.vmin, other.vmin)
                self.vmax = max(self.vmax, other.vmax)
        self.count += other.count
        self.total += other.total
        self.wall = self.wall or other.wall


class MetricsRegistry:
    """A namespace of instruments, get-or-create by name.

    One registry per observability context: the campaign parent has
    one, every worker task builds its own, and per-worker registries
    fold back with :meth:`merge` in deterministic task order.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str, wall: bool = False) -> Counter:
        return self._get(name, COUNTER, lambda: Counter(name, wall=wall))

    def gauge(self, name: str, wall: bool = False) -> Gauge:
        return self._get(name, GAUGE, lambda: Gauge(name, wall=wall))

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = SECONDS_BUCKETS,
        wall: bool = False,
    ) -> Histogram:
        return self._get(
            name, HISTOGRAM, lambda: Histogram(name, bounds=bounds, wall=wall)
        )

    def _get(self, name: str, kind: str, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif _kind_of(instrument) != kind:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{_kind_of(instrument)}, not {kind}"
            )
        return instrument

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def get(self, name: str):
        return self._instruments.get(name)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (commutative per metric,
        except gauge ``value`` which follows merge order — fold in task
        order to keep snapshots deterministic)."""
        for name in sorted(other._instruments):
            theirs = other._instruments[name]
            mine = self._instruments.get(name)
            if mine is None:
                self._instruments[name] = _copy_instrument(theirs)
            else:
                mine.merge(theirs)

    def to_dict(self, deterministic_only: bool = False) -> dict:
        """JSON-friendly snapshot, names sorted.

        ``deterministic_only=True`` drops wall-domain instruments —
        the view that is byte-identical between ``workers=1`` and
        ``workers=N`` runs of the same workload.
        """
        out: dict[str, dict] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if deterministic_only and instrument.wall:
                continue
            out[name] = _instrument_to_dict(instrument)
        return out


def _kind_of(instrument) -> str:
    if isinstance(instrument, Counter):
        return COUNTER
    if isinstance(instrument, Gauge):
        return GAUGE
    return HISTOGRAM


def _copy_instrument(instrument):
    if isinstance(instrument, Counter):
        fresh = Counter(instrument.name, wall=instrument.wall)
    elif isinstance(instrument, Gauge):
        fresh = Gauge(instrument.name, wall=instrument.wall)
    else:
        fresh = Histogram(
            instrument.name, bounds=instrument.bounds, wall=instrument.wall
        )
    fresh.merge(instrument)
    return fresh


def _instrument_to_dict(instrument) -> dict:
    if isinstance(instrument, Counter):
        return {
            "type": COUNTER,
            "wall": instrument.wall,
            "value": instrument.value,
        }
    if isinstance(instrument, Gauge):
        return {
            "type": GAUGE,
            "wall": instrument.wall,
            "value": instrument.value,
            "peak": instrument.peak,
            "samples": instrument.samples,
        }
    return {
        "type": HISTOGRAM,
        "wall": instrument.wall,
        "bounds": list(instrument.bounds),
        "counts": list(instrument.counts),
        "count": instrument.count,
        "total": instrument.total,
        "min": instrument.vmin,
        "max": instrument.vmax,
        "mean": instrument.mean,
    }


# ---------------------------------------------------------------------- #
# The disabled fast path: shared no-op singletons.                        #
# ---------------------------------------------------------------------- #
class _NullCounter:
    __slots__ = ()
    name = ""
    wall = False
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = ""
    wall = False
    value = 0
    peak = 0
    samples = 0

    def set(self, value: int | float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = ""
    wall = False
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: int | float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """The no-op registry every instrumentation point dispatches
    through when observability is disabled.

    All lookups return shared stateless singletons; nothing is
    allocated, recorded, or retained.  This is the "disabled costs
    ~nothing" contract in one class.
    """

    enabled = False

    def counter(self, name: str, wall: bool = False) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, wall: bool = False) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, bounds=SECONDS_BUCKETS, wall=False):
        return _NULL_HISTOGRAM

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def names(self) -> list[str]:
        return []

    def get(self, name: str):
        return None

    def merge(self, other) -> None:
        pass

    def to_dict(self, deterministic_only: bool = False) -> dict:
        return {}


NULL_REGISTRY = NullRegistry()
