"""The ambient observability context: one module-level dispatch point.

Instrumentation points all read the same module-level slot::

    from repro.obs import get_obs

    obs = get_obs()            # once per operation, never per event
    obs.metrics.counter("sim.events").inc(executed)

With observability disabled (the default) the slot holds
:data:`DISABLED`, whose registry and tracer are the no-op singletons —
the "disabled costs ~nothing" fast path.  :func:`use_obs` installs a
live :class:`Observability` for the duration of a ``with`` block; the
:class:`~repro.api.Pipeline` facade and the worker-side campaign task
are the two places that do so.

Worker processes never inherit a live context: the pool's worker
bootstrap calls :func:`reset_worker_obs`, and the campaign task then
builds its own task-local :class:`Observability` whose
:class:`ObsExport` rides home in the task result for the parent to
fold in deterministic task order.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, SpanRecord, Tracer


@dataclass(frozen=True)
class ObsExport:
    """The picklable harvest of one worker task's observability."""

    metrics: MetricsRegistry
    spans: list[SpanRecord] = field(default_factory=list)


@dataclass
class Observability:
    """A metrics registry plus a tracer, enabled or not."""

    metrics: MetricsRegistry | NullRegistry
    tracer: Tracer | NullTracer
    enabled: bool = True

    @classmethod
    def create(cls) -> "Observability":
        """A live context with a fresh registry and tracer."""
        return cls(metrics=MetricsRegistry(), tracer=Tracer(), enabled=True)

    def export(self) -> ObsExport:
        """Snapshot this context for the trip back to the parent."""
        return ObsExport(metrics=self.metrics, spans=list(self.tracer.spans))

    def absorb(self, export: ObsExport, tid: int | None = None) -> None:
        """Fold a worker export into this context.

        Call in deterministic task order: counter and histogram merges
        commute, but gauge ``value`` and span append order follow the
        fold order.  ``tid`` gives the adopted spans their own track.
        """
        self.metrics.merge(export.metrics)
        self.tracer.merge(export.spans, tid=tid)


#: the no-op context: shared, immutable in effect, never records.
DISABLED = Observability(metrics=NULL_REGISTRY, tracer=NULL_TRACER, enabled=False)

_ACTIVE: Observability = DISABLED


def get_obs() -> Observability:
    """The ambient observability context (``DISABLED`` by default)."""
    return _ACTIVE


def set_obs(obs: Observability | None) -> Observability:
    """Install ``obs`` (or ``DISABLED`` for None); returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = obs if obs is not None else DISABLED
    return previous


@contextmanager
def use_obs(obs: Observability | None):
    """Install an observability context for the ``with`` body.

    ``use_obs(None)`` is a no-op (the ambient context stays), so
    callers can thread an optional context without branching.
    """
    if obs is None:
        with nullcontext():
            yield get_obs()
        return
    previous = set_obs(obs)
    try:
        yield obs
    finally:
        set_obs(previous)


def reset_worker_obs() -> None:
    """Drop any context inherited across a process fork.

    A forked worker starts with the parent's ``_ACTIVE`` slot; its
    recordings would die with the worker and cost time meanwhile.  The
    pool's worker bootstrap calls this so worker code runs on the
    no-op path until the task installs its own task-local context.
    """
    set_obs(DISABLED)
