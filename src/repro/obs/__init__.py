"""``repro.obs`` — observability for the whole pipeline.

Zero-dependency metrics, span tracing and profiling hooks: the
measurement substrate every layer of the reproduction reports into —
simulator event counts, work-pool queueing, pcap ingest volumes,
per-stage analysis timings, campaign episode lifecycles.

Quick start::

    from repro.api import Pipeline
    from repro.obs import Observability

    obs = Observability.create()
    result = Pipeline(workers=4, obs=obs).campaign("RV", transfers=8)
    print(result.metrics.to_dict())          # merged campaign metrics
    obs.tracer.write_chrome("trace.json")    # open in ui.perfetto.dev

Or from the command line::

    tdat campaign RV --trace-out trace.json --metrics-out metrics.json
    tdat stats metrics.json

See ``docs/observability.md`` for the metric catalog, the span
hierarchy, and the "disabled costs ~nothing" contract.
"""

from repro.obs.metrics import (
    NULL_REGISTRY,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.runtime import (
    DISABLED,
    Observability,
    ObsExport,
    get_obs,
    reset_worker_obs,
    set_obs,
    use_obs,
)
from repro.obs.trace import (
    CLOCK_SIM,
    CLOCK_WALL,
    NULL_TRACER,
    PID_SIM,
    PID_WALL,
    NullTracer,
    SpanRecord,
    Tracer,
)

__all__ = [
    "CLOCK_SIM",
    "CLOCK_WALL",
    "Counter",
    "DISABLED",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "ObsExport",
    "Observability",
    "PID_SIM",
    "PID_WALL",
    "SECONDS_BUCKETS",
    "SpanRecord",
    "Tracer",
    "get_obs",
    "reset_worker_obs",
    "set_obs",
    "use_obs",
]
