"""Long-running analysis sessions: push-fed, budget-bounded, snapshot-read.

The streaming analyzer (:func:`~repro.analysis.tdat.iter_analyze_pcap`)
is a *pull* pipeline: it reads bytes from a file-like source and yields
one :class:`~repro.analysis.tdat.ConnectionAnalysis` as each flow
closes.  An HTTP service is the opposite shape — clients *push* pcap
bytes in whatever chunks the network hands them, and readers ask for
the current report at arbitrary moments.  This module bridges the two:

* :class:`ChunkFeeder` is the byte pipe.  The HTTP layer appends
  uploaded chunks; a per-session analysis thread blocks in
  ``read(n)`` exactly like a file, with bounded buffering so a client
  that uploads faster than analysis drains gets backpressure instead
  of unbounded growth.
* :class:`AnalysisSession` owns one analysis run: the feeder, the
  daemon thread driving ``iter_analyze_pcap`` over it, the shared
  :class:`~repro.core.health.TraceHealth`, the optional
  :class:`~repro.analysis.budget.StateLedger`, and the
  :class:`~repro.analysis.render.ReportRenderer` that turns the
  accumulated state into ETag-tagged snapshots.  One RLock makes every
  reader-visible mutation atomic, so a snapshot taken mid-upload is
  internally consistent — the health ledger it renders matches the
  connections it renders.
* :class:`SessionManager` is the server's registry: deterministic ids,
  a session cap, and the drain discipline graceful shutdown needs
  (EOF every feeder, join every thread, keep the final snapshots
  readable).

Nothing here imports asyncio: sessions are plain threads + locks, and
the HTTP layer (:mod:`repro.serve.http`) hops the blocking calls onto
executor threads.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Iterable

from repro.analysis.budget import ResourceBudget, StateLedger
from repro.analysis.render import ReportRenderer
from repro.analysis.series import SNIFFER_AT_RECEIVER
from repro.analysis.tdat import iter_analyze_pcap
from repro.core.health import TraceHealth
from repro.obs import get_obs


class ServeError(Exception):
    """An operational service error with an HTTP status to report."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class SessionAborted(Exception):
    """Raised inside the analysis thread when a session is torn down."""


class ChunkFeeder:
    """A blocking byte pipe with file ``read(n)`` semantics.

    Producers call :meth:`feed` (blocking once ``max_buffered`` bytes
    are queued — backpressure, not growth), :meth:`close` at end of
    stream, or :meth:`abort` to tear the session down.  The consumer —
    the pcap reader inside the analysis thread — calls :meth:`read`,
    which blocks until it can return exactly ``n`` bytes, or fewer
    only at EOF.  That exact-read contract is what the streaming
    :class:`~repro.wire.pcap.PcapReader` relies on to distinguish
    "more bytes coming" from "capture truncated".
    """

    def __init__(self, max_buffered: int = 8 * 1024 * 1024) -> None:
        self.max_buffered = max_buffered
        self.bytes_fed = 0  # guarded-by: _cond
        self._chunks: deque[bytes] = deque()  # guarded-by: _cond
        self._buffered = 0  # guarded-by: _cond
        self._eof = False  # guarded-by: _cond
        self._abort_reason: str | None = None  # guarded-by: _cond
        self._cond = threading.Condition()

    def feed(self, data: bytes) -> None:
        """Append a chunk; blocks while the buffer is full."""
        if not data:
            return
        with self._cond:
            if self._eof:
                raise ServeError(409, "session already finished")
            while (
                self._buffered >= self.max_buffered
                and self._abort_reason is None
            ):
                self._cond.wait()
            if self._abort_reason is not None:
                raise ServeError(409, "session aborted")
            self._chunks.append(bytes(data))
            self._buffered += len(data)
            self.bytes_fed += len(data)
            self._cond.notify_all()

    def close(self) -> None:
        """Signal end of stream; idempotent."""
        with self._cond:
            self._eof = True
            self._cond.notify_all()

    def abort(self, reason: str = "session deleted") -> None:
        """Tear the pipe down: readers raise, writers unblock."""
        with self._cond:
            self._abort_reason = reason
            self._eof = True
            self._cond.notify_all()

    def read(self, n: int = -1) -> bytes:
        """Return exactly ``n`` bytes, or fewer only at end of stream."""
        if n is not None and n < 0:
            return self._read_all()
        out = bytearray()
        with self._cond:
            while len(out) < n:
                if self._abort_reason is not None:
                    raise SessionAborted(self._abort_reason)
                if not self._chunks:
                    if self._eof:
                        break
                    self._cond.wait()
                    continue
                chunk = self._chunks[0]
                need = n - len(out)
                if len(chunk) <= need:
                    out += chunk
                    self._chunks.popleft()
                else:
                    out += chunk[:need]
                    self._chunks[0] = chunk[need:]
                self._buffered -= min(need, len(chunk))
                self._cond.notify_all()
        return bytes(out)

    def _read_all(self) -> bytes:
        out = bytearray()
        while True:
            piece = self.read(65536)
            if not piece:
                return bytes(out)
            out += piece


class _SharedHealth(TraceHealth):
    """A :class:`TraceHealth` whose mutations take the session lock.

    The analysis thread records issues between yields — outside any
    renderer call — while readers snapshot ``to_dict()`` concurrently.
    Serializing :meth:`record` against the same RLock the renderer
    uses makes every snapshot internally consistent.  The lock must be
    re-entrant: recording past the issue cap re-enters ``record`` for
    the overflow marker.
    """

    def __init__(self, lock: threading.RLock, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._lock = lock

    def record(self, *args: Any, **kwargs: Any) -> Any:
        with self._lock:
            return super().record(*args, **kwargs)

    def merge(self, other: TraceHealth) -> None:
        with self._lock:
            super().merge(other)


class AnalysisSession:
    """One push-fed analysis run and its snapshot state.

    Lifecycle: ``open`` (accepting bytes) → ``finishing`` (EOF
    received, analyzer draining the tail) → ``done`` | ``failed``.
    All reader-visible state — the renderer, the health ledger, the
    lifecycle fields — mutates only under :attr:`lock`.
    """

    def __init__(
        self,
        session_id: str,
        *,
        budget: ResourceBudget | None = None,
        sniffer_location: str = SNIFFER_AT_RECEIVER,
        min_data_packets: int = 2,
        strict: bool = False,
        series_backend: str = "auto",
    ) -> None:
        self.id = session_id
        self.lock = threading.RLock()
        self.budget = budget
        health = _SharedHealth(self.lock, strict=strict)
        self._ledger = (
            StateLedger(budget, health=health)
            if budget is not None and budget.bounded
            else None
        )
        self.renderer = ReportRenderer(  # guarded-by: lock
            health=health,
            degradation=self._ledger.summary if self._ledger else None,
        )
        self.feeder = ChunkFeeder()
        self.state = "open"  # guarded-by: lock
        self.error: str | None = None  # guarded-by: lock
        self._strict = strict
        self._kwargs = dict(
            sniffer_location=sniffer_location,
            min_data_packets=min_data_packets,
            series_backend=series_backend,
        )
        self._thread = threading.Thread(
            target=self._run, name=f"serve-{session_id}", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # The analysis thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            # The feeder is pipe-like (no tell/fileno), so the mmap
            # fast path can never engage; disable it explicitly rather
            # than relying on the fallback probe.
            stream = iter_analyze_pcap(
                self.feeder,
                strict=self._strict,
                health=self.renderer.health,
                ledger=self._ledger,
                mmap=False,
                **self._kwargs,
            )
            for analysis in stream:
                with self.lock:
                    self.renderer.add(analysis)
        except SessionAborted:
            with self.lock:
                self.state = "failed"
                self.error = "aborted"
            return
        except Exception as exc:  # surfaced to clients, never raised here
            with self.lock:
                self.state = "failed"
                self.error = f"{type(exc).__name__}: {exc}"
            return
        with self.lock:
            self.renderer.finish()
            self.state = "done"

    # ------------------------------------------------------------------
    # Producer API (called from HTTP executor threads)
    # ------------------------------------------------------------------
    def feed(self, data: bytes) -> int:
        """Append uploaded bytes; returns the session's running total."""
        # The state read must hold the lock (RL009): a torn read
        # against the analysis thread's failure transition could admit
        # bytes into an already-failed session.
        with self.lock:
            state = self.state
        if state not in ("open",):
            raise ServeError(409, f"session {self.id} is {state}")
        self.feeder.feed(data)
        return self.feeder.bytes_fed

    def finish(self) -> None:
        """End of upload: EOF the feeder and let the tail drain."""
        with self.lock:
            if self.state == "open":
                self.state = "finishing"
        self.feeder.close()

    def wait(self, timeout: float | None = None) -> bool:
        """Join the analysis thread; True when it has fully drained."""
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def abort(self) -> None:
        """Tear the session down without waiting for a clean drain."""
        self.feeder.abort()
        self._thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Reader API
    # ------------------------------------------------------------------
    def snapshot_report(self) -> tuple[str, bytes]:
        with self.lock:
            return self.renderer.render_report()

    def snapshot_health(self) -> tuple[str, bytes]:
        with self.lock:
            return self.renderer.render_health()

    def status(self) -> dict[str, Any]:
        with self.lock:
            status: dict[str, Any] = {
                "id": self.id,
                "state": self.state,
                "bytes_received": self.feeder.bytes_fed,
                "connections": len(self.renderer.connections()),
                "records_read": self.renderer.health.records_read,
            }
            if self.budget is not None:
                status["budget"] = self.budget.describe()
            if self.renderer.degradation is not None:
                status["degraded"] = self.renderer.degradation.degraded
            if self.error is not None:
                status["error"] = self.error
            return status


class SessionManager:
    """The server's session registry, cap, and drain discipline."""

    def __init__(self, max_sessions: int = 64, **session_defaults: Any) -> None:
        self.max_sessions = max_sessions
        self.session_defaults = session_defaults
        self._sessions: dict[str, AnalysisSession] = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self._counter = 0  # guarded-by: _lock
        self._draining = False  # guarded-by: _lock

    # ------------------------------------------------------------------
    def create(self, **overrides: Any) -> AnalysisSession:
        kwargs = {**self.session_defaults, **overrides}
        with self._lock:
            if self._draining:
                raise ServeError(503, "server is draining")
            live = [
                s for s in self._sessions.values()
                if s.state in ("open", "finishing")
            ]
            if len(live) >= self.max_sessions:
                raise ServeError(
                    429, f"session limit reached ({self.max_sessions})"
                )
            self._counter += 1
            session_id = f"s{self._counter:04d}"
            session = AnalysisSession(session_id, **kwargs)
            self._sessions[session_id] = session
        # Resolved per create, not cached at construction: the manager
        # is typically built before the server installs its ambient
        # context, and session creation is far from a hot loop.
        obs = get_obs()
        obs.metrics.counter("serve.sessions", wall=True).inc()
        obs.metrics.gauge("serve.active_sessions", wall=True).set(
            len(live) + 1
        )
        return session

    def get(self, session_id: str) -> AnalysisSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ServeError(404, f"no such session: {session_id}")
        return session

    def remove(self, session_id: str) -> None:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise ServeError(404, f"no such session: {session_id}")
        session.abort()

    def sessions(self) -> Iterable[AnalysisSession]:
        with self._lock:
            return list(self._sessions.values())

    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = 30.0) -> bool:
        """Graceful shutdown: EOF every feeder, join every thread.

        Completed snapshots stay readable afterwards; returns True when
        every session drained inside the timeout.
        """
        with self._lock:
            self._draining = True
            sessions = list(self._sessions.values())
        for session in sessions:
            session.finish()
        drained = True
        for session in sessions:
            drained = session.wait(timeout) and drained
        return drained


__all__ = [
    "AnalysisSession",
    "ChunkFeeder",
    "ServeError",
    "SessionAborted",
    "SessionManager",
]
