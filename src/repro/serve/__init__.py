"""``repro.serve``: T-DAT as a long-running analysis service.

The subsystem the ROADMAP's "T-DAT as a service" item asks for: a
zero-dependency asyncio HTTP/1.1 server
(:class:`~repro.serve.http.AnalysisServer`) over a registry of
long-running analysis sessions
(:class:`~repro.serve.session.SessionManager`).  Clients create a
session, push pcap bytes in chunks, and read factor-attribution
reports and :class:`~repro.core.health.TraceHealth` snapshots while
ingest is still running — each response carries a strong ETag derived
from the deterministic state digest, so unchanged state revalidates as
``304 Not Modified``.

Entry points:

* ``tdat serve`` — the CLI front end with graceful signal drain;
* :meth:`repro.api.Pipeline.serve` / ``build_server`` — the library
  facade (``ServeRequest`` carries the knobs);
* this package directly, for tests and embedding.

See ``docs/service.md`` for the endpoint and caching contract.
"""

from repro.serve.http import (
    AnalysisServer,
    MAX_BODY_BYTES,
    server_observability,
)
from repro.serve.session import (
    AnalysisSession,
    ChunkFeeder,
    ServeError,
    SessionManager,
)

__all__ = [
    "AnalysisServer",
    "AnalysisSession",
    "ChunkFeeder",
    "MAX_BODY_BYTES",
    "ServeError",
    "SessionManager",
    "server_observability",
]
