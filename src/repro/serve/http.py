"""The asyncio HTTP/1.1 front end of the analysis service.

Stdlib only, matching the repo's no-dependency contract: one
``asyncio.start_server`` acceptor, a hand-rolled HTTP/1.1 parser
(request line + headers + ``Content-Length`` body, keep-alive), and a
route table over the :class:`~repro.serve.session.SessionManager`.

The event loop never blocks on analysis state: uploads feed the
session's byte pipe on executor threads (so feeder backpressure stalls
the uploading client, not the server), and report/health snapshots are
rendered on executor threads under the session lock.  Concurrent
readers are cheap by construction — the renderer caches the rendered
body per state version, and a reader presenting the current ETag in
``If-None-Match`` gets ``304 Not Modified`` without any rendering at
all.

Shutdown mirrors the checkpoint journal's two-signal discipline
(:class:`~repro.workloads.checkpoint.GracefulShutdown`): the first
SIGINT/SIGTERM stops accepting connections, EOFs every live session
and waits for their analysis threads to drain; a second signal aborts
the wait and tears sessions down immediately.

## Endpoints

========================================  =======================================
``POST /sessions``                        create a session (JSON body: budget, knobs)
``GET /sessions``                         list session statuses
``GET /sessions/<id>``                    one session's status
``POST /sessions/<id>/pcap``              upload a chunk of pcap bytes
``POST /sessions/<id>/finish[?wait=1]``   end of upload (optionally wait for drain)
``GET /sessions/<id>/report``             current report (strong ETag, 304-capable)
``GET /sessions/<id>/health``             current TraceHealth (same contract)
``DELETE /sessions/<id>``                 abort and remove a session
``GET /metrics``                          the server's own metrics snapshot
``GET /healthz``                          liveness probe
``POST /shutdown``                        request a graceful drain
========================================  =======================================
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Any, Callable

from repro.analysis.budget import ResourceBudget
from repro.obs import Observability, get_obs, use_obs
from repro.serve.session import ServeError, SessionManager

#: largest accepted request body (one upload chunk, not the whole pcap)
MAX_BODY_BYTES = 64 * 1024 * 1024
_MAX_HEADER_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def server_observability() -> Observability:
    """A metrics-only live context sized for a long-running server.

    ``Observability.create()`` pairs the registry with a tracer that
    retains every span for the process lifetime — right for one
    campaign, unbounded for a server that analyzes forever.  The
    server default is live metrics behind ``/metrics`` plus the no-op
    tracer; opt into a real tracer (and ``trace_requests``) only for
    short diagnostic runs.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import NULL_TRACER

    return Observability(
        metrics=MetricsRegistry(), tracer=NULL_TRACER, enabled=True
    )


class _Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body", "keep_alive")

    def __init__(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        headers: dict[str, str],
        body: bytes,
        keep_alive: bool,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive


class _BadRequest(Exception):
    pass


async def _read_request(reader: asyncio.StreamReader) -> _Request | None:
    """Parse one request off the connection; ``None`` at clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if len(line) > _MAX_HEADER_BYTES:
        raise _BadRequest("request line too long")
    try:
        method, target, version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise _BadRequest(f"malformed request line: {line!r}")
    version = version.strip()
    if not version.startswith("HTTP/1."):
        raise _BadRequest(f"unsupported protocol: {version}")
    headers: dict[str, str] = {}
    total = len(line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise _BadRequest("headers too long")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise _BadRequest(f"malformed header: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length", "0")
    try:
        body_len = int(length)
    except ValueError:
        raise _BadRequest(f"bad Content-Length: {length!r}")
    if body_len < 0 or body_len > MAX_BODY_BYTES:
        raise _BadRequest(f"body too large: {body_len} bytes")
    body = await reader.readexactly(body_len) if body_len else b""
    path, _, query_string = target.partition("?")
    query: dict[str, str] = {}
    for pair in query_string.split("&"):
        if pair:
            key, _, value = pair.partition("=")
            query[key] = value
    connection = headers.get("connection", "").lower()
    keep_alive = connection != "close" and version != "HTTP/1.0"
    return _Request(method.upper(), path, query, headers, body, keep_alive)


def _json_body(payload: dict | list) -> bytes:
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()


def _etag_matches(header: str, etag: str) -> bool:
    """RFC 7232 ``If-None-Match``: ``*`` or any listed tag matches."""
    if header.strip() == "*":
        return True
    candidates = [tag.strip() for tag in header.split(",")]
    # Weak-comparison: a client echoing W/"..." still revalidates.
    stripped = [
        tag[2:] if tag.startswith("W/") else tag for tag in candidates
    ]
    return etag in stripped


class AnalysisServer:
    """The long-running analysis service: sessions behind HTTP/1.1."""

    def __init__(
        self,
        manager: SessionManager | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 8321,
        obs: Observability | None = None,
        trace_requests: bool = False,
        drain_timeout: float = 30.0,
    ) -> None:
        self.manager = manager if manager is not None else SessionManager()
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        # A tracer accumulates spans unboundedly, so per-request spans
        # stay opt-in.  An explicit context is installed as the ambient
        # one for the duration of serve() — the session analysis
        # threads read the same global slot.
        self._installed_obs = obs
        self._obs = obs if obs is not None else get_obs()
        self._trace_requests = trace_requests
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._drain_requested: asyncio.Event | None = None
        self._hard_stop = False
        self._signaled = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` becomes the real port."""
        self._loop = asyncio.get_running_loop()
        self._drain_requested = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def drain(self) -> bool:
        """Stop accepting and flush every live session."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._hard_stop:
            for session in self.manager.sessions():
                session.abort()
            return False
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self.manager.drain, self.drain_timeout
        )

    def request_shutdown(self) -> None:
        """Ask the serving loop to drain (thread/signal safe to call)."""
        event = self._drain_requested
        if event is None:
            return
        loop = self._loop
        if loop is not None and not loop.is_closed():
            # asyncio.Event is not thread-safe; hop onto the loop.
            try:
                loop.call_soon_threadsafe(event.set)
                return
            except RuntimeError:
                pass  # loop already shut down between the checks
        event.set()

    def _on_signal(self) -> None:
        if self._signaled:
            # Second signal: stop waiting for sessions, abort them.
            self._hard_stop = True
        self._signaled = True
        self.request_shutdown()

    async def serve(
        self, on_ready: Callable[[str, int], None] | None = None
    ) -> bool:
        """Bind, announce, serve until a drain is requested.

        Returns ``True`` when the drain was initiated by a signal (the
        CLI maps that to its drained exit code), ``False`` for a
        programmatic shutdown (``POST /shutdown`` /
        :meth:`request_shutdown`).
        """
        await self.start()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self._on_signal)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without support
        try:
            with use_obs(self._installed_obs):
                if on_ready is not None:
                    on_ready(self.host, self.port)
                assert self._drain_requested is not None
                await self._drain_requested.wait()
                await self.drain()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
        return self._signaled

    def run(
        self, on_ready: Callable[[str, int], None] | None = None
    ) -> bool:
        """Blocking entry point; returns :meth:`serve`'s drained-by-signal flag.

        Bind failures (port in use, bad address) surface as ``OSError``
        for the CLI's guarded-call discipline to turn into a one-line
        error.
        """
        return asyncio.run(self.serve(on_ready=on_ready))

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as exc:
                    await self._respond(
                        writer, 400, body=_json_body({"error": str(exc)})
                    )
                    break
                if request is None:
                    break
                status = await self._dispatch_and_respond(writer, request)
                if status is None or not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch_and_respond(
        self, writer: asyncio.StreamWriter, request: _Request
    ) -> int | None:
        started = time.monotonic()
        try:
            if self._trace_requests:
                with self._obs.tracer.span(
                    "serve.request", cat="serve",
                    args={"method": request.method, "path": request.path},
                ):
                    status, body, headers = await self._route(request)
            else:
                status, body, headers = await self._route(request)
        except ServeError as exc:
            status, body, headers = (
                exc.status, _json_body({"error": str(exc)}), {}
            )
        except Exception as exc:  # a handler bug must not kill the server
            status = 500
            body = _json_body({"error": f"{type(exc).__name__}: {exc}"})
            headers = {}
        metrics = self._obs.metrics
        metrics.counter("serve.requests", wall=True).inc()
        metrics.histogram("serve.request_s", wall=True).observe(
            time.monotonic() - started
        )
        if status >= 500:
            metrics.counter("serve.errors", wall=True).inc()
        await self._respond(writer, status, body=body, headers=headers)
        return status

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        *,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}"]
        out_headers = {"Content-Type": "application/json"}
        out_headers.update(headers or {})
        # 304 and 204 must not carry a body.
        if status in (204, 304):
            body = b""
            out_headers.pop("Content-Type", None)
        out_headers["Content-Length"] = str(len(body))
        for name, value in out_headers.items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode())
        if body:
            writer.write(body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self, request: _Request
    ) -> tuple[int, bytes, dict[str, str]]:
        parts = [p for p in request.path.split("/") if p]
        method = request.method
        if parts == ["healthz"] and method == "GET":
            return 200, _json_body({"status": "ok"}), {}
        if parts == ["metrics"] and method == "GET":
            return 200, _json_body(self._obs.metrics.to_dict()), {}
        if parts == ["shutdown"] and method == "POST":
            self.request_shutdown()
            return 202, _json_body({"status": "draining"}), {}
        if parts and parts[0] == "sessions":
            return await self._route_sessions(request, parts[1:])
        return 404, _json_body({"error": f"no such path: {request.path}"}), {}

    async def _route_sessions(
        self, request: _Request, rest: list[str]
    ) -> tuple[int, bytes, dict[str, str]]:
        method = request.method
        loop = asyncio.get_running_loop()
        if not rest:
            if method == "POST":
                return self._create_session(request)
            if method == "GET":
                statuses = [s.status() for s in self.manager.sessions()]
                statuses.sort(key=lambda s: s["id"])
                return 200, _json_body({"sessions": statuses}), {}
            return 405, _json_body({"error": f"{method} not allowed"}), {}
        session = self.manager.get(rest[0])
        tail = rest[1:]
        if not tail:
            if method == "GET":
                return 200, _json_body(session.status()), {}
            if method == "DELETE":
                self.manager.remove(session.id)
                return 204, b"", {}
            return 405, _json_body({"error": f"{method} not allowed"}), {}
        action = tail[0]
        if len(tail) > 1:
            raise ServeError(404, f"no such path: {request.path}")
        if action == "pcap" and method == "POST":
            # feed() may block on backpressure: executor, not the loop.
            total = await loop.run_in_executor(
                None, session.feed, request.body
            )
            self._obs.metrics.counter("serve.bytes_in", wall=True).inc(
                len(request.body)
            )
            return 202, _json_body(
                {"received": len(request.body), "total": total}
            ), {}
        if action == "finish" and method == "POST":
            session.finish()
            if request.query.get("wait") in ("1", "true"):
                await loop.run_in_executor(
                    None, session.wait, self.drain_timeout
                )
            return 200, _json_body(session.status()), {}
        if action == "report" and method == "GET":
            snapshot = await loop.run_in_executor(
                None, session.snapshot_report
            )
            return self._conditional(request, *snapshot)
        if action == "health" and method == "GET":
            snapshot = await loop.run_in_executor(
                None, session.snapshot_health
            )
            return self._conditional(request, *snapshot)
        raise ServeError(404, f"no such path: {request.path}")

    def _create_session(
        self, request: _Request
    ) -> tuple[int, bytes, dict[str, str]]:
        overrides: dict[str, Any] = {}
        if request.body:
            try:
                spec = json.loads(request.body)
            except ValueError as exc:
                raise ServeError(400, f"bad session spec: {exc}")
            if not isinstance(spec, dict):
                raise ServeError(400, "session spec must be a JSON object")
            budget_spec = spec.pop("budget", None)
            if budget_spec is not None:
                try:
                    overrides["budget"] = ResourceBudget(**budget_spec)
                except TypeError as exc:
                    raise ServeError(400, f"bad budget: {exc}")
            allowed = {
                "sniffer_location", "min_data_packets", "strict",
                "series_backend",
            }
            unknown = set(spec) - allowed
            if unknown:
                raise ServeError(
                    400, f"unknown session options: {sorted(unknown)}"
                )
            overrides.update(spec)
        session = self.manager.create(**overrides)
        return 201, _json_body(session.status()), {}

    def _conditional(
        self, request: _Request, etag: str, body: bytes
    ) -> tuple[int, bytes, dict[str, str]]:
        headers = {"ETag": etag, "Cache-Control": "no-cache"}
        match = request.headers.get("if-none-match")
        if match is not None and _etag_matches(match, etag):
            self._obs.metrics.counter("serve.cache_hits", wall=True).inc()
            return 304, b"", headers
        return 200, body, headers


__all__ = ["AnalysisServer", "MAX_BODY_BYTES"]
