"""Campaign checkpointing and graceful shutdown.

A measurement campaign is hours of simulation; losing it to a reboot,
an OOM kill, or an operator's Ctrl-C means starting over.  This module
gives :func:`~repro.workloads.campaign.run_campaign` a durable journal:

* :class:`CampaignJournal` — a checkpoint directory holding one
  append-only ``journal.bin`` of completed episodes (the analyzed
  records and the episode's private
  :class:`~repro.core.health.TraceHealth` ledger, one CRC32 + length
  framed record per episode) plus the episode pcaps as separate
  atomically-written artifacts.  A hard kill mid-append can only tear
  the journal *tail*; on open the longest valid record prefix is
  salvaged, the torn bytes are quarantined, and a benign
  ``checkpoint-salvaged`` issue accounts the loss — the affected
  episodes simply re-run;
* a double-written ``manifest.json`` (primary + replica, so no single
  torn write can orphan the journal) binding it to the exact
  :class:`~repro.workloads.campaign.CampaignConfig` that produced it —
  resuming under a different config (different seed, transfer count,
  mixture weights ...) raises :class:`CheckpointMismatch` instead of
  silently mixing incompatible populations;
* :class:`GracefulShutdown` — a context manager converting SIGINT and
  SIGTERM into a cooperative drain request: in-flight episodes finish
  and are journaled, then :class:`CampaignInterrupted` propagates so
  the CLI can exit with its dedicated status code.  A second signal
  falls back to an immediate :class:`KeyboardInterrupt`.

Every filesystem operation the journal performs goes through an
injectable :class:`CheckpointFs` seam (:func:`use_checkpoint_fs`), the
hook ``repro.chaos`` uses to inject torn writes, ``ENOSPC``, ``EIO``
and fsync failures at named injection points.  A real I/O failure
surfaces as a typed :class:`CheckpointWriteError`, which the campaign
layer converts into a resumable :class:`CampaignInterrupted`.

Because every episode is a pure function of its spec (and the specs a
pure function of the config), a resumed campaign is byte-identical to
an uninterrupted one: the journal only changes *when* episodes run,
never *what* they produce.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pickle
import signal
import struct
import threading
import time
import zlib
from pathlib import Path
from typing import Any, Iterator

from repro.core.health import STAGE_EXEC, TraceHealth
from repro.obs import get_obs

#: bump when the on-disk entry layout changes incompatibly.
FORMAT = 2

#: a journal entry key: ("episode" | "zero-bug", index).
TaskKey = tuple[str, int]

#: the append-only episode journal inside a checkpoint directory.
JOURNAL_NAME = "journal.bin"
MANIFEST_NAME = "manifest.json"
#: the manifest replica, written *before* the primary so that a crash
#: between the two writes always leaves at least one readable copy.
MANIFEST_REPLICA_NAME = "manifest.replica.json"

#: journal frame: magic | payload length | crc32(payload), then the
#: pickled payload itself.  Fixed little-endian so a journal written
#: on one host salvages identically on any other.
FRAME_MAGIC = b"TDJ2"
FRAME_HEADER = struct.Struct("<4sII")

# Chaos injection points (see docs/robustness.md, RL007): the named
# seams at which repro.chaos's FaultyCheckpointFs injects faults.
POINT_CHECKPOINT_WRITE = "checkpoint.write"
POINT_CHECKPOINT_FSYNC = "checkpoint.fsync"
POINT_CHECKPOINT_RENAME = "checkpoint.rename"
POINT_JOURNAL_APPEND = "journal.append"
POINT_JOURNAL_FSYNC = "journal.fsync"


class CheckpointMismatch(ValueError):
    """The checkpoint directory belongs to a different campaign config."""


class CheckpointWriteError(RuntimeError):
    """A checkpoint write failed at the filesystem (ENOSPC, EIO, ...).

    Raised from :meth:`CampaignJournal.write` (and manifest creation)
    instead of a bare :class:`OSError` so the campaign layer can tell
    "the journal cannot make progress" apart from ordinary ingest
    errors and convert it into a resumable
    :class:`CampaignInterrupted`.
    """

    def __init__(self, path: Path, cause: BaseException) -> None:
        self.path = Path(path)
        super().__init__(f"checkpoint write to {self.path} failed: {cause}")


class CampaignInterrupted(Exception):
    """A campaign drained after SIGINT/SIGTERM (or a checkpoint write
    failure); the journal is flushed.

    Carries enough for the CLI to report progress and for callers to
    resume: re-run with ``resume_from=checkpoint_dir`` (or
    ``tdat campaign ... --resume``) and the campaign continues exactly
    where it stopped.
    """

    def __init__(
        self, campaign: str, completed: int, total: int,
        checkpoint_dir: str | Path, reason: str = "",
    ) -> None:
        self.campaign = campaign
        self.completed = completed
        self.total = total
        self.checkpoint_dir = Path(checkpoint_dir)
        self.reason = reason
        message = (
            f"campaign {campaign} interrupted: {completed}/{total} "
            f"episode(s) completed and checkpointed under "
            f"{self.checkpoint_dir}; re-run with --resume to continue"
        )
        if reason:
            message += f" ({reason})"
        super().__init__(message)


# ---------------------------------------------------------------------- #
# The injectable filesystem seam                                           #
# ---------------------------------------------------------------------- #
class CheckpointFs:
    """The filesystem primitives every checkpoint write goes through.

    The default instance performs the real operations; ``repro.chaos``
    installs a fault-injecting subclass via :func:`use_checkpoint_fs`.
    Each method takes the *injection point* name under which the call
    should be attributed (see the RL007 catalog in
    ``docs/robustness.md``) — the seam is per-call-site, so a fault
    schedule can tear exactly the Nth journal append and nothing else.
    """

    def write(self, handle: Any, data: bytes, point: str) -> None:
        handle.write(data)

    def fsync(self, handle: Any, point: str) -> None:
        os.fsync(handle.fileno())

    def replace(self, src: Path, dst: Path, point: str) -> None:
        os.replace(src, dst)


_REAL_FS = CheckpointFs()
_CHECKPOINT_FS: CheckpointFs = _REAL_FS


def get_checkpoint_fs() -> CheckpointFs:
    """The ambient filesystem seam (the real one unless chaos is on)."""
    return _CHECKPOINT_FS


@contextlib.contextmanager
def use_checkpoint_fs(fs: CheckpointFs) -> Iterator[CheckpointFs]:
    """Install ``fs`` as the checkpoint filesystem for the duration.

    Journal writes happen in the campaign *parent* process (the pool's
    ``on_outcome`` hook), so installing a faulty fs here covers
    parallel runs too — workers never touch the journal.
    """
    global _CHECKPOINT_FS
    previous = _CHECKPOINT_FS
    _CHECKPOINT_FS = fs
    try:
        yield fs
    finally:
        _CHECKPOINT_FS = previous


def config_digest(config: Any) -> str:
    """SHA-256 over the config's canonical JSON form.

    Any field change — seed, transfer count, mixture weights, budgets —
    changes the digest, which is exactly the compatibility contract:
    resuming is only sound when every episode spec would be re-drawn
    identically.
    """
    payload = json.dumps(
        dataclasses.asdict(config), sort_keys=True, default=str
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` durably: no reader ever observes a torn file.

    The two fsyncs (file, then directory after the rename) dominate the
    cost of a checkpoint; their wall time lands in the
    ``checkpoint.fsync_s`` histogram.
    """
    obs = get_obs()
    fs = get_checkpoint_fs()
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        fs.write(handle, data, POINT_CHECKPOINT_WRITE)
        handle.flush()
        fsync_started = time.monotonic() if obs.enabled else 0.0
        fs.fsync(handle, POINT_CHECKPOINT_FSYNC)
        if obs.enabled:
            obs.metrics.histogram("checkpoint.fsync_s", wall=True).observe(
                time.monotonic() - fsync_started
            )
    fs.replace(tmp, path, POINT_CHECKPOINT_RENAME)
    # fsync the directory so the rename itself survives a crash.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return
    try:
        fsync_started = time.monotonic() if obs.enabled else 0.0
        os.fsync(dir_fd)
        if obs.enabled:
            obs.metrics.histogram("checkpoint.fsync_s", wall=True).observe(
                time.monotonic() - fsync_started
            )
    except OSError:
        pass
    finally:
        os.close(dir_fd)


class CampaignJournal:
    """One campaign's checkpoint directory.

    Layout::

        <root>/
          manifest.json            # config binding (see config_digest)
          manifest.replica.json    # double-write replica of the same
          journal.bin              # append-only CRC-framed entries
          journal.torn-<offset>    # quarantined torn tail, if salvaged
          episodes/
            episode-0007.pcap      # the episode's capture, as written
            zero-bug-0000.pcap     # special episodes use their kind

    ``journal.bin`` holds one frame per completed episode::

        "TDJ2" | u32 payload_len | u32 crc32(payload) | payload

    (little-endian; payload = pickled ``{format, task, records,
    health}``).  The pcap is written first, the journal append last,
    so the frame is the completion marker.  A hard kill mid-append can
    only tear the tail: on open, the longest valid frame prefix is
    kept, the torn bytes move to ``journal.torn-<offset>``, and the
    loss is accounted as a benign ``checkpoint-salvaged`` issue on the
    ``health`` ledger passed in — the torn episodes simply re-run.
    """

    def __init__(
        self,
        root: str | Path,
        config: Any,
        health: TraceHealth | None = None,
    ) -> None:
        self.root = Path(root)
        self.episodes = self.root / "episodes"
        self.journal_path = self.root / JOURNAL_NAME
        self.digest = config_digest(config)
        self.episodes.mkdir(parents=True, exist_ok=True)
        self._check_or_write_manifest(config)
        self._entries: dict[TaskKey, tuple[list, Any]] = {}
        self._scan_and_salvage(health)

    # ------------------------------------------------------------------ #
    # Manifest double-write                                              #
    # ------------------------------------------------------------------ #
    def _check_or_write_manifest(self, config: Any) -> None:
        primary = self.root / MANIFEST_NAME
        replica = self.root / MANIFEST_REPLICA_NAME
        if primary.exists() or replica.exists():
            recorded, healthy = self._read_manifest(primary, replica)
            if recorded.get("config_sha256") != self.digest:
                raise CheckpointMismatch(
                    f"checkpoint at {self.root} was written by a different "
                    f"campaign configuration (manifest "
                    f"{recorded.get('config_sha256', '?')[:12]}..., current "
                    f"{self.digest[:12]}...); refusing to mix results"
                )
            # Heal the copy that was missing or unreadable (best
            # effort: the surviving copy alone is already sufficient).
            for path in (primary, replica):
                if path not in healthy:
                    try:
                        _atomic_write(
                            path, _manifest_bytes(recorded)
                        )
                    except OSError:
                        pass
            return
        payload = _manifest_bytes(
            {
                "format": FORMAT,
                "campaign": getattr(config, "name", "?"),
                "config": dataclasses.asdict(config),
                "config_sha256": self.digest,
            }
        )
        # Replica first: a crash between the two writes must leave the
        # *primary* missing (an obviously incomplete checkpoint that
        # the replica recovers), never a checkpoint whose only copy is
        # torn.
        try:
            _atomic_write(replica, payload)
            _atomic_write(primary, payload)
        except OSError as exc:
            raise CheckpointWriteError(primary, exc) from exc

    @staticmethod
    def _read_manifest(
        primary: Path, replica: Path
    ) -> tuple[dict, list[Path]]:
        """The manifest dict plus which of the two copies were readable."""
        recorded: dict | None = None
        healthy: list[Path] = []
        errors: list[str] = []
        for path in (primary, replica):
            try:
                candidate = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                errors.append(f"{path.name}: {exc}")
                continue
            healthy.append(path)
            if recorded is None:
                recorded = candidate
        if recorded is None:
            raise CheckpointMismatch(
                f"unreadable checkpoint manifest (both copies): "
                f"{'; '.join(errors)}"
            )
        return recorded, healthy

    # ------------------------------------------------------------------ #
    # Journal scan + tail salvage                                        #
    # ------------------------------------------------------------------ #
    def _scan_and_salvage(self, health: TraceHealth | None) -> None:
        """Parse every valid frame; truncate and quarantine a torn tail."""
        try:
            raw = self.journal_path.read_bytes()
        except FileNotFoundError:
            return
        except OSError:
            raw = b""
        offset = 0
        valid_end = 0
        while offset < len(raw):
            frame_end = self._parse_frame(raw, offset, health)
            if frame_end is None:
                break
            offset = frame_end
            valid_end = frame_end
        if valid_end >= len(raw):
            return
        torn = raw[valid_end:]
        quarantine = self.root / f"journal.torn-{valid_end:08d}"
        try:
            with open(self.journal_path, "r+b") as handle:
                handle.truncate(valid_end)
        except OSError:
            # Cannot repair in place: leave the file alone.  Appends
            # past the torn bytes would be unreachable, but the scan
            # above already treats everything past ``valid_end`` as
            # missing, so the affected episodes re-run — sound, merely
            # wasteful.
            return
        try:
            quarantine.write_bytes(torn)
        except OSError:
            pass  # the torn bytes are garbage; losing them is fine
        if health is not None:
            health.record(
                STAGE_EXEC, "checkpoint-salvaged",
                offset=valid_end,
                bytes_lost=len(torn),
                detail=(
                    f"journal tail torn at byte {valid_end}; recovered "
                    f"{len(self._entries)} entrie(s), quarantined "
                    f"{len(torn)} byte(s) to {quarantine.name}"
                ),
                benign=True,
            )

    def _parse_frame(
        self, raw: bytes, offset: int, health: TraceHealth | None
    ) -> int | None:
        """Consume one frame at ``offset``; None when the tail is torn.

        A frame whose envelope (magic, length, CRC) is intact but whose
        payload fails to decode — wrong format version, partial copy
        from another machine — is *skipped*, not treated as torn: the
        frames after it are still trustworthy, and the skipped episode
        re-runs (``checkpoint-entry-skipped``, benign).
        """
        header = raw[offset:offset + FRAME_HEADER.size]
        if len(header) < FRAME_HEADER.size:
            return None
        magic, length, crc = FRAME_HEADER.unpack(header)
        if magic != FRAME_MAGIC:
            return None
        start = offset + FRAME_HEADER.size
        payload = raw[start:start + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            return None
        try:
            entry = pickle.loads(payload)
            if entry.get("format") != FORMAT:
                raise ValueError(f"journal format {entry.get('format')}")
            self._entries[tuple(entry["task"])] = (
                entry["records"], entry["health"],
            )
        except Exception as exc:  # noqa: BLE001 - damaged entry == rerun
            if health is not None:
                health.record(
                    STAGE_EXEC, "checkpoint-entry-skipped",
                    offset=offset,
                    bytes_lost=FRAME_HEADER.size + length,
                    detail=f"CRC-valid journal entry failed to decode: {exc}",
                    benign=True,
                )
        return start + length

    # ------------------------------------------------------------------ #
    # Reads and writes                                                   #
    # ------------------------------------------------------------------ #
    @staticmethod
    def entry_name(task: TaskKey) -> str:
        kind, index = task
        return f"{kind}-{index:04d}"

    def write(
        self,
        task: TaskKey,
        records: list,
        health: Any,
        pcap_bytes: bytes | None,
    ) -> None:
        """Persist one completed episode (pcap first, journal append
        last — the frame is the completion marker).

        A filesystem failure anywhere in the sequence raises
        :class:`CheckpointWriteError`; the partial artifacts it leaves
        (a pcap without a frame, a torn frame tail) are exactly what
        the open-time salvage path repairs.
        """
        obs = get_obs()
        fs = get_checkpoint_fs()
        write_started = time.monotonic() if obs.enabled else 0.0
        name = self.entry_name(task)
        payload = pickle.dumps(
            {
                "format": FORMAT,
                "task": tuple(task),
                "records": records,
                "health": health,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        frame = FRAME_HEADER.pack(
            FRAME_MAGIC, len(payload), zlib.crc32(payload)
        ) + payload
        try:
            if pcap_bytes is not None:
                _atomic_write(self.episodes / f"{name}.pcap", pcap_bytes)
            with open(self.journal_path, "ab") as handle:
                fs.write(handle, frame, POINT_JOURNAL_APPEND)
                handle.flush()
                fsync_started = time.monotonic() if obs.enabled else 0.0
                fs.fsync(handle, POINT_JOURNAL_FSYNC)
                if obs.enabled:
                    obs.metrics.histogram(
                        "checkpoint.fsync_s", wall=True
                    ).observe(time.monotonic() - fsync_started)
        except OSError as exc:
            raise CheckpointWriteError(self.journal_path, exc) from exc
        self._entries[tuple(task)] = (records, health)
        if obs.enabled:
            obs.metrics.counter("checkpoint.writes", wall=True).inc()
            obs.metrics.histogram("checkpoint.write_s", wall=True).observe(
                time.monotonic() - write_started
            )

    def load(self) -> dict[TaskKey, tuple[list, Any]]:
        """Every completed entry: ``{task: (records, health)}``.

        The journal was scanned (and its tail salvaged) when this
        instance was opened; a damaged entry is absent here, so the
        episode simply re-runs, which is always sound.
        """
        return dict(self._entries)


class GracefulShutdown:
    """Convert termination signals into a cooperative drain request.

    Used as a context manager around a pool run.  The first SIGINT or
    SIGTERM sets the drain flag (polled by
    :meth:`~repro.exec.pool.WorkPool.map` via :meth:`requested`); a
    second one restores the previous handlers and raises
    :class:`KeyboardInterrupt` immediately — the operator's escape
    hatch when draining itself wedges.

    ``install_signals=False`` gives a purely programmatic instance
    (tests, embedding apps, the chaos harness's drain fault class)
    driven via :meth:`request`.  Handlers are only ever installed from
    the main thread; elsewhere the instance degrades to programmatic
    mode.
    """

    def __init__(self, install_signals: bool = True) -> None:
        self._event = threading.Event()
        self._previous: dict[int, Any] = {}
        self._install = install_signals
        self.signals_installed = False

    def __enter__(self) -> "GracefulShutdown":
        if (
            self._install
            and threading.current_thread() is threading.main_thread()
        ):
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._previous[signum] = signal.signal(
                        signum, self._handle
                    )
                except (ValueError, OSError):
                    continue
            self.signals_installed = bool(self._previous)
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()

    def _restore(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                continue
        self._previous.clear()
        self.signals_installed = False

    def _handle(self, signum, frame) -> None:
        if self._event.is_set():
            self._restore()
            raise KeyboardInterrupt
        self._event.set()

    def request(self) -> None:
        """Programmatically request a drain (what a signal would do)."""
        self._event.set()

    def requested(self) -> bool:
        """True once a drain has been requested; the pool's poll hook."""
        return self._event.is_set()


def _manifest_bytes(manifest: dict) -> bytes:
    return json.dumps(
        manifest, indent=2, sort_keys=True, default=str
    ).encode() + b"\n"
