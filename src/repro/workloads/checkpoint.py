"""Campaign checkpointing and graceful shutdown.

A measurement campaign is hours of simulation; losing it to a reboot,
an OOM kill, or an operator's Ctrl-C means starting over.  This module
gives :func:`~repro.workloads.campaign.run_campaign` a durable journal:

* :class:`CampaignJournal` — a checkpoint directory holding one entry
  per completed episode (the analyzed records, the episode's private
  :class:`~repro.core.health.TraceHealth` ledger, and the episode's
  pcap), each written atomically (tmp file → fsync → rename → directory
  fsync) so a hard kill can never leave a torn entry;
* a ``manifest.json`` binding the journal to the exact
  :class:`~repro.workloads.campaign.CampaignConfig` that produced it —
  resuming under a different config (different seed, transfer count,
  mixture weights ...) raises :class:`CheckpointMismatch` instead of
  silently mixing incompatible populations;
* :class:`GracefulShutdown` — a context manager converting SIGINT and
  SIGTERM into a cooperative drain request: in-flight episodes finish
  and are journaled, then :class:`CampaignInterrupted` propagates so
  the CLI can exit with its dedicated status code.  A second signal
  falls back to an immediate :class:`KeyboardInterrupt`.

Because every episode is a pure function of its spec (and the specs a
pure function of the config), a resumed campaign is byte-identical to
an uninterrupted one: the journal only changes *when* episodes run,
never *what* they produce.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import signal
import threading
import time
from pathlib import Path
from typing import Any

from repro.obs import get_obs

#: bump when the on-disk entry layout changes incompatibly.
FORMAT = 1

#: a journal entry key: ("episode" | "zero-bug", index).
TaskKey = tuple[str, int]


class CheckpointMismatch(ValueError):
    """The checkpoint directory belongs to a different campaign config."""


class CampaignInterrupted(Exception):
    """A campaign drained after SIGINT/SIGTERM; the journal is flushed.

    Carries enough for the CLI to report progress and for callers to
    resume: re-run with ``resume_from=checkpoint_dir`` (or
    ``tdat campaign ... --resume``) and the campaign continues exactly
    where it stopped.
    """

    def __init__(
        self, campaign: str, completed: int, total: int,
        checkpoint_dir: str | Path,
    ) -> None:
        self.campaign = campaign
        self.completed = completed
        self.total = total
        self.checkpoint_dir = Path(checkpoint_dir)
        super().__init__(
            f"campaign {campaign} interrupted: {completed}/{total} "
            f"episode(s) completed and checkpointed under "
            f"{self.checkpoint_dir}; re-run with --resume to continue"
        )


def config_digest(config: Any) -> str:
    """SHA-256 over the config's canonical JSON form.

    Any field change — seed, transfer count, mixture weights, budgets —
    changes the digest, which is exactly the compatibility contract:
    resuming is only sound when every episode spec would be re-drawn
    identically.
    """
    payload = json.dumps(
        dataclasses.asdict(config), sort_keys=True, default=str
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` durably: no reader ever observes a torn file.

    The two fsyncs (file, then directory after the rename) dominate the
    cost of a checkpoint; their wall time lands in the
    ``checkpoint.fsync_s`` histogram.
    """
    obs = get_obs()
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        fsync_started = time.monotonic() if obs.enabled else 0.0
        os.fsync(handle.fileno())
        if obs.enabled:
            obs.metrics.histogram("checkpoint.fsync_s", wall=True).observe(
                time.monotonic() - fsync_started
            )
    os.replace(tmp, path)
    # fsync the directory so the rename itself survives a crash.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return
    try:
        fsync_started = time.monotonic() if obs.enabled else 0.0
        os.fsync(dir_fd)
        if obs.enabled:
            obs.metrics.histogram("checkpoint.fsync_s", wall=True).observe(
                time.monotonic() - fsync_started
            )
    except OSError:
        pass
    finally:
        os.close(dir_fd)


class CampaignJournal:
    """One campaign's checkpoint directory.

    Layout::

        <root>/
          manifest.json            # config binding (see config_digest)
          episodes/
            episode-0007.ckpt      # pickled {task, records, health}
            episode-0007.pcap      # the episode's capture, as written
            zero-bug-0000.ckpt     # special episodes use their kind

    A ``.ckpt`` file is the completion marker; it is written last, so
    an entry either exists completely or not at all.
    """

    def __init__(self, root: str | Path, config: Any) -> None:
        self.root = Path(root)
        self.episodes = self.root / "episodes"
        self.digest = config_digest(config)
        self.episodes.mkdir(parents=True, exist_ok=True)
        manifest = self.root / "manifest.json"
        if manifest.exists():
            try:
                recorded = json.loads(manifest.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise CheckpointMismatch(
                    f"unreadable checkpoint manifest {manifest}: {exc}"
                ) from exc
            if recorded.get("config_sha256") != self.digest:
                raise CheckpointMismatch(
                    f"checkpoint at {self.root} was written by a different "
                    f"campaign configuration (manifest "
                    f"{recorded.get('config_sha256', '?')[:12]}..., current "
                    f"{self.digest[:12]}...); refusing to mix results"
                )
        else:
            _atomic_write(
                manifest,
                json.dumps(
                    {
                        "format": FORMAT,
                        "campaign": getattr(config, "name", "?"),
                        "config": dataclasses.asdict(config),
                        "config_sha256": self.digest,
                    },
                    indent=2,
                    sort_keys=True,
                    default=str,
                ).encode() + b"\n",
            )

    @staticmethod
    def entry_name(task: TaskKey) -> str:
        kind, index = task
        return f"{kind}-{index:04d}"

    def write(
        self,
        task: TaskKey,
        records: list,
        health: Any,
        pcap_bytes: bytes | None,
    ) -> None:
        """Persist one completed episode (pcap first, marker last)."""
        obs = get_obs()
        write_started = time.monotonic() if obs.enabled else 0.0
        name = self.entry_name(task)
        if pcap_bytes is not None:
            _atomic_write(self.episodes / f"{name}.pcap", pcap_bytes)
        payload = pickle.dumps(
            {
                "format": FORMAT,
                "task": tuple(task),
                "records": records,
                "health": health,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        _atomic_write(self.episodes / f"{name}.ckpt", payload)
        if obs.enabled:
            obs.metrics.counter("checkpoint.writes", wall=True).inc()
            obs.metrics.histogram("checkpoint.write_s", wall=True).observe(
                time.monotonic() - write_started
            )

    def load(self) -> dict[TaskKey, tuple[list, Any]]:
        """Every completed entry: ``{task: (records, health)}``.

        An entry that fails to unpickle (wrong format version, partial
        copy from another machine) is skipped — the episode simply
        re-runs, which is always sound.
        """
        completed: dict[TaskKey, tuple[list, Any]] = {}
        for path in sorted(self.episodes.glob("*.ckpt")):
            try:
                entry = pickle.loads(path.read_bytes())
                if entry.get("format") != FORMAT:
                    continue
                completed[tuple(entry["task"])] = (
                    entry["records"], entry["health"],
                )
            except Exception:  # noqa: BLE001 - damaged entry == rerun
                continue
        return completed


class GracefulShutdown:
    """Convert termination signals into a cooperative drain request.

    Used as a context manager around a pool run.  The first SIGINT or
    SIGTERM sets the drain flag (polled by
    :meth:`~repro.exec.pool.WorkPool.map` via :meth:`requested`); a
    second one restores the previous handlers and raises
    :class:`KeyboardInterrupt` immediately — the operator's escape
    hatch when draining itself wedges.

    ``install_signals=False`` gives a purely programmatic instance
    (tests, embedding apps) driven via :meth:`request`.  Handlers are
    only ever installed from the main thread; elsewhere the instance
    degrades to programmatic mode.
    """

    def __init__(self, install_signals: bool = True) -> None:
        self._event = threading.Event()
        self._previous: dict[int, Any] = {}
        self._install = install_signals
        self.signals_installed = False

    def __enter__(self) -> "GracefulShutdown":
        if (
            self._install
            and threading.current_thread() is threading.main_thread()
        ):
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._previous[signum] = signal.signal(
                        signum, self._handle
                    )
                except (ValueError, OSError):
                    continue
            self.signals_installed = bool(self._previous)
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()

    def _restore(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                continue
        self._previous.clear()
        self.signals_installed = False

    def _handle(self, signum, frame) -> None:
        if self._event.is_set():
            self._restore()
            raise KeyboardInterrupt
        self._event.set()

    def request(self) -> None:
        """Programmatically request a drain (what a signal would do)."""
        self._event.set()

    def requested(self) -> bool:
        """True once a drain has been requested; the pool's poll hook."""
        return self._event.is_set()
