"""Scenario building blocks: monitored BGP peerings with a sniffer.

:class:`MonitoringSetup` reproduces the paper's collection topology
(Figures 1 and 2): operational routers peer with a BGP collector, and a
sniffer box immediately in front of the collector captures both
directions.  Per-router link parameters, loss models, TCP configs and
BGP sender models make every pathology of section II injectable.

Topology per router::

    router --[upstream link]--> (tap) --[local link]--> collector
    router <--[upstream link]-- (tap) <--[local link]-- collector

The sniffer taps the egress of the data-direction *upstream* link and
of the ACK-direction *local* link, i.e. the physical point next to the
collector.  Losses configured on the data-direction local link (or its
small buffer) therefore happen downstream of the tap — the paper's
receiver-local losses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.collector import BaseCollector, CollectorCpu, QuaggaCollector
from repro.bgp.sender_models import SenderModel
from repro.bgp.speaker import BgpSession
from repro.bgp.table import Rib
from repro.capture.sniffer import SnifferTap
from repro.netsim.link import Link, LossModel
from repro.netsim.node import Host
from repro.netsim.simulator import Simulator
from repro.tcp.options import TcpConfig
from repro.tcp.socket import TcpEndpoint

COLLECTOR_PORT = 179


@dataclass
class RouterParams:
    """Everything configurable about one monitored router."""

    name: str
    ip: str
    table: Rib | None = None
    sender_model: SenderModel | None = None
    tcp: TcpConfig | None = None
    bandwidth_bps: float = 100_000_000
    upstream_delay_us: int = 4_000
    local_delay_us: int = 500
    upstream_loss: LossModel | None = None
    downstream_loss: LossModel | None = None
    downstream_buffer_packets: int = 1000
    hold_time_s: int = 180
    local_as: int = 65001
    announce_on_established: bool = True
    # Where the sniffer tap sits: "receiver" is the paper's collector-
    # side deployment; "sender" tapes the router's own egress, so drops
    # in the router's NIC queue become upstream/sender-local losses.
    tap_location: str = "receiver"
    # Loss and queue depth of the router's own output interface, only
    # distinguishable from path loss with a sender-side tap.
    nic_loss: LossModel | None = None
    nic_buffer_packets: int = 1000


@dataclass
class RouterHandle:
    """Live objects for one router added to a monitoring setup."""

    params: RouterParams
    host: Host
    endpoint: TcpEndpoint
    session: BgpSession
    collector_session: BgpSession
    nic_link: Link
    wan_link: Link
    upstream_link: Link
    local_link: Link
    ack_local_link: Link
    ack_upstream_link: Link

    @property
    def transfer_start_us(self) -> int | None:
        """Ground truth: when the router began queueing its table."""
        return self.session.transfer_started_at_us


class MonitoringSetup:
    """A collector plus its sniffer, accepting monitored routers."""

    def __init__(
        self,
        sim: Simulator,
        collector_cls: type[BaseCollector] = QuaggaCollector,
        collector_ip: str = "10.255.0.1",
        collector_as: int = 65000,
        collector_tcp: TcpConfig | None = None,
        cpu: CollectorCpu | None = None,
        sniffer_drop_windows: list[tuple[int, int]] | None = None,
        hold_time_s: int = 180,
    ) -> None:
        self.sim = sim
        self.collector_host = Host("collector", collector_ip)
        self.collector_tcp = collector_tcp or TcpConfig()
        self.collector = collector_cls(
            sim,
            self.collector_host,
            local_as=collector_as,
            bgp_id=collector_ip,
            cpu=cpu,
            hold_time_s=hold_time_s,
        )
        self.sniffer = SnifferTap(sim, drop_windows=sniffer_drop_windows)
        self.routers: list[RouterHandle] = []
        self._next_port = 40000

    def add_router(
        self, params: RouterParams, host: Host | None = None
    ) -> RouterHandle:
        """Wire a router into the setup; ``connect()`` is deferred to
        :meth:`start` (or call ``handle.endpoint.connect()`` manually).

        Pass an existing ``host`` to let one router peer with several
        collectors (the paper's peer-group configuration).
        """
        if host is None:
            host = Host(params.name, params.ip)
        # Data direction:
        #   router -> nic (the router's own output queue) -> wan
        #   (upstream/path loss) -> upstream segment -> local
        #   (downstream/receiver-local loss) -> collector.
        # The tap sits on the ``upstream`` segment for a receiver-side
        # deployment (the paper's Figure 2) or right after the NIC for a
        # sender-side one; losses *before* the tapped link's egress are
        # invisible to the capture.
        local = Link(
            self.sim,
            f"{params.name}-local",
            params.bandwidth_bps,
            params.local_delay_us,
            deliver=self.collector_host.deliver,
            loss_model=params.downstream_loss,
            buffer_packets=params.downstream_buffer_packets,
        )
        upstream = Link(
            self.sim,
            f"{params.name}-up",
            params.bandwidth_bps,
            50,  # a short monitored segment next to the collector
            deliver=local.send,
        )
        wan = Link(
            self.sim,
            f"{params.name}-wan",
            params.bandwidth_bps,
            params.upstream_delay_us,
            deliver=upstream.send,
            loss_model=params.upstream_loss,
        )
        nic = Link(
            self.sim,
            f"{params.name}-nic",
            params.bandwidth_bps,
            50,
            deliver=wan.send,
            loss_model=params.nic_loss,
            buffer_packets=params.nic_buffer_packets,
        )
        # ACK direction: collector -> ack_local -> ack_upstream ->
        # ack_nic -> router; a receiver-side tap sees ACKs leaving the
        # collector (ack_local), a sender-side one sees them arriving
        # at the router (ack_nic).
        ack_nic = Link(
            self.sim,
            f"{params.name}-ack-nic",
            params.bandwidth_bps,
            50,
            deliver=host.deliver,
        )
        ack_upstream = Link(
            self.sim,
            f"{params.name}-ack-up",
            params.bandwidth_bps,
            params.upstream_delay_us,
            deliver=ack_nic.send,
        )
        ack_local = Link(
            self.sim,
            f"{params.name}-ack-local",
            params.bandwidth_bps,
            params.local_delay_us,
            deliver=ack_upstream.send,
        )
        host.add_route(self.collector_host.ip, nic.send)
        self.collector_host.add_route(params.ip, ack_local.send)
        if params.tap_location == "receiver":
            self.sniffer.attach(upstream, ack_local)
        elif params.tap_location == "sender":
            # Data tapped entering the WAN (just past the router's NIC)
            # and ACKs tapped on their final hop into the router.
            self.sniffer.attach(wan, ack_nic)
        else:
            raise ValueError(f"unknown tap_location {params.tap_location!r}")

        port = self._next_port
        self._next_port += 1
        collector_endpoint = TcpEndpoint(
            self.sim,
            self.collector_host,
            COLLECTOR_PORT,
            params.ip,
            port,
            config=self.collector_tcp,
        )
        collector_endpoint.listen()
        router_endpoint = TcpEndpoint(
            self.sim,
            host,
            port,
            self.collector_host.ip,
            COLLECTOR_PORT,
            config=params.tcp,
        )
        collector_session = self.collector.add_session(
            collector_endpoint, peer_as=params.local_as, peer_ip=params.ip
        )
        session = BgpSession(
            self.sim,
            router_endpoint,
            local_as=params.local_as,
            bgp_id=params.ip,
            hold_time_s=params.hold_time_s,
            rib=params.table,
            sender_model=params.sender_model,
            on_established=(
                (lambda s: s.announce_table())
                if params.announce_on_established and params.table is not None
                else None
            ),
        )
        handle = RouterHandle(
            params=params,
            host=host,
            endpoint=router_endpoint,
            session=session,
            collector_session=collector_session,
            nic_link=nic,
            wan_link=wan,
            upstream_link=upstream,
            local_link=local,
            ack_local_link=ack_local,
            ack_upstream_link=ack_upstream,
        )
        self.routers.append(handle)
        return handle

    def start(self, stagger_us: int = 0) -> None:
        """Open every router's TCP connection, optionally staggered."""
        for index, handle in enumerate(self.routers):
            delay = index * stagger_us
            if delay:
                self.sim.schedule(delay, handle.endpoint.connect)
            else:
                handle.endpoint.connect()

    def run(self, until_us: int) -> None:
        """Convenience: run the simulator."""
        self.sim.run(until_us=until_us)
