"""Measurement campaigns: the repo's stand-ins for the paper's traces.

Three campaigns mirror Table I of the paper:

* ``ISP_A-Vendor`` — iBGP routers monitored by a vendor looking-glass
  (no MRT archive; transfer extents recovered via ``pcap2bgp`` + MCT,
  as the paper does for vendor traces);
* ``ISP_A-Quagga`` — iBGP routers monitored by a Quagga collector with
  an MRT archive (MCT runs on the archive);
* ``RV`` — RouteViews-style eBGP peers across the Internet: larger and
  more diverse RTTs, a 16 KB maximum advertised window, and TCP stacks
  that back off aggressively after timeouts.

Each campaign draws per-transfer conditions (sender model, loss,
collector load, table size) from a seeded mixture so the population
exhibits the heterogeneity behind the paper's Figures 3, 4, 14, 16 and
Tables II, IV, V, while every run stays exactly reproducible.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.detectors import (
    ConsecutiveLossReport,
    PeerGroupBlockingReport,
    TimerGapReport,
    ZeroAckBugReport,
    detect_long_keepalive_pauses,
    detect_peer_group_blocking,
)
from repro.analysis.factors import FactorReport
from repro.analysis.mct import TableTransfer, minimum_collection_time
from repro.analysis.tdat import ConnectionAnalysis, analyze_pcap
from repro.bgp.collector import CollectorCpu, QuaggaCollector, VendorCollector
from repro.bgp.messages import UpdateMessage
from repro.bgp.peer_group import PeerGroup
from repro.bgp.sender_models import (
    ImmediateSender,
    RateLimitedSender,
    TimerBatchSender,
)
from repro.bgp.table import Rib, generate_table
from repro.core.health import STAGE_EXEC, TraceHealth
from repro.core.units import seconds
from repro.exec.pool import (
    TIMEOUT_KIND,
    PoolInterrupted,
    TransientTaskError,
    WorkPool,
    task_attempt,
    task_context,
)
from repro.netsim.link import BernoulliLoss, WindowLoss
from repro.netsim.random import RandomStreams
from repro.netsim.simulator import SimBudget, Simulator
from repro.obs import MetricsRegistry, Observability, ObsExport, get_obs, use_obs
from repro.tcp.options import TcpConfig
from repro.tools.pcap2bgp import pcap_to_bgp
from repro.wire.pcap import write_pcap
from repro.workloads.checkpoint import (
    CampaignInterrupted,
    CampaignJournal,
    CheckpointWriteError,
    GracefulShutdown,
)
from repro.workloads.scenarios import MonitoringSetup, RouterParams

# Pathology labels (ground truth, recorded per transfer).
CLEAN = "clean"
TIMER = "timer"
RATE_LIMITED = "rate-limited"
UPSTREAM_LOSS = "upstream-loss"
DOWNSTREAM_LOSS = "downstream-loss"
LOADED_COLLECTOR = "loaded-collector"
ZERO_ACK_BUG = "zero-ack-bug"
PEER_GROUP = "peer-group"

#: the paper's observed timer values (section IV-B, Figure 17), in ms.
KNOWN_TIMERS_MS = (80, 100, 200, 400)


@dataclass
class TransferRecord:
    """One analyzed table transfer of a campaign."""

    campaign: str
    router: str
    episode: int
    trigger: str  # "sender" | "receiver"
    pathology: str
    table_prefixes: int
    wire_bytes: int
    data_packets: int
    rtt_us: int
    duration_us: int
    mct_ended_by: str
    concurrency: int
    true_timer_us: int | None
    factors: FactorReport
    timer: TimerGapReport
    consecutive: ConsecutiveLossReport
    zero_bug: ZeroAckBugReport
    keepalive_pause: PeerGroupBlockingReport | None = None

    @property
    def duration_s(self) -> float:
        return self.duration_us / 1e6

    def to_dict(self) -> dict:
        """JSON-friendly form, stable across execution backends.

        This is the byte-identity witness: serializing the records of a
        serial and a parallel campaign run must produce equal JSON.
        """
        return {
            "campaign": self.campaign,
            "router": self.router,
            "episode": self.episode,
            "trigger": self.trigger,
            "pathology": self.pathology,
            "table_prefixes": self.table_prefixes,
            "wire_bytes": self.wire_bytes,
            "data_packets": self.data_packets,
            "rtt_us": self.rtt_us,
            "duration_us": self.duration_us,
            "mct_ended_by": self.mct_ended_by,
            "concurrency": self.concurrency,
            "true_timer_us": self.true_timer_us,
            "factors": {
                "analysis_period_us": self.factors.analysis_period_us,
                "ratios": dict(self.factors.ratios),
                "group_ratios": dict(self.factors.group_ratios),
                "major_factors": self.factors.major_factors(),
            },
            "timer": {
                "detected": self.timer.detected,
                "timer_us": self.timer.timer_us,
                "gap_count": self.timer.gap_count,
                "induced_delay_us": self.timer.induced_delay_us,
            },
            "consecutive": {
                "detected": self.consecutive.detected,
                "episodes": self.consecutive.episodes,
                "worst_run": self.consecutive.worst_run,
                "induced_delay_us": self.consecutive.induced_delay_us,
            },
            "zero_bug": {
                "detected": self.zero_bug.detected,
                "occurrences": self.zero_bug.occurrences,
                "induced_delay_us": self.zero_bug.induced_delay_us,
            },
            "keepalive_pause": (
                {
                    "detected": self.keepalive_pause.detected,
                    "induced_delay_us": self.keepalive_pause.induced_delay_us,
                }
                if self.keepalive_pause is not None
                else None
            ),
        }


@dataclass
class CampaignResult:
    """All transfers of one campaign plus aggregate statistics."""

    name: str
    collector_kind: str
    records: list[TransferRecord] = field(default_factory=list)
    total_packets: int = 0
    total_bytes: int = 0
    routers: int = 0
    health: TraceHealth = field(default_factory=TraceHealth)
    # The campaign-level metrics snapshot (None when observability was
    # disabled).  Deliberately NOT part of to_dict(): the serialized
    # result is the serial/parallel byte-identity witness, and wall
    # metrics legitimately differ between runs.  Use
    # ``metrics.to_dict(deterministic_only=True)`` for the view that IS
    # identical across worker counts.
    metrics: MetricsRegistry | None = field(default=None, repr=False)

    def durations_s(self) -> list[float]:
        return sorted(r.duration_s for r in self.records)

    def by_pathology(self, pathology: str) -> list[TransferRecord]:
        return [r for r in self.records if r.pathology == pathology]

    def to_dict(self) -> dict:
        """JSON-friendly form (records in episode order + the ledger)."""
        return {
            "name": self.name,
            "collector_kind": self.collector_kind,
            "routers": self.routers,
            "total_packets": self.total_packets,
            "total_bytes": self.total_bytes,
            "records": [record.to_dict() for record in self.records],
            "health": self.health.to_dict(),
        }


@dataclass
class CampaignConfig:
    """Knobs of one campaign's mixture."""

    name: str
    collector_kind: str  # "vendor" | "quagga"
    seed: int
    transfers: int
    routers: int
    peer_group_episodes: int = 1
    zero_bug_episodes: int = 1
    # ISP backbones sit a few ms away; RouteViews peers much farther.
    rtt_range_ms: tuple[float, float] = (3.0, 12.0)
    collector_window: int = 65535
    rto_backoff_factor: float = 2.0
    table_sizes: tuple[int, ...] = (8_000, 20_000, 45_000)
    timer_values_ms: tuple[int, ...] = (100, 200)
    # Mixture weights: clean / timer / rate / up-loss / down-loss / loaded.
    # Timer-driven and rate-limited senders dominate, matching the
    # paper's finding that BGP application factors outnumber TCP ones.
    weights: tuple[float, ...] = (0.20, 0.30, 0.16, 0.10, 0.12, 0.12)
    # Residual path loss applied even to "clean" transfers (RouteViews
    # peers cross the open Internet; ISP_A backbones do not).
    background_loss_rate: float = 0.0
    # Random-loss severity of upstream-loss episodes: ISP backbones see
    # brief light congestion; Internet paths lose much more.
    upstream_loss_range: tuple[float, float] = (0.008, 0.02)
    # Fraction of AS-path hops drawn from 4-byte AS space (RFC 6793).
    wide_asn_fraction: float = 0.0
    # Scale of downstream blackout durations (RV's aggressive RTO
    # backoff turns longer blackouts into much longer recoveries).
    loss_window_scale: float = 1.0
    # Fault injection: these episode numbers raise a *transient* fault
    # (first attempt only) inside their worker — with retries disabled
    # it exercises the pool's per-transfer crash containment, with
    # retries enabled the episode recovers and matches a clean run.
    fail_episodes: tuple[int, ...] = ()
    # Simulation watchdog: per-episode budgets enforced inside the
    # simulator so a pathological scenario aborts as a
    # ``sim-budget-exceeded`` health issue instead of hanging the pool.
    # Event counts are deterministic (the default is ~500x a normal
    # episode); a wall-clock budget is host-dependent, hence opt-in.
    sim_event_budget: int | None = 5_000_000
    sim_wall_budget_s: float | None = None


def isp_vendor_config(seed: int = 11, transfers: int = 40) -> CampaignConfig:
    """ISP_A monitored by the vendor looking-glass (paper's ISP_A-1)."""
    return CampaignConfig(
        name="ISP_A-Vendor",
        collector_kind="vendor",
        seed=seed,
        transfers=transfers,
        routers=max(4, transfers // 5),
        timer_values_ms=(200, 400),
    )


def isp_quagga_config(seed: int = 22, transfers: int = 30) -> CampaignConfig:
    """ISP_A monitored by the Quagga collector (paper's ISP_A-2)."""
    return CampaignConfig(
        name="ISP_A-Quagga",
        collector_kind="quagga",
        seed=seed,
        transfers=transfers,
        routers=max(4, transfers // 5),
        timer_values_ms=(100, 200),
    )


def routeviews_config(seed: int = 33, transfers: int = 24) -> CampaignConfig:
    """RouteViews-style eBGP monitoring (paper's RV trace)."""
    return CampaignConfig(
        name="RV",
        collector_kind="vendor",
        seed=seed,
        transfers=transfers,
        routers=max(6, transfers // 3),
        rtt_range_ms=(15.0, 120.0),
        collector_window=16384,
        rto_backoff_factor=4.0,  # "backoff more aggressively" (IV-B)
        timer_values_ms=(80, 400),
        weights=(0.10, 0.22, 0.22, 0.22, 0.14, 0.10),
        background_loss_rate=0.012,
        loss_window_scale=3.0,
        upstream_loss_range=(0.02, 0.06),
        # RouteViews peers the open Internet: by 2010 4-byte ASNs were
        # appearing in paths (carried via AS_TRANS + AS4_PATH).
        wide_asn_fraction=0.08,
    )


PATHOLOGIES = (
    CLEAN, TIMER, RATE_LIMITED, UPSTREAM_LOSS, DOWNSTREAM_LOSS, LOADED_COLLECTOR,
)

#: factory registry: campaign name → config factory (``seed``,
#: ``transfers`` keyword overrides pass through).
CAMPAIGNS = {
    "ISP_A-Vendor": isp_vendor_config,
    "ISP_A-Quagga": isp_quagga_config,
    "RV": routeviews_config,
}


def campaign_config(name: str, **overrides) -> CampaignConfig:
    """Look up a campaign by name (Table I) and build its config."""
    try:
        factory = CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(sorted(CAMPAIGNS))
        raise ValueError(f"unknown campaign {name!r} (known: {known})") from None
    return factory(**overrides)


@dataclass
class EpisodeSpec:
    """Everything needed to simulate and analyze one transfer episode."""

    campaign: str
    collector_kind: str
    episode: int
    router: str
    pathology: str
    trigger: str
    table: Rib
    rtt_ms: float
    collector_window: int
    rto_backoff_factor: float
    timer_ms: int | None = None
    messages_per_tick: int = 10
    rate_bytes_per_s: float = 0.0
    loss_rate: float = 0.0
    loss_window_s: tuple[float, float] | None = None
    cpu_per_message_us: int = 60
    concurrency: int = 1
    seed: int = 0
    sim_event_budget: int | None = None
    sim_wall_budget_s: float | None = None


def _draw_specs(config: CampaignConfig) -> tuple[list[EpisodeSpec], dict[int, Rib]]:
    streams = RandomStreams(config.seed)
    rng = streams.stream("mixture")
    tables = {
        size: generate_table(
            size,
            streams.stream(f"table-{size}"),
            wide_asn_fraction=config.wide_asn_fraction,
        )
        for size in config.table_sizes
    }
    specs: list[EpisodeSpec] = []
    for episode in range(config.transfers):
        router_index = episode % config.routers
        if episode < len(PATHOLOGIES):
            # Guarantee coverage: the first six episodes cycle through
            # every pathology once; the rest follow the mixture.
            pathology = PATHOLOGIES[episode]
        else:
            pathology = rng.choices(PATHOLOGIES, config.weights)[0]
        size = rng.choice(config.table_sizes)
        rtt_ms = rng.uniform(*config.rtt_range_ms)
        trigger = "sender" if rng.random() < 0.7 else "receiver"
        spec = EpisodeSpec(
            campaign=config.name,
            collector_kind=config.collector_kind,
            episode=episode,
            router=f"{config.name}-r{router_index}",
            pathology=pathology,
            trigger=trigger,
            table=tables[size],
            rtt_ms=rtt_ms,
            collector_window=config.collector_window,
            rto_backoff_factor=config.rto_backoff_factor,
            seed=config.seed * 1000 + episode,
            sim_event_budget=config.sim_event_budget,
            sim_wall_budget_s=config.sim_wall_budget_s,
        )
        if pathology == CLEAN and config.background_loss_rate > 0:
            spec.loss_rate = config.background_loss_rate
        if pathology == TIMER:
            # Timer gaps need enough ticks to form a distribution: use
            # the biggest table and modest per-tick batches.
            spec.table = tables[max(config.table_sizes)]
            spec.timer_ms = rng.choice(config.timer_values_ms)
            spec.messages_per_tick = rng.choice((8, 15, 30))
            # A timer shorter than the RTT leaves no idle gap on the
            # wire: only nearby peers expose their timers (which is why
            # the paper could see them at all).
            spec.rtt_ms = min(spec.rtt_ms, spec.timer_ms / 3)
        elif pathology == RATE_LIMITED:
            spec.rate_bytes_per_s = rng.uniform(5_000, 40_000)
        elif pathology == UPSTREAM_LOSS:
            spec.loss_rate = rng.uniform(*config.upstream_loss_range)
        elif pathology == DOWNSTREAM_LOSS:
            # Blackout early enough to land inside the transfer, on the
            # biggest table so there is still data to lose.
            spec.table = tables[max(config.table_sizes)]
            # Start after session establishment and the first slow-start
            # rounds (both scale with the RTT) so whole flights die.
            start = rng.uniform(0.0, 0.01) + 7 * spec.rtt_ms / 1000
            length = rng.uniform(0.2, 1.0) * config.loss_window_scale
            spec.loss_window_s = (start, start + length)
        elif pathology == LOADED_COLLECTOR:
            # Receiver pressure is only visible when the table dwarfs
            # the receive buffer, so use the biggest one.
            spec.table = tables[max(config.table_sizes)]
            spec.cpu_per_message_us = rng.choice((1_500, 3_000, 6_000))
            if trigger == "receiver":
                spec.concurrency = rng.choice((2, 4, 6))
        specs.append(spec)
    return specs, tables


def _collector_class(kind: str):
    return QuaggaCollector if kind == "quagga" else VendorCollector


def _sender_model(spec: EpisodeSpec, sim: Simulator):
    if spec.pathology == TIMER:
        return TimerBatchSender(
            sim, spec.timer_ms * 1000, spec.messages_per_tick
        )
    if spec.pathology == RATE_LIMITED:
        return RateLimitedSender(sim, spec.rate_bytes_per_s)
    return ImmediateSender()


def run_episode(
    spec: EpisodeSpec,
    strict: bool = False,
    health: TraceHealth | None = None,
    pcap_out: io.BufferedIOBase | None = None,
) -> list[TransferRecord]:
    """Simulate one episode, capture it, and run T-DAT on the capture.

    With ``strict=True`` the analysis fails fast on any ingest damage;
    otherwise issues accumulate in ``health`` (a fresh ledger when not
    supplied).  ``pcap_out`` receives the episode's capture as a pcap
    byte stream (the checkpoint journal's payload).  The spec's
    watchdog budgets bound the simulation: a pathological scenario
    raises :class:`~repro.netsim.simulator.SimBudgetExceeded` instead
    of spinning forever.
    """
    sim = Simulator()
    streams = RandomStreams(spec.seed)
    setup = MonitoringSetup(
        sim,
        collector_cls=_collector_class(spec.collector_kind),
        collector_tcp=TcpConfig(recv_buffer_bytes=spec.collector_window),
        cpu=CollectorCpu(sim, per_message_us=spec.cpu_per_message_us),
    )
    upstream_delay = int(spec.rtt_ms * 1000 / 2) - 550
    handles = []
    for i in range(spec.concurrency):
        upstream_loss = None
        downstream_loss = None
        if spec.loss_rate > 0:
            upstream_loss = BernoulliLoss(
                spec.loss_rate, streams.stream(f"loss-{i}")
            )
        if spec.loss_window_s is not None:
            start_s, end_s = spec.loss_window_s
            downstream_loss = WindowLoss([(seconds(start_s), seconds(end_s))])
        params = RouterParams(
            name=f"{spec.router}-{i}" if spec.concurrency > 1 else spec.router,
            ip=f"10.{spec.episode % 250 + 1}.0.{i + 1}",
            table=spec.table,
            sender_model=_sender_model(spec, sim),
            tcp=TcpConfig(rto_backoff_factor=spec.rto_backoff_factor),
            upstream_delay_us=max(upstream_delay, 100),
            upstream_loss=upstream_loss,
            downstream_loss=downstream_loss,
        )
        handles.append(setup.add_router(params))
    tracer = get_obs().tracer
    with tracer.span(
        "episode.simulate", cat="campaign", args={"episode": spec.episode}
    ):
        setup.start()
        sim.run(until_us=seconds(900), budget=_spec_budget(spec))

    with tracer.span(
        "episode.analyze", cat="campaign", args={"episode": spec.episode}
    ):
        records = setup.sniffer.sorted_records()
        if pcap_out is not None:
            write_pcap(pcap_out, records)
        report = analyze_pcap(
            records, min_data_packets=2, strict=strict, health=health
        )
        transfer_extents = _transfer_extents(setup, records)
        results: list[TransferRecord] = []
        for handle in handles:
            key = _connection_key(handle, setup)
            if key not in report.analyses:
                continue
            analysis = report.get(key)
            extent = transfer_extents.get(key)
            window = (0, extent.end_us) if extent is not None else None
            if window is not None:
                # Re-run the pipeline clipped to the MCT window, as the
                # paper's analysis period is the table-transfer extent.
                from repro.analysis.tdat import analyze_connection

                analysis = analyze_connection(
                    analysis.connection, window=window
                )
            results.append(_make_record(spec, handle, analysis, extent))
    return results


def _spec_budget(spec: EpisodeSpec) -> SimBudget | None:
    """The watchdog budget one episode's simulation runs under."""
    if spec.sim_event_budget is None and spec.sim_wall_budget_s is None:
        return None
    return SimBudget(
        max_events=spec.sim_event_budget,
        max_wall_s=spec.sim_wall_budget_s,
    )


def _connection_key(handle, setup) -> tuple:
    from repro.analysis.profile import canonical_key

    return canonical_key(
        handle.params.ip,
        handle.endpoint.local_port,
        setup.collector_host.ip,
        179,
    )


def _transfer_extents(setup, records) -> dict[tuple, TableTransfer]:
    """MCT per connection: archive-based for Quagga, pcap2bgp otherwise."""
    from repro.analysis.profile import canonical_key

    extents: dict[tuple, TableTransfer] = {}
    if setup.collector.archives_mrt:
        by_peer: dict[str, list] = {}
        for record in setup.collector.archive:
            if isinstance(record.message, UpdateMessage):
                by_peer.setdefault(record.peer_ip, []).append(
                    (record.timestamp_us, record.message)
                )
        for handle in setup.routers:
            updates = by_peer.get(handle.params.ip, [])
            transfer = minimum_collection_time(updates, start_us=0)
            if transfer is not None:
                key = _connection_key(handle, setup)
                extents[key] = transfer
    else:
        for key, stream in pcap_to_bgp(records).items():
            updates = [(m.timestamp_us, m.message) for m in stream.updates()]
            transfer = minimum_collection_time(updates, start_us=0)
            if transfer is not None:
                extents[key] = transfer
    return extents


def _make_record(
    spec: EpisodeSpec,
    handle,
    analysis: ConnectionAnalysis,
    extent: TableTransfer | None,
) -> TransferRecord:
    profile = analysis.connection.profile
    duration = extent.duration_us if extent is not None else profile.duration_us
    pause = detect_long_keepalive_pauses(analysis.series, analysis.connection)
    return TransferRecord(
        campaign=spec.campaign,
        router=spec.router,
        episode=spec.episode,
        trigger=spec.trigger,
        pathology=spec.pathology,
        table_prefixes=len(spec.table),
        wire_bytes=profile.total_data_bytes,
        data_packets=profile.total_data_packets,
        rtt_us=profile.rtt_us,
        duration_us=max(duration, 1),
        mct_ended_by=extent.ended_by if extent is not None else "none",
        concurrency=spec.concurrency,
        true_timer_us=spec.timer_ms * 1000 if spec.timer_ms else None,
        factors=analysis.factors,
        timer=analysis.timer_gaps,
        consecutive=analysis.consecutive_losses,
        zero_bug=analysis.zero_ack_bug,
        keepalive_pause=pause,
    )


def _campaign_task(
    task: tuple[str, int]
) -> tuple[list[TransferRecord], TraceHealth, bytes | None, ObsExport | None]:
    """Work-pool task: simulate + analyze one campaign work unit.

    The (config, specs, strict, want_pcap, want_obs) tuple rides in the
    pool context — the specs embed full RIB tables, so shipping them
    per-task instead would dominate the fan-out cost.  Returns the
    unit's records, its private health ledger for the parent to merge
    in order, (when the campaign journals checkpoints) the episode's
    capture as pcap bytes, and (when observability is on) the task's
    :class:`~repro.obs.ObsExport` for the parent to fold in task order.

    Observability is *task-local*: whether the task runs inline
    (serial) or in a worker, it installs its own fresh context for the
    duration, so the instruments it records are identical either way —
    the property behind the deterministic workers=1 vs workers=N
    metrics snapshot.

    Injected faults from ``config.fail_episodes`` are *transient*: they
    raise :class:`~repro.exec.pool.TransientTaskError` on the first
    attempt only, so a pool with retries recovers the episode while a
    pool without them contains the crash.
    """
    config, specs, strict, want_pcap, want_obs = task_context()
    kind, index = task
    episode_health = TraceHealth()
    pcap_out = io.BytesIO() if want_pcap else None
    task_obs = Observability.create() if want_obs else None
    with use_obs(task_obs) as obs:
        with obs.tracer.span(
            "campaign.episode", cat="campaign",
            args={"kind": kind, "index": index},
        ):
            if kind == "episode":
                spec = specs[index]
                if spec.episode in config.fail_episodes and task_attempt() == 0:
                    raise TransientTaskError(
                        f"injected transient fault in episode {spec.episode}"
                    )
                records = run_episode(
                    spec, strict=strict, health=episode_health,
                    pcap_out=pcap_out,
                )
            else:
                record = run_zero_ack_bug_episode(
                    config, index=index, strict=strict, health=episode_health,
                    pcap_out=pcap_out,
                )
                records = [record] if record is not None else []
        if task_obs is not None:
            obs.metrics.counter("campaign.episodes").inc()
            obs.metrics.counter("campaign.records").inc(len(records))
    return (
        records,
        episode_health,
        pcap_out.getvalue() if pcap_out is not None else None,
        task_obs.export() if task_obs is not None else None,
    )


#: TaskError.kind -> health issue kind, for supervisor-classified
#: failures; anything else is a plain transfer crash.
_FAILURE_ISSUE_KINDS = {
    "SimBudgetExceeded": "sim-budget-exceeded",
    TIMEOUT_KIND: "task-timeout",
}


def _task_label(task: tuple[str, int], specs: list[EpisodeSpec]) -> str:
    kind, index = task
    if kind == "episode":
        return f"episode {specs[index].episode}"
    return f"zero-bug episode {index}"


def run_campaign(
    config: CampaignConfig,
    workers: int = 1,
    pool: WorkPool | None = None,
    strict: bool = False,
    health: TraceHealth | None = None,
    checkpoint_dir: str | Path | None = None,
    resume_from: str | Path | None = None,
    shutdown: GracefulShutdown | None = None,
    on_episode=None,
) -> CampaignResult:
    """Run every episode of a campaign and collect the records.

    ``workers=N`` (or an explicit ``pool``) fans the episodes out
    across worker processes; records come back in episode order, so the
    result is identical to a serial run.  A transfer that crashes — in
    a worker or inline — is contained: it becomes a ``transfer-crashed``
    issue in the result's :class:`TraceHealth` and the rest of the
    campaign completes; a simulation that outgrows its watchdog budget
    becomes ``sim-budget-exceeded``, a task killed by the pool's
    per-task timeout ``task-timeout``, and an episode that succeeded
    only after retries ``task-retried`` (benign).  ``strict=True``
    applies fail-fast *analysis* inside each episode (damaged ingest
    aborts that transfer), which surfaces through the same containment
    path.

    ``checkpoint_dir`` journals every completed episode (records +
    health + pcap, fsync'd) under that directory as the campaign runs;
    while checkpointing, SIGINT/SIGTERM drain in-flight episodes,
    flush the journal, and raise
    :class:`~repro.workloads.checkpoint.CampaignInterrupted`.
    ``resume_from`` loads a journal written by an identical config
    (verified via the manifest hash) and skips its completed episodes —
    the merged result is byte-identical to an uninterrupted run, save
    for one benign ``campaign-resumed`` issue recording the restore.
    ``on_episode(task, outcome)`` is invoked as each episode resolves
    (progress reporting); ``shutdown`` overrides the signal-driven
    drain trigger (embedding apps, tests).
    """
    specs, _tables = _draw_specs(config)
    if health is None:
        health = TraceHealth()
    result = CampaignResult(
        name=config.name,
        collector_kind=config.collector_kind,
        routers=config.routers,
        health=health,
    )
    if pool is None:
        pool = WorkPool(workers=workers)
    tasks: list[tuple[str, int]] = [("episode", i) for i in range(len(specs))]
    # Dedicated pathological episodes ride the same pool, after the
    # mixture episodes so record order matches the legacy serial loop.
    tasks += [("zero-bug", i) for i in range(config.zero_bug_episodes)]

    if resume_from is not None and checkpoint_dir is None:
        checkpoint_dir = resume_from
    journal = None
    cached: dict[tuple[str, int], tuple[list, TraceHealth]] = {}
    if checkpoint_dir is not None:
        # Opening the journal scans it and salvages a torn tail (a
        # benign checkpoint-salvaged issue on ``health``); a journal
        # that cannot even be created (disk full) is typed the same as
        # a mid-run write failure: interrupted, resumable.
        try:
            journal = CampaignJournal(checkpoint_dir, config, health=health)
        except CheckpointWriteError as exc:
            raise CampaignInterrupted(
                config.name, completed=0, total=len(tasks),
                checkpoint_dir=checkpoint_dir,
                reason=f"checkpoint write failed: {exc}",
            ) from exc
        if resume_from is not None:
            wanted = set(tasks)
            cached = {
                task: entry
                for task, entry in journal.load().items()
                if task in wanted
            }
            if cached:
                health.record(
                    STAGE_EXEC, "campaign-resumed",
                    detail=(
                        f"{config.name}: restored {len(cached)}/{len(tasks)} "
                        f"episode(s) from {checkpoint_dir}"
                    ),
                    benign=True,
                )
    obs = get_obs()
    todo = [task for task in tasks if task not in cached]
    context = (config, specs, strict, journal is not None, obs.enabled)

    fresh: dict[tuple[str, int], object] = {}

    def _episode_done(outcome) -> None:
        task = todo[outcome.index]
        # Journal before counting the episode as fresh: if the write
        # fails (CheckpointWriteError propagating out of pool.map), the
        # interrupted-progress count only covers episodes that are
        # actually on disk and will survive a resume.
        if journal is not None and outcome.ok:
            records, episode_health, pcap_bytes, _obs = outcome.value
            journal.write(task, records, episode_health, pcap_bytes)
        fresh[task] = outcome
        if on_episode is not None:
            on_episode(task, outcome)

    # Graceful shutdown is meaningful only when there is a journal to
    # resume from; without one, SIGINT stays a plain KeyboardInterrupt.
    if shutdown is None:
        shutdown = GracefulShutdown(install_signals=journal is not None)
    interrupted = False
    interrupt_reason = ""
    with shutdown:
        try:
            with obs.tracer.span(
                "campaign.map", cat="campaign",
                args={"name": config.name, "tasks": len(todo)},
            ):
                pool.map(
                    _campaign_task, todo, context=context,
                    should_stop=(
                        shutdown.requested if journal is not None else None
                    ),
                    on_outcome=_episode_done,
                )
        except PoolInterrupted:
            interrupted = True
        except CheckpointWriteError as exc:
            # The journal cannot make progress (disk full, EIO ...).
            # The pool's finally block already reaped every worker;
            # everything journaled before the failure resumes cleanly.
            interrupted = True
            interrupt_reason = f"checkpoint write failed: {exc}"
    if interrupted:
        raise CampaignInterrupted(
            config.name,
            completed=len(cached) + len(fresh),
            total=len(tasks),
            checkpoint_dir=checkpoint_dir,
            reason=interrupt_reason,
        )

    def _fold(records: list[TransferRecord], episode_health: TraceHealth):
        health.merge(episode_health)
        for record in records:
            result.records.append(record)
            result.total_packets += record.data_packets
            result.total_bytes += record.wire_bytes

    # Fold in *task* order (not completion order): counter/histogram
    # merges commute, but span append order and gauge last-values
    # follow the fold, so this is what keeps the merged snapshot
    # independent of worker count and scheduling.
    for task_number, task in enumerate(tasks, start=1):
        if task in cached:
            # Episodes restored from a checkpoint journal carry no
            # observability export: their metrics were recorded (and
            # discarded) by the run that originally produced them.
            records, episode_health = cached[task]
            _fold(records, episode_health)
            continue
        outcome = fresh[task]
        label = _task_label(task, specs)
        if not outcome.ok:
            issue_kind = _FAILURE_ISSUE_KINDS.get(
                outcome.error.kind, "transfer-crashed"
            )
            detail = f"{config.name} {label}: {outcome.error}"
            if outcome.attempts > 1:
                detail += f" (after {outcome.attempts} attempts)"
            health.record(STAGE_EXEC, issue_kind, detail=detail)
            continue
        if outcome.attempts > 1:
            last = outcome.retried[-1] if outcome.retried else None
            health.record(
                STAGE_EXEC, "task-retried",
                detail=(
                    f"{config.name} {label}: succeeded on attempt "
                    f"{outcome.attempts}"
                    + (f" after {last}" if last is not None else "")
                ),
                benign=True,
            )
        records, episode_health, _pcap, obs_export = outcome.value
        if obs_export is not None and obs.enabled:
            # One Perfetto track per episode: tid 0 stays the parent's.
            obs.absorb(obs_export, tid=task_number)
        _fold(records, episode_health)
    if obs.enabled:
        result.metrics = obs.metrics
    return result


# ---------------------------------------------------------------------- #
# Special episodes                                                         #
# ---------------------------------------------------------------------- #
def run_zero_ack_bug_episode(
    config: CampaignConfig,
    index: int = 0,
    strict: bool = False,
    health: TraceHealth | None = None,
    pcap_out: io.BufferedIOBase | None = None,
) -> TransferRecord | None:
    """A transfer whose sender TCP has the zero-window probe bug."""
    sim = Simulator()
    streams = RandomStreams(config.seed + 777 + index)
    setup = MonitoringSetup(
        sim,
        collector_cls=_collector_class(config.collector_kind),
        collector_tcp=TcpConfig(recv_buffer_bytes=8 * 1400, mss=1400),
        # A bursty receiver app: long read stalls create the repeated
        # zero-window episodes that arm persist probes, and the resume
        # instants race the probe transmission (the bug's trigger).
        cpu=CollectorCpu(
            sim,
            per_message_us=400,
            stall_every_us=seconds(1.2),
            stall_duration_us=620_000,
        ),
    )
    table = generate_table(120_000, streams.stream("table"))
    params = RouterParams(
        name=f"{config.name}-bug{index}",
        ip="10.254.0.1",
        table=table,
        tcp=TcpConfig(zero_ack_bug=True, zero_window_probe_delay_us=200_000),
    )
    handle = setup.add_router(params)
    tracer = get_obs().tracer
    with tracer.span(
        "episode.simulate", cat="campaign", args={"episode": 10_000 + index}
    ):
        setup.start()
        sim.run(
            until_us=seconds(900),
            budget=SimBudget(
                max_events=config.sim_event_budget,
                max_wall_s=config.sim_wall_budget_s,
            )
            if config.sim_event_budget is not None
            or config.sim_wall_budget_s is not None
            else None,
        )
    with tracer.span(
        "episode.analyze", cat="campaign", args={"episode": 10_000 + index}
    ):
        records = setup.sniffer.sorted_records()
        if pcap_out is not None:
            write_pcap(pcap_out, records)
        report = analyze_pcap(
            records, min_data_packets=2, strict=strict, health=health
        )
        key = _connection_key(handle, setup)
        if key not in report.analyses:
            return None
        extents = _transfer_extents(setup, records)
        extent = extents.get(key)
        analysis = report.get(key)
        if extent is not None:
            from repro.analysis.tdat import analyze_connection

            analysis = analyze_connection(
                analysis.connection, window=(0, extent.end_us)
            )
    spec = EpisodeSpec(
        campaign=config.name,
        collector_kind=config.collector_kind,
        episode=10_000 + index,
        router=params.name,
        pathology=ZERO_ACK_BUG,
        trigger="sender",
        table=table,
        rtt_ms=9.0,
        collector_window=8 * 1400,
        rto_backoff_factor=2.0,
    )
    return _make_record(spec, handle, analysis, extent)


@dataclass
class PeerGroupEpisodeResult:
    """Output of one peer-group blocking episode."""

    blocked_report: PeerGroupBlockingReport
    quagga_record: TransferRecord | None
    blocking_duration_us: int


def run_peer_group_episode(
    seed: int = 99,
    hold_time_s: int = 180,
    table_size: int = 20_000,
    fail_after_s: float = 2.0,
    campaign: str = "ISP_A",
) -> PeerGroupEpisodeResult:
    """One router replicating to Quagga + Vendor collectors; the vendor
    box dies mid-transfer and blocks the group until its hold timer
    fires — the paper's Figure 9 / Table V scenario."""
    from repro.bgp.speaker import BgpSession

    sim = Simulator()
    streams = RandomStreams(seed)
    setup_q = MonitoringSetup(
        sim, collector_cls=QuaggaCollector, collector_ip="10.255.0.1",
        hold_time_s=hold_time_s,
    )
    setup_v = MonitoringSetup(
        sim, collector_cls=VendorCollector, collector_ip="10.255.0.2",
        hold_time_s=hold_time_s,
    )
    table = generate_table(table_size, streams.stream("table"))
    params_q = RouterParams(
        name="rtr", ip="10.9.0.1", table=None, hold_time_s=hold_time_s,
        announce_on_established=False,
    )
    handle_q = setup_q.add_router(params_q)
    params_v = RouterParams(
        name="rtr", ip="10.9.0.1", table=None, hold_time_s=hold_time_s,
        announce_on_established=False,
    )
    handle_v = setup_v.add_router(params_v, host=handle_q.host)
    group = PeerGroup(
        sim,
        [handle_q.session, handle_v.session],
        batch_messages=10,
        poll_interval_us=20_000,
    )
    setup_q.start()
    setup_v.start()
    sim.run(until_us=seconds(2))  # establish both sessions
    group.announce_table(table)
    # The vendor box dies ``fail_after_s`` into the transfer (t1 of the
    # paper's Figure 9).
    sim.schedule(seconds(fail_after_s), setup_v.collector.kill)
    sim.run(until_us=seconds(hold_time_s + 120))

    report_q = analyze_pcap(setup_q.sniffer.sorted_records(), min_data_packets=2)
    report_v = analyze_pcap(setup_v.sniffer.sorted_records(), min_data_packets=2)
    key_q = _connection_key(handle_q, setup_q)
    key_v = _connection_key(handle_v, setup_v)
    analysis_q = report_q.analyses.get(key_q)
    analysis_v = report_v.analyses.get(key_v)
    blocked = PeerGroupBlockingReport(detected=False)
    if analysis_q is not None and analysis_v is not None:
        blocked = detect_peer_group_blocking(
            analysis_q.series, analysis_q.connection, analysis_v.series
        )
    quagga_record = None
    if analysis_q is not None:
        extents = _transfer_extents(setup_q, setup_q.sniffer.sorted_records())
        extent = extents.get(key_q)
        spec = EpisodeSpec(
            campaign=campaign,
            collector_kind="quagga",
            episode=20_000,
            router="rtr",
            pathology=PEER_GROUP,
            trigger="receiver",
            table=table,
            rtt_ms=9.0,
            collector_window=65535,
            rto_backoff_factor=2.0,
        )
        quagga_record = _make_record(spec, handle_q, analysis_q, extent)
    return PeerGroupEpisodeResult(
        blocked_report=blocked,
        quagga_record=quagga_record,
        blocking_duration_us=blocked.induced_delay_us,
    )


def run_concurrency_sweep(
    concurrencies: tuple[int, ...] = (1, 2, 4, 8, 12, 16),
    seed: int = 55,
    table_size: int = 40_000,
    cpu_per_message_us: int = 40,
) -> dict[int, dict[str, float]]:
    """The paper's Figure 15: concurrent transfers vs receiver ratios.

    Returns, per concurrency level, the mean ``bgp_receiver_app`` and
    ``tcp_advertised_window`` delay ratios across the concurrent
    transfers.
    """
    results: dict[int, dict[str, float]] = {}
    table = generate_table(table_size, RandomStreams(seed).stream("table"))
    for k in concurrencies:
        sim = Simulator()
        setup = MonitoringSetup(
            sim,
            cpu=CollectorCpu(sim, per_message_us=cpu_per_message_us),
        )
        handles = []
        for i in range(k):
            handles.append(
                setup.add_router(
                    RouterParams(
                        name=f"c{i}",
                        ip=f"10.77.0.{i + 1}",
                        table=table,
                    )
                )
            )
        setup.start()
        sim.run(until_us=seconds(900))
        records = setup.sniffer.sorted_records()
        report = analyze_pcap(records, min_data_packets=2)
        extents = _transfer_extents(setup, records)
        bgp_ratios = []
        tcp_ratios = []
        for handle in handles:
            key = _connection_key(handle, setup)
            if key not in report.analyses:
                continue
            extent = extents.get(key)
            analysis = report.get(key)
            if extent is not None:
                from repro.analysis.tdat import analyze_connection

                analysis = analyze_connection(
                    analysis.connection, window=(0, extent.end_us)
                )
            bgp_ratios.append(analysis.factors.ratios["bgp_receiver_app"])
            tcp_ratios.append(analysis.factors.ratios["tcp_advertised_window"])
        results[k] = {
            "bgp_receiver_app": sum(bgp_ratios) / max(len(bgp_ratios), 1),
            "tcp_advertised_window": sum(tcp_ratios) / max(len(tcp_ratios), 1),
        }
    return results
