"""Workload generation: synthetic tables, scenarios and campaigns."""

from repro.workloads.campaign import (
    CAMPAIGNS,
    CampaignConfig,
    CampaignResult,
    EpisodeSpec,
    PeerGroupEpisodeResult,
    TransferRecord,
    campaign_config,
    isp_quagga_config,
    isp_vendor_config,
    routeviews_config,
    run_concurrency_sweep,
    run_episode,
    run_peer_group_episode,
    run_zero_ack_bug_episode,
)
from repro.workloads.churn import ChurnGenerator, ResetStorm
from repro.workloads.scenarios import (
    COLLECTOR_PORT,
    MonitoringSetup,
    RouterHandle,
    RouterParams,
)


def __getattr__(name: str):
    # Deprecated re-export: the supported entry point is the
    # repro.api facade (engine code imports repro.workloads.campaign).
    if name == "run_campaign":
        from repro.core.deprecation import warn_deprecated
        from repro.workloads.campaign import run_campaign

        warn_deprecated(
            "importing run_campaign from repro.workloads is deprecated; "
            "use repro.api.Pipeline().campaign(...) or import it from "
            "repro.workloads.campaign"
        )
        return run_campaign
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CAMPAIGNS",
    "COLLECTOR_PORT",
    "CampaignConfig",
    "campaign_config",
    "CampaignResult",
    "ChurnGenerator",
    "ResetStorm",
    "EpisodeSpec",
    "MonitoringSetup",
    "PeerGroupEpisodeResult",
    "RouterHandle",
    "RouterParams",
    "TransferRecord",
    "isp_quagga_config",
    "isp_vendor_config",
    "routeviews_config",
    "run_campaign",
    "run_concurrency_sweep",
    "run_episode",
    "run_peer_group_episode",
    "run_zero_ack_bug_episode",
]
