"""Workload generation: synthetic tables, scenarios and campaigns."""

from repro.workloads.campaign import (
    CampaignConfig,
    CampaignResult,
    EpisodeSpec,
    PeerGroupEpisodeResult,
    TransferRecord,
    isp_quagga_config,
    isp_vendor_config,
    routeviews_config,
    run_campaign,
    run_concurrency_sweep,
    run_episode,
    run_peer_group_episode,
    run_zero_ack_bug_episode,
)
from repro.workloads.churn import ChurnGenerator, ResetStorm
from repro.workloads.scenarios import (
    COLLECTOR_PORT,
    MonitoringSetup,
    RouterHandle,
    RouterParams,
)

__all__ = [
    "COLLECTOR_PORT",
    "CampaignConfig",
    "CampaignResult",
    "ChurnGenerator",
    "ResetStorm",
    "EpisodeSpec",
    "MonitoringSetup",
    "PeerGroupEpisodeResult",
    "RouterHandle",
    "RouterParams",
    "TransferRecord",
    "isp_quagga_config",
    "isp_vendor_config",
    "routeviews_config",
    "run_campaign",
    "run_concurrency_sweep",
    "run_episode",
    "run_peer_group_episode",
    "run_zero_ack_bug_episode",
]
