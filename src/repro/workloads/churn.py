"""Session churn: reset storms and steady-state update churn.

Two workload elements beyond the initial table transfer:

* :class:`ResetStorm` — the paper's ISP_A-Vendor trace held 10,396
  transfers because "a vendor bug ... triggered frequent BGP session
  resets" (section II-B).  The storm repeatedly tears a session down
  and reconnects on a fresh source port, so one capture holds many
  back-to-back transfers, each its own TCP connection.
* :class:`ChurnGenerator` — steady-state BGP churn after the transfer:
  re-announcements and withdraw/announce flaps.  This is what MCT's
  duplicate rule exists for: the transfer ends where *new* prefixes
  stop, even though updates keep flowing (and it is the paper's named
  future work: update bursts beyond the initial transfer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.messages import UpdateMessage, encode_message
from repro.bgp.speaker import BgpSession
from repro.bgp.table import Rib, Route, _random_attributes
from repro.core.units import US_PER_SECOND, seconds
from repro.netsim.simulator import Simulator
from repro.tcp.socket import TcpEndpoint
from repro.workloads.scenarios import COLLECTOR_PORT, MonitoringSetup, RouterHandle


@dataclass
class ResetEvent:
    """One completed incarnation of the stormy session."""

    port: int
    connected_at_us: int
    reset_at_us: int | None


class ResetStorm:
    """Repeatedly resets a router's BGP session, retransferring its table.

    Each incarnation uses a fresh source port (as a real router's TCP
    stack would), so the capture contains one TCP connection per
    transfer and T-DAT analyzes each independently.
    """

    def __init__(
        self,
        sim: Simulator,
        setup: MonitoringSetup,
        handle: RouterHandle,
        reset_interval_us: int,
        resets: int,
    ) -> None:
        if resets < 0:
            raise ValueError(f"negative reset count {resets}")
        self.sim = sim
        self.setup = setup
        self.handle = handle
        self.reset_interval_us = reset_interval_us
        self.remaining = resets
        self.events: list[ResetEvent] = []
        self._current_port = handle.endpoint.local_port
        self._current_session = handle.session
        self.events.append(
            ResetEvent(port=self._current_port, connected_at_us=sim.now,
                       reset_at_us=None)
        )
        sim.schedule(reset_interval_us, self._reset)

    @property
    def incarnations(self) -> int:
        """How many connections the storm has produced so far."""
        return len(self.events)

    def _reset(self) -> None:
        if self.remaining <= 0:
            return
        self.remaining -= 1
        now = self.sim.now
        self.events[-1].reset_at_us = now
        # Tear down the current incarnation (the "vendor bug" reset).
        self._current_session.shutdown(notify=False)
        # Bring up the next one on a fresh source port.
        self._current_port += 1
        params = self.handle.params
        collector_endpoint = TcpEndpoint(
            self.sim,
            self.setup.collector_host,
            COLLECTOR_PORT,
            params.ip,
            self._current_port,
            config=self.setup.collector_tcp,
        )
        collector_endpoint.listen()
        self.setup.collector.add_session(
            collector_endpoint, peer_as=params.local_as, peer_ip=params.ip
        )
        router_endpoint = TcpEndpoint(
            self.sim,
            self.handle.host,
            self._current_port,
            self.setup.collector_host.ip,
            COLLECTOR_PORT,
            config=params.tcp,
        )
        session = BgpSession(
            self.sim,
            router_endpoint,
            local_as=params.local_as,
            bgp_id=params.ip,
            hold_time_s=params.hold_time_s,
            rib=params.table,
            sender_model=None,  # a fresh ImmediateSender per incarnation
            on_established=lambda s: s.announce_table(),
        )
        self._current_session = session
        self.events.append(
            ResetEvent(port=self._current_port, connected_at_us=now,
                       reset_at_us=None)
        )
        router_endpoint.connect()
        if self.remaining > 0:
            self.sim.schedule(self.reset_interval_us, self._reset)


class ChurnGenerator:
    """Steady-state BGP churn on an established session.

    Every tick (exponentially distributed with mean ``1/rate``), either
    re-announce an existing prefix with fresh attributes or flap it
    (withdraw then announce).  The announced prefixes all pre-exist in
    the table, so MCT's duplicate rule correctly refuses to extend the
    transfer into the churn.
    """

    def __init__(
        self,
        sim: Simulator,
        session: BgpSession,
        table: Rib,
        rate_per_s: float,
        rng,
        flap_fraction: float = 0.3,
        start_after_us: int = 0,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"non-positive churn rate {rate_per_s}")
        self.sim = sim
        self.session = session
        self.table = table
        self.rate_per_s = rate_per_s
        self.rng = rng
        self.flap_fraction = flap_fraction
        self.updates_sent = 0
        self.withdrawals_sent = 0
        self._prefixes = table.prefixes()
        sim.schedule(start_after_us + self._next_delay(), self._tick)

    def _next_delay(self) -> int:
        return max(1, round(self.rng.expovariate(self.rate_per_s) * US_PER_SECOND))

    def _tick(self) -> None:
        if self.session.endpoint.state.value != "established":
            return  # session gone; churn dies with it
        prefix = self.rng.choice(self._prefixes)
        attributes = _random_attributes(self.rng, "10.0.0.1", 3000)
        if self.rng.random() < self.flap_fraction:
            self.session.send_message(UpdateMessage(withdrawn=(prefix,)))
            self.withdrawals_sent += 1
        self.session.send_message(
            UpdateMessage(announced=(prefix,), attributes=attributes)
        )
        self.updates_sent += 1
        self.sim.schedule(self._next_delay(), self._tick)
