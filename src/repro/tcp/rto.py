"""Retransmission timeout estimation (Jacobson/Karn, RFC 6298).

The paper observes that RouteViews connections "backoff more
aggressively", with the RTO jumping to seconds after two or three
timeouts (section IV-B).  The estimator therefore exposes the backoff
factor and RTO floor/ceiling as configuration so campaigns can model
both conservative ISP stacks and aggressive collector stacks.
"""

from __future__ import annotations

from repro.core.units import seconds


class RttEstimator:
    """SRTT/RTTVAR smoothing and the derived retransmission timeout."""

    def __init__(
        self,
        initial_rto_us: int = seconds(1.0),
        min_rto_us: int = seconds(0.2),
        max_rto_us: int = seconds(60.0),
        backoff_factor: float = 2.0,
        alpha: float = 1 / 8,
        beta: float = 1 / 4,
        k: float = 4.0,
    ) -> None:
        if min_rto_us <= 0 or max_rto_us < min_rto_us:
            raise ValueError("invalid RTO bounds")
        if backoff_factor < 1.0:
            raise ValueError(f"backoff factor {backoff_factor} < 1")
        self.min_rto_us = min_rto_us
        self.max_rto_us = max_rto_us
        self.backoff_factor = backoff_factor
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self.srtt_us: float | None = None
        self.rttvar_us: float = 0.0
        self._base_rto_us = float(initial_rto_us)
        self._backoff_exponent = 0
        self.samples = 0

    @property
    def rto_us(self) -> int:
        """The current timeout, with backoff and bounds applied."""
        rto = self._base_rto_us * (self.backoff_factor ** self._backoff_exponent)
        return int(min(max(rto, self.min_rto_us), self.max_rto_us))

    def on_rtt_sample(self, rtt_us: int) -> None:
        """Fold in one RTT measurement (from a never-retransmitted segment).

        Karn's rule — never sample retransmitted segments — is enforced
        by the caller, which knows retransmission state.
        """
        if rtt_us < 0:
            raise ValueError(f"negative RTT sample {rtt_us}")
        if self.srtt_us is None:
            self.srtt_us = float(rtt_us)
            self.rttvar_us = rtt_us / 2
        else:
            err = abs(self.srtt_us - rtt_us)
            self.rttvar_us = (1 - self.beta) * self.rttvar_us + self.beta * err
            self.srtt_us = (1 - self.alpha) * self.srtt_us + self.alpha * rtt_us
        self._base_rto_us = self.srtt_us + max(
            self.k * self.rttvar_us, 1000.0
        )
        self._backoff_exponent = 0
        self.samples += 1

    def on_timeout(self) -> None:
        """Exponential backoff after a retransmission timer expiry."""
        self._backoff_exponent += 1

    def reset_backoff(self) -> None:
        """Clear backoff once new data is acknowledged."""
        self._backoff_exponent = 0

    @property
    def backoff_exponent(self) -> int:
        """How many consecutive timeouts have backed the timer off."""
        return self._backoff_exponent
