"""The send half of a TCP endpoint.

Implements the send buffer, sliding window against
``min(cwnd, peer advertised window)``, RTT sampling under Karn's rule,
RTO retransmission with exponential backoff, fast retransmit / fast
recovery per the configured flavour, zero-window persist probing — and,
optionally, the zero-window-probe implementation bug the paper
discovered in operational routers (section IV-B, *ZeroAckBug*): if a
window-update ACK arrives after the probe was created but before it is
transmitted, the buggy stack discards the probe yet still counts it as
outstanding, stalling until the retransmission timer resends it.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.netsim.simulator import Simulator, Timer
from repro.tcp.congestion import make_congestion_control
from repro.tcp.options import TcpConfig
from repro.tcp.rto import RttEstimator


class SendHalf:
    """Reliability and congestion control for one direction."""

    def __init__(
        self,
        sim: Simulator,
        config: TcpConfig,
        transmit: Callable[[int, bytes, bool], None],
        on_buffer_drained: Callable[[], None] | None = None,
    ) -> None:
        """``transmit(rel_seq, payload, is_retransmission)`` puts a segment
        on the wire with the current cumulative ACK piggybacked."""
        self.sim = sim
        self.config = config
        self._transmit = transmit
        self.on_buffer_drained = on_buffer_drained
        self.cc = make_congestion_control(
            config.flavor,
            config.mss,
            config.initial_cwnd_mss,
            config.initial_ssthresh_bytes,
        )
        self.rtt = RttEstimator(
            initial_rto_us=config.initial_rto_us,
            min_rto_us=config.min_rto_us,
            max_rto_us=config.max_rto_us,
            backoff_factor=config.rto_backoff_factor,
        )
        # Relative sequence space: 0 == first payload byte.
        self.snd_una = 0
        self.snd_nxt = 0
        self._buffer = bytearray()  # bytes from snd_una onward (unacked+unsent)
        self._buffer_base = 0
        self.peer_window_right_edge = 0  # highest (ack + wnd) seen
        self.peer_window = 0
        self._dupacks = 0
        self._send_times: dict[int, int] = {}
        self._retransmitted_seqs: set[int] = set()
        self._rto_timer = Timer(sim, self._on_rto, name="rto")
        # After an RTO, snd_nxt is pulled back to snd_una (go-back-N);
        # sends below this mark are retransmissions of lost flights.
        self._pullback_until = 0
        # SACK state (active only when the endpoint negotiated it):
        # scoreboard of selectively acknowledged byte ranges, plus the
        # holes already retransmitted in the current recovery round.
        self.sack_enabled = False
        from repro.core.timeranges import TimeRangeSet

        self._sack_scoreboard = TimeRangeSet()
        self._sack_retransmitted: set[int] = set()
        self._persist_timer = Timer(sim, self._on_persist, name="persist")
        self._persist_backoff = 0
        self._probe_event = None
        self._probe_outstanding = False
        self.closed = False
        # Counters.
        self.total_sent_bytes = 0
        self.total_retransmissions = 0
        self.total_timeouts = 0
        self.total_fast_retransmits = 0
        self.total_probes = 0
        self.bug_discarded_probes = 0

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def write(self, data: bytes) -> None:
        """Append application data to the send buffer and try to send."""
        if self.closed:
            raise RuntimeError("write after close")
        if not data:
            return
        self._buffer.extend(data)
        self.try_send()

    @property
    def unsent_bytes(self) -> int:
        """Bytes buffered but not yet transmitted."""
        return self._buffer_end - self.snd_nxt

    @property
    def unacked_bytes(self) -> int:
        """Bytes in flight (transmitted, not yet cumulatively ACKed)."""
        return self.snd_nxt - self.snd_una

    @property
    def buffered_bytes(self) -> int:
        """All bytes held (in flight plus unsent)."""
        return len(self._buffer)

    @property
    def _buffer_end(self) -> int:
        return self._buffer_base + len(self._buffer)

    # ------------------------------------------------------------------
    # Window arithmetic
    # ------------------------------------------------------------------
    @property
    def effective_window(self) -> int:
        """min(congestion window, peer advertised window)."""
        return min(self.cc.cwnd, self.peer_window)

    def _usable_window(self) -> int:
        return self.snd_una + self.effective_window - self.snd_nxt

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def try_send(self) -> None:
        """Emit as many new segments as windows and buffered data allow."""
        if self._probe_outstanding:
            # The (buggy or real) probe byte must be acknowledged before
            # normal transmission resumes.
            return
        sent_any = False
        while self.unsent_bytes > 0 and self._usable_window() > 0:
            size = min(self.config.mss, self.unsent_bytes, self._usable_window())
            if size <= 0:
                break
            payload = self._slice(self.snd_nxt, size)
            is_retx = self.snd_nxt < self._pullback_until
            if is_retx:
                self._retransmitted_seqs.add(self.snd_nxt)
                self.total_retransmissions += 1
            self._record_send_time(self.snd_nxt)
            self._transmit(self.snd_nxt, payload, is_retx)
            self.snd_nxt += size
            self.total_sent_bytes += size
            sent_any = True
        if sent_any:
            self._arm_rto_if_needed()
            self._persist_timer.stop()
            self._persist_backoff = 0
        elif (
            self.unsent_bytes > 0
            and self.unacked_bytes == 0
            and self.peer_window == 0
        ):
            self._start_persist()
        if self.unsent_bytes == 0 and self.on_buffer_drained is not None:
            self.on_buffer_drained()

    def _slice(self, rel_seq: int, size: int) -> bytes:
        offset = rel_seq - self._buffer_base
        return bytes(self._buffer[offset : offset + size])

    def _record_send_time(self, rel_seq: int) -> None:
        if rel_seq not in self._send_times:
            self._send_times[rel_seq] = self.sim.now

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def on_ack(
        self,
        ack: int,
        window: int,
        sack_blocks: tuple[tuple[int, int], ...] = (),
    ) -> None:
        """Process a cumulative ACK (relative) with an advertised window.

        ``sack_blocks`` are relative-sequence selective acknowledgments
        (only meaningful when the endpoint negotiated SACK).
        """
        self._update_peer_window(ack, window)
        if self.sack_enabled:
            for left, right in sack_blocks:
                if right > left >= self.snd_una:
                    self._sack_scoreboard.add_span(left, right)
        if ack > self.snd_una:
            self._on_new_ack(ack)
        elif ack == self.snd_una and self.unacked_bytes > 0:
            self._on_dupack()
        elif ack == self.snd_una:
            # Pure window update; a reopened window resumes transmission.
            if self.peer_window > 0:
                self._persist_timer.stop()
                self._persist_backoff = 0
                self._maybe_bug_discard_probe()
        if self.sack_enabled and self.cc.in_fast_recovery:
            self._sack_retransmit_next_hole()
        self.try_send()

    def _update_peer_window(self, ack: int, window: int) -> None:
        right_edge = ack + window
        if right_edge >= self.peer_window_right_edge:
            self.peer_window_right_edge = right_edge
        self.peer_window = max(0, self.peer_window_right_edge - self.snd_una)

    def _on_new_ack(self, ack: int) -> None:
        newly_acked = ack - self.snd_una
        self._sample_rtt(ack)
        self._advance_una(ack)
        self._dupacks = 0
        self.rtt.reset_backoff()
        if self._probe_outstanding and ack >= self.snd_nxt:
            self._probe_outstanding = False
        if self.cc.in_fast_recovery:
            outcome = self.cc.on_recovery_ack(ack)
            if outcome == "partial":
                if self.sack_enabled:
                    self._sack_retransmit_next_hole()
                else:
                    self._retransmit_segment(self.snd_una)
        else:
            self.cc.on_new_ack(newly_acked)
        if self.unacked_bytes > 0:
            self._rto_timer.start(self.rtt.rto_us)
        else:
            self._rto_timer.stop()

    def _advance_una(self, ack: int) -> None:
        ack = min(ack, self._buffer_end)
        advance = ack - self._buffer_base
        if advance > 0:
            del self._buffer[:advance]
            self._buffer_base = ack
        self.snd_una = ack
        if self.sack_enabled:
            self._sack_scoreboard.remove_span(0, ack)
            self._sack_retransmitted = {
                seq for seq in self._sack_retransmitted if seq >= ack
            }
        if self.snd_nxt < self.snd_una:
            self.snd_nxt = self.snd_una
        self._send_times = {
            seq: t for seq, t in self._send_times.items() if seq >= ack
        }
        self._retransmitted_seqs = {
            seq for seq in self._retransmitted_seqs if seq >= ack
        }
        # The window is relative to snd_una; recompute the usable part.
        self.peer_window = max(0, self.peer_window_right_edge - self.snd_una)

    def _sample_rtt(self, ack: int) -> None:
        # Karn: sample only segments never retransmitted. Use the latest
        # fully-acknowledged send time.
        best_seq = None
        for seq in self._send_times:
            if seq < ack and seq not in self._retransmitted_seqs:
                if best_seq is None or seq > best_seq:
                    best_seq = seq
        if best_seq is not None:
            self.rtt.on_rtt_sample(self.sim.now - self._send_times[best_seq])

    def _on_dupack(self) -> None:
        self._dupacks += 1
        if self._dupacks == 3:
            flight = self.unacked_bytes
            if self.cc.on_triple_dupack(flight, self.snd_nxt):
                self.total_fast_retransmits += 1
                if self.sack_enabled:
                    self._sack_retransmitted.clear()
                    self._sack_retransmit_next_hole()
                else:
                    self._retransmit_segment(self.snd_una)
                self._rto_timer.start(self.rtt.rto_us)
        elif self._dupacks > 3:
            self.cc.on_dupack_in_recovery()

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------
    def _sack_retransmit_next_hole(self) -> None:
        """RFC 3517-style recovery: resend the first un-SACKed hole.

        One hole per ACK event keeps the retransmission rate ack-clocked
        (a simplification of the pipe algorithm).
        """
        from repro.core.timeranges import TimeRangeSet

        if self.snd_nxt <= self.snd_una:
            return
        if not self._sack_scoreboard:
            self._retransmit_segment(self.snd_una)
            return
        # Only ranges *below* the highest SACKed byte are known losses;
        # anything above may simply still be in flight (RFC 3517).
        high_sack = max(r.end for r in self._sack_scoreboard)
        upper = min(self.snd_nxt, high_sack)
        if upper <= self.snd_una:
            return
        sent = TimeRangeSet([(self.snd_una, upper)])
        holes = sent.difference(self._sack_scoreboard)
        for hole in holes:
            if hole.start in self._sack_retransmitted:
                continue
            self._sack_retransmitted.add(hole.start)
            size = min(self.config.mss, hole.duration)
            payload = self._slice(hole.start, size)
            self._retransmitted_seqs.add(hole.start)
            self.total_retransmissions += 1
            self._transmit(hole.start, payload, True)
            return

    def _retransmit_segment(self, rel_seq: int) -> None:
        if rel_seq >= self._buffer_end:
            return
        size = min(self.config.mss, self._buffer_end - rel_seq, max(self.snd_nxt - rel_seq, 1))
        payload = self._slice(rel_seq, size)
        self._retransmitted_seqs.add(rel_seq)
        self.total_retransmissions += 1
        self._transmit(rel_seq, payload, True)

    def _on_rto(self) -> None:
        if self.unacked_bytes == 0 and not self._probe_outstanding:
            return
        self.total_timeouts += 1
        self.rtt.on_timeout()
        self.cc.on_timeout(self.unacked_bytes)
        self._dupacks = 0
        # Go-back-N: everything beyond snd_una is considered lost and
        # will be resent as the (collapsed) window reopens.
        self._pullback_until = max(self._pullback_until, self.snd_nxt)
        self.snd_nxt = self.snd_una
        self._probe_outstanding = False
        if self.sack_enabled:
            # RFC 2018: a timeout must assume the receiver reneged.
            self._sack_scoreboard = type(self._sack_scoreboard)()
            self._sack_retransmitted.clear()
        self.try_send()
        if self.snd_nxt == self.snd_una and self._buffer:
            # The peer window is closed: retransmit anyway (a real
            # stack's RTO ignores the advertised window for one probe-
            # sized segment).
            self._retransmit_segment(self.snd_una)
        self._rto_timer.start(self.rtt.rto_us)

    def _arm_rto_if_needed(self) -> None:
        if not self._rto_timer.armed and (
            self.unacked_bytes > 0 or self._probe_outstanding
        ):
            self._rto_timer.start(self.rtt.rto_us)

    # ------------------------------------------------------------------
    # Zero-window persist probing
    # ------------------------------------------------------------------
    def _start_persist(self) -> None:
        if self._persist_timer.armed or self._probe_event is not None:
            return
        backoff = min(2 ** self._persist_backoff, 64)
        self._persist_timer.start(self.config.persist_timeout_us * backoff)

    def _on_persist(self) -> None:
        if self.unsent_bytes == 0 or self.peer_window > 0:
            return
        self._persist_backoff += 1
        # Create the 1-byte probe; it leaves after a small processing
        # delay, during which the ZeroAckBug window exists.
        self._probe_event = self.sim.schedule(
            self.config.zero_window_probe_delay_us, self._transmit_probe
        )

    def _maybe_bug_discard_probe(self) -> None:
        """A window update raced the probe out of existence (the bug).

        The buggy stack discards the queued 1-byte probe yet still
        counts its byte as sent, then happily continues with new data.
        The receiver is left with a one-byte hole it can never fill by
        itself: everything after it queues out of order (closing the
        advertised window) while the sender retransmits into the hole on
        timer expirations — the paper's "repetitive retransmissions"
        under a zero window.
        """
        if not self.config.zero_ack_bug or self._probe_event is None:
            return
        self._probe_event.cancel()
        self._probe_event = None
        self.bug_discarded_probes += 1
        # The phantom byte: accounted for, never transmitted.
        self._record_send_time(self.snd_nxt)
        self._retransmitted_seqs.add(self.snd_nxt)  # Karn: never sample it
        self.snd_nxt += 1
        self._arm_rto_if_needed()

    def _transmit_probe(self) -> None:
        self._probe_event = None
        if self.unsent_bytes == 0:
            return
        if self.peer_window > 0 and not self._probe_outstanding:
            # Window opened in time and the stack is correct: just send.
            self.try_send()
            return
        payload = self._slice(self.snd_nxt, 1)
        self._record_send_time(self.snd_nxt)
        self._transmit(self.snd_nxt, payload, False)
        self.snd_nxt += 1
        self.total_probes += 1
        self._probe_outstanding = True
        self._arm_rto_if_needed()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """No more application writes; pending data still drains."""
        self.closed = True

    def stop_timers(self) -> None:
        """Cancel all timers (connection aborted)."""
        self._rto_timer.stop()
        self._persist_timer.stop()
        if self._probe_event is not None:
            self._probe_event.cancel()
            self._probe_event = None
