"""TCP endpoints: handshake, segment I/O and application interface.

A :class:`TcpEndpoint` couples a :class:`~repro.tcp.sender.SendHalf`
and a :class:`~repro.tcp.receiver.RecvHalf` behind a three-way
handshake, translating between relative sequence space and wire
sequence numbers.  Segments travel through the simulator as
:class:`~repro.wire.tcpw.TcpHeader` payloads inside
:class:`~repro.netsim.packet.Packet` objects, so a sniffer tap can
serialize them into byte-faithful pcap frames.
"""

from __future__ import annotations

import enum
from collections.abc import Callable

from repro.netsim.node import Host
from repro.netsim.packet import Packet, tcp_wire_length
from repro.netsim.simulator import Simulator, Timer
from repro.tcp.options import TcpConfig
from repro.tcp.receiver import RecvHalf
from repro.tcp.sender import SendHalf
from repro.wire import tcpw

MAX_SYN_RETRIES = 6


class TcpState(enum.Enum):
    """The subset of RFC 793 states the simulator distinguishes."""

    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn-sent"
    SYN_RCVD = "syn-rcvd"
    ESTABLISHED = "established"
    FIN_WAIT = "fin-wait"
    CLOSE_WAIT = "close-wait"
    LAST_ACK = "last-ack"


class TcpEndpoint:
    """One side of a TCP connection on a simulated host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        local_port: int,
        remote_ip: str,
        remote_port: int,
        config: TcpConfig | None = None,
        on_established: Callable[["TcpEndpoint"], None] | None = None,
        on_data: Callable[["TcpEndpoint"], None] | None = None,
        on_close: Callable[["TcpEndpoint"], None] | None = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.config = config or TcpConfig()
        self.on_established = on_established
        self.on_data = on_data
        self.on_close = on_close
        self.state = TcpState.CLOSED
        self.local_isn = self.config.isn
        self.remote_isn = 0
        self.effective_mss = self.config.mss
        self.sack_negotiated = False
        # RFC 7323: own shift applies to windows we advertise, the
        # peer's to windows we receive; active only if both offered it.
        self.send_window_scale = 0
        self.recv_window_scale = 0
        self.sender = SendHalf(
            sim, self.config, self._transmit_data, self._buffer_drained
        )
        self.receiver = RecvHalf(
            sim, self.config, self._send_pure_ack, self._readable
        )
        self._syn_timer = Timer(sim, self._retransmit_syn, name="syn-rto")
        self._syn_retries = 0
        self._fin_sent = False
        self.established_at_us: int | None = None
        self.closed_at_us: int | None = None
        self._ip_id = 0
        self.on_buffer_drained: Callable[[], None] | None = None
        self._register()

    # ------------------------------------------------------------------
    # Registration and identity
    # ------------------------------------------------------------------
    @property
    def flow_key(self) -> tuple[str, int, str, int]:
        """The inbound 4-tuple this endpoint answers to."""
        return (self.remote_ip, self.remote_port, self.host.ip, self.local_port)

    def _register(self) -> None:
        self.host.register_flow(self.flow_key, self._on_packet)

    def _unregister(self) -> None:
        self.host.unregister_flow(self.flow_key)

    # ------------------------------------------------------------------
    # Open / close
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Active open: send SYN."""
        if self.state is not TcpState.CLOSED:
            raise RuntimeError(f"connect from state {self.state}")
        self.state = TcpState.SYN_SENT
        self._syn_sent_at = self.sim.now
        self._send_syn()

    def listen(self) -> None:
        """Passive open: await the peer's SYN."""
        if self.state is not TcpState.CLOSED:
            raise RuntimeError(f"listen from state {self.state}")
        self.state = TcpState.LISTEN

    def close(self) -> None:
        """Graceful close: FIN after the send buffer drains."""
        self.sender.close()
        if self.sender.buffered_bytes == 0:
            self._send_fin()

    def abort(self) -> None:
        """Hard close: send RST and tear down immediately."""
        self._emit(flags=tcpw.RST | tcpw.ACK)
        self.kill(silent=True)

    def kill(self, silent: bool = True) -> None:
        """Stop all processing; with ``silent`` nothing is transmitted.

        Models the collector failure in the paper's Figure 9: the box
        dies, never ACKs again, and the peer retransmits into the void.
        """
        self.state = TcpState.CLOSED
        self.closed_at_us = self.sim.now
        self.sender.stop_timers()
        self._syn_timer.stop()
        self._unregister()
        if self.on_close is not None:
            self.on_close(self)

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def send(self, data: bytes) -> None:
        """Queue application bytes for transmission."""
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            raise RuntimeError(f"send in state {self.state}")
        self.sender.write(data)

    def read(self, max_bytes: int | None = None) -> bytes:
        """Consume received in-order bytes."""
        return self.receiver.read(max_bytes)

    def peek(self, max_bytes: int | None = None) -> bytes:
        """Inspect received in-order bytes without consuming."""
        return self.receiver.peek(max_bytes)

    @property
    def readable_bytes(self) -> int:
        """In-order bytes waiting to be read."""
        return self.receiver.buffered_bytes

    # ------------------------------------------------------------------
    # Segment construction
    # ------------------------------------------------------------------
    def _wire_seq(self, rel_seq: int) -> int:
        return (self.local_isn + 1 + rel_seq) & 0xFFFFFFFF

    def _wire_ack(self) -> int:
        return (self.remote_isn + 1 + self.receiver.rcv_nxt) & 0xFFFFFFFF

    def _emit(
        self,
        flags: int,
        rel_seq: int | None = None,
        payload: bytes = b"",
        mss_option: int | None = None,
    ) -> None:
        if rel_seq is None:
            rel_seq = self.sender.snd_nxt
        seq = self._wire_seq(rel_seq)
        ack = self._wire_ack() if flags & tcpw.ACK else 0
        sack_blocks: tuple[tuple[int, int], ...] = ()
        if self.sack_negotiated and flags & tcpw.ACK:
            base = (self.remote_isn + 1) & 0xFFFFFFFF
            sack_blocks = tuple(
                ((base + left) & 0xFFFFFFFF, (base + right) & 0xFFFFFFFF)
                for left, right in self.receiver.sack_blocks()
            )
        header = tcpw.TcpHeader(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq if not flags & tcpw.SYN else self.local_isn,
            ack=ack,
            flags=flags,
            window=self.receiver.advertised_window >> self.send_window_scale,
            payload=payload,
            mss_option=mss_option,
            sack_blocks=sack_blocks,
        )
        packet = Packet(
            src=self.host.ip,
            dst=self.remote_ip,
            payload=header,
            wire_length=tcp_wire_length(len(payload), len(header.options_bytes())),
            created_at_us=self.sim.now,
            ip_id=self._next_ip_id(),
        )
        self.host.send(packet)

    def _next_ip_id(self) -> int:
        ident = self._ip_id
        self._ip_id = (self._ip_id + 1) & 0xFFFF
        return ident

    def _transmit_data(self, rel_seq: int, payload: bytes, is_retx: bool) -> None:
        self._emit(flags=tcpw.ACK | tcpw.PSH, rel_seq=rel_seq, payload=payload)

    def _send_pure_ack(self) -> None:
        if self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT,
                          TcpState.FIN_WAIT, TcpState.LAST_ACK):
            self._emit(flags=tcpw.ACK)

    def _send_syn(self) -> None:
        header = tcpw.TcpHeader(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self.local_isn,
            ack=0,
            flags=tcpw.SYN,
            window=min(self.receiver.advertised_window, 65535),
            payload=b"",
            mss_option=self.config.mss,
            sack_permitted=self.config.sack,
            wscale_option=self.config.window_scale or None,
        )
        packet = Packet(
            src=self.host.ip,
            dst=self.remote_ip,
            payload=header,
            wire_length=tcp_wire_length(0, len(header.options_bytes())),
            created_at_us=self.sim.now,
            ip_id=self._next_ip_id(),
        )
        self.host.send(packet)
        self._syn_timer.start(self.sender.rtt.rto_us)

    def _send_synack(self) -> None:
        header = tcpw.TcpHeader(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self.local_isn,
            ack=(self.remote_isn + 1) & 0xFFFFFFFF,
            flags=tcpw.SYN | tcpw.ACK,
            window=min(self.receiver.advertised_window, 65535),
            payload=b"",
            mss_option=self.config.mss,
            sack_permitted=self.sack_negotiated,
            wscale_option=self.send_window_scale or None,
        )
        packet = Packet(
            src=self.host.ip,
            dst=self.remote_ip,
            payload=header,
            wire_length=tcp_wire_length(0, len(header.options_bytes())),
            created_at_us=self.sim.now,
            ip_id=self._next_ip_id(),
        )
        self.host.send(packet)
        self._syn_timer.start(self.sender.rtt.rto_us)

    def _retransmit_syn(self) -> None:
        self._syn_retries += 1
        if self._syn_retries > MAX_SYN_RETRIES:
            self.kill(silent=True)
            return
        self.sender.rtt.on_timeout()
        if self.state is TcpState.SYN_SENT:
            self._send_syn()
        elif self.state is TcpState.SYN_RCVD:
            self._send_synack()

    def _send_fin(self) -> None:
        if self._fin_sent:
            return
        self._fin_sent = True
        self._emit(flags=tcpw.FIN | tcpw.ACK)
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.FIN_WAIT
        elif self.state is TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK

    def _buffer_drained(self) -> None:
        if self.sender.closed:
            self._send_fin()
        if self.on_buffer_drained is not None:
            self.on_buffer_drained()

    def _readable(self) -> None:
        if self.on_data is not None:
            self.on_data(self)

    # ------------------------------------------------------------------
    # Segment arrival
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        segment: tcpw.TcpHeader = packet.payload
        if segment.is_rst:
            self.kill(silent=True)
            return
        handler = {
            TcpState.SYN_SENT: self._packet_in_syn_sent,
            TcpState.LISTEN: self._packet_in_listen,
            TcpState.SYN_RCVD: self._packet_in_syn_rcvd,
        }.get(self.state, self._packet_established)
        handler(segment)

    def _packet_in_syn_sent(self, segment: tcpw.TcpHeader) -> None:
        if not (segment.is_syn and segment.is_ack):
            return
        self.remote_isn = segment.seq
        self._negotiate_mss(segment)
        self._negotiate_sack(segment)
        self._negotiate_window_scale(segment)
        self.sender.rtt.on_rtt_sample(self.sim.now - self._syn_sent_at)
        self._syn_timer.stop()
        self.sender._update_peer_window(0, segment.window)
        self._establish()
        self._emit(flags=tcpw.ACK)

    def _packet_in_listen(self, segment: tcpw.TcpHeader) -> None:
        if not segment.is_syn or segment.is_ack:
            return
        self.remote_isn = segment.seq
        self._negotiate_mss(segment)
        self._negotiate_sack(segment)
        self._negotiate_window_scale(segment)
        self.sender._update_peer_window(0, segment.window)
        self.state = TcpState.SYN_RCVD
        self._send_synack()

    def _packet_in_syn_rcvd(self, segment: tcpw.TcpHeader) -> None:
        if segment.is_syn and not segment.is_ack:
            self._send_synack()  # duplicate SYN: SYN/ACK again
            return
        if segment.is_ack and segment.ack == (self.local_isn + 1) & 0xFFFFFFFF:
            self._syn_timer.stop()
            self.sender._update_peer_window(0, segment.window)
            self._establish()
            if segment.payload:
                self._packet_established(segment)

    def _establish(self) -> None:
        self.state = TcpState.ESTABLISHED
        self.established_at_us = self.sim.now
        if self.on_established is not None:
            self.on_established(self)

    def _negotiate_mss(self, segment: tcpw.TcpHeader) -> None:
        if segment.mss_option is not None:
            self.effective_mss = min(self.config.mss, segment.mss_option)
            self.sender.config = self.config.clone(mss=self.effective_mss)
            self.sender.cc.mss = self.effective_mss

    def _negotiate_sack(self, segment: tcpw.TcpHeader) -> None:
        self.sack_negotiated = self.config.sack and segment.sack_permitted
        self.sender.sack_enabled = self.sack_negotiated

    def _negotiate_window_scale(self, segment: tcpw.TcpHeader) -> None:
        if self.config.window_scale > 0 and segment.wscale_option is not None:
            self.send_window_scale = self.config.window_scale
            self.recv_window_scale = min(segment.wscale_option, 14)
            self.receiver.window_cap = 65535 << self.send_window_scale

    def _packet_established(self, segment: tcpw.TcpHeader) -> None:
        if segment.is_syn:
            return
        if segment.is_ack:
            rel_ack = (segment.ack - self.local_isn - 1) & 0xFFFFFFFF
            # Treat absurdly large values as pre-establishment ACKs.
            if rel_ack <= self.sender._buffer_end + 2:
                base = (self.local_isn + 1) & 0xFFFFFFFF
                rel_blocks = tuple(
                    (
                        (left - base) & 0xFFFFFFFF,
                        (right - base) & 0xFFFFFFFF,
                    )
                    for left, right in segment.sack_blocks
                )
                self.sender.on_ack(
                    rel_ack,
                    segment.window << self.recv_window_scale,
                    rel_blocks,
                )
        if segment.payload or segment.is_fin:
            rel_seq = (segment.seq - self.remote_isn - 1) & 0xFFFFFFFF
            self.receiver.on_segment(rel_seq, segment.payload, fin=segment.is_fin)
            if self.receiver.fin_received and self.state is TcpState.ESTABLISHED:
                self.state = TcpState.CLOSE_WAIT
                if self.on_close is not None:
                    self.on_close(self)
        if self._fin_sent and self.state is TcpState.LAST_ACK:
            # Our FIN was the last thing to be ACKed.
            self.state = TcpState.CLOSED
            self.closed_at_us = self.sim.now
            self._unregister()


def connect_pair(
    sim: Simulator,
    client_host: Host,
    server_host: Host,
    client_port: int,
    server_port: int,
    client_config: TcpConfig | None = None,
    server_config: TcpConfig | None = None,
    **callbacks,
) -> tuple[TcpEndpoint, TcpEndpoint]:
    """Create an active/passive endpoint pair ready to handshake.

    The caller wires hosts to links beforehand; ``client.connect()`` is
    invoked here, so running the simulator completes the handshake.
    Callbacks suffixed ``_client`` / ``_server`` are routed accordingly.
    """
    server = TcpEndpoint(
        sim,
        server_host,
        server_port,
        client_host.ip,
        client_port,
        config=server_config,
        on_established=callbacks.get("on_established_server"),
        on_data=callbacks.get("on_data_server"),
        on_close=callbacks.get("on_close_server"),
    )
    server.listen()
    client = TcpEndpoint(
        sim,
        client_host,
        client_port,
        server_host.ip,
        server_port,
        config=client_config,
        on_established=callbacks.get("on_established_client"),
        on_data=callbacks.get("on_data_client"),
        on_close=callbacks.get("on_close_client"),
    )
    client.connect()
    return client, server
