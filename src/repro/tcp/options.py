"""TCP endpoint configuration.

The two advertised-window settings the paper contrasts — ISP_A's 65 KB
versus RouteViews' 16 KB (section IV-A) — are campaign-level knobs here,
as are the flavour, delayed-ACK policy, RTO aggressiveness and the
zero-window-probe bug switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.units import seconds


@dataclass
class TcpConfig:
    """All tunables of one TCP endpoint."""

    mss: int = 1400
    flavor: str = "newreno"  # tahoe | reno | newreno
    initial_cwnd_mss: int = 2
    initial_ssthresh_bytes: int = 65535
    recv_buffer_bytes: int = 65535
    delayed_ack: bool = True
    delayed_ack_timeout_us: int = seconds(0.1)
    initial_rto_us: int = seconds(1.0)
    min_rto_us: int = seconds(0.3)
    max_rto_us: int = seconds(60.0)
    rto_backoff_factor: float = 2.0
    persist_timeout_us: int = seconds(0.5)
    zero_window_probe_delay_us: int = 2_000
    zero_ack_bug: bool = False
    # RFC 2018 selective acknowledgments (negotiated on the handshake).
    # Off by default: the paper's 2008-2011 router stacks, and T-DAT's
    # own taxonomy, assume plain window-based TCP.
    sack: bool = False
    # RFC 7323 window scaling: the shift count advertised in the SYN.
    # 0 disables the option entirely (the paper-era default); both ends
    # must offer it for scaling to apply.
    window_scale: int = 0
    isn: int = 0
    # Endpoint processing latency applied before transmitting each segment.
    processing_delay_us: int = 0

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError(f"non-positive MSS {self.mss}")
        if self.recv_buffer_bytes < self.mss:
            raise ValueError("receive buffer smaller than one MSS")
        if not 0 <= self.window_scale <= 14:
            raise ValueError(f"window scale {self.window_scale} outside 0..14")

    def clone(self, **overrides) -> "TcpConfig":
        """A copy with selected fields replaced."""
        values = self.__dict__.copy()
        values.update(overrides)
        return TcpConfig(**values)
