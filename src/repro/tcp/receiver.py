"""The receive half of a TCP endpoint.

Implements in-order reassembly, duplicate-ACK generation for
out-of-order arrivals, delayed ACKs (every second full segment or a
200 ms timer, RFC 1122), and receiver flow control: the advertised
window is the free space of a finite receive buffer that the
*application* must drain by calling :meth:`read`.

The application-read side is where the paper's "BGP receiver app"
delay factor originates: a collector that parses updates slowly leaves
data sitting in the buffer, the advertised window closes toward zero,
and T-DAT sees small-advertised-window bounded periods.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.netsim.simulator import Simulator, Timer
from repro.tcp.options import TcpConfig


class RecvHalf:
    """Reassembly, ACK policy and flow control for one direction."""

    def __init__(
        self,
        sim: Simulator,
        config: TcpConfig,
        send_ack: Callable[[], None],
        on_readable: Callable[[], None] | None = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self._send_ack = send_ack
        self.on_readable = on_readable
        self.rcv_nxt = 0  # relative sequence (0 == first payload byte)
        self._out_of_order: dict[int, bytes] = {}
        self._ooo_recency: list[int] = []  # stash seqs, most recent last
        self._app_buffer = bytearray()
        self._unacked_segments = 0
        self._ack_timer = Timer(sim, self._ack_timer_fired, name="delack")
        self._fin_seq: int | None = None
        self.fin_received = False
        # Raised to 65535 << scale when window scaling is negotiated.
        self.window_cap = 65535
        # Counters for tests and stats.
        self.total_received_bytes = 0
        self.duplicate_segments = 0
        self.out_of_order_segments = 0

    # ------------------------------------------------------------------
    # Window accounting
    # ------------------------------------------------------------------
    @property
    def advertised_window(self) -> int:
        """Free receive-buffer space, capped at the (scaled) field limit.

        Out-of-order segments occupy buffer space too: a reassembly
        hole therefore closes the window, which is how the paper's
        zero-window probe bug starves a connection.
        """
        held = len(self._app_buffer) + sum(
            len(p) for p in self._out_of_order.values()
        )
        free = self.config.recv_buffer_bytes - held
        return max(0, min(free, self.window_cap))

    @property
    def buffered_bytes(self) -> int:
        """In-order bytes waiting for the application."""
        return len(self._app_buffer)

    # ------------------------------------------------------------------
    # Segment arrival
    # ------------------------------------------------------------------
    def on_segment(self, seq: int, payload: bytes, fin: bool = False) -> None:
        """Process one data segment (relative ``seq``)."""
        if fin:
            self._fin_seq = seq + len(payload)
        if not payload and not fin:
            return
        end = seq + len(payload)
        if end <= self.rcv_nxt and not fin:
            # Complete duplicate (a spurious retransmission): ACK at once.
            self.duplicate_segments += 1
            self._ack_now()
            return
        if seq > self.rcv_nxt:
            # A hole precedes this segment: stash and send a duplicate ACK.
            self.out_of_order_segments += 1
            if payload:
                self._out_of_order.setdefault(seq, payload)
                if seq in self._ooo_recency:
                    self._ooo_recency.remove(seq)
                self._ooo_recency.append(seq)
            self._ack_now()
            return
        # In order (possibly overlapping the left edge).
        self._accept(seq, payload)
        self._drain_out_of_order()
        if self._fin_seq is not None and self.rcv_nxt >= self._fin_seq:
            self.fin_received = True
            self.rcv_nxt = self._fin_seq + 1  # FIN consumes one sequence number
            self._ack_now()
        else:
            self._schedule_ack()
        if self._app_buffer and self.on_readable is not None:
            self.on_readable()

    def _accept(self, seq: int, payload: bytes) -> None:
        usable = payload[self.rcv_nxt - seq :]
        if not usable:
            return
        free = self.config.recv_buffer_bytes - len(self._app_buffer)
        usable = usable[:free]  # overflow beyond buffer is dropped
        self._app_buffer.extend(usable)
        self.rcv_nxt += len(usable)
        self.total_received_bytes += len(usable)

    def _drain_out_of_order(self) -> None:
        while self._out_of_order:
            # Find a stashed segment that now fits at the left edge.
            match = None
            for seq, payload in self._out_of_order.items():
                if seq <= self.rcv_nxt < seq + len(payload) or seq == self.rcv_nxt:
                    match = seq
                    break
                if seq + len(payload) <= self.rcv_nxt:
                    match = seq  # fully obsolete; discard below
                    break
            if match is None:
                return
            payload = self._out_of_order.pop(match)
            if match in self._ooo_recency:
                self._ooo_recency.remove(match)
            if match + len(payload) > self.rcv_nxt:
                self._accept(match, payload)

    # ------------------------------------------------------------------
    # ACK policy
    # ------------------------------------------------------------------
    def _schedule_ack(self) -> None:
        if not self.config.delayed_ack:
            self._ack_now()
            return
        self._unacked_segments += 1
        if self._unacked_segments >= 2:
            self._ack_now()
        elif not self._ack_timer.armed:
            self._ack_timer.start(self.config.delayed_ack_timeout_us)

    def _ack_timer_fired(self) -> None:
        if self._unacked_segments > 0:
            self._ack_now()

    def _ack_now(self) -> None:
        self._unacked_segments = 0
        self._ack_timer.stop()
        self._send_ack()

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def read(self, max_bytes: int | None = None) -> bytes:
        """Consume in-order data, reopening the advertised window.

        A window-update ACK is pushed when the window reopens from (or
        near) zero, so a stalled sender learns it may resume — standard
        receiver-side silly-window avoidance.
        """
        if max_bytes is None:
            max_bytes = len(self._app_buffer)
        before = self.advertised_window
        data = bytes(self._app_buffer[:max_bytes])
        del self._app_buffer[: len(data)]
        if data and before < 2 * self.config.mss <= self.advertised_window:
            self._ack_now()
        elif data and before == 0 and self.advertised_window > 0:
            self._ack_now()
        return data

    def peek(self, max_bytes: int | None = None) -> bytes:
        """Look at buffered data without consuming it."""
        if max_bytes is None:
            max_bytes = len(self._app_buffer)
        return bytes(self._app_buffer[:max_bytes])

    # ------------------------------------------------------------------
    # SACK generation (RFC 2018)
    # ------------------------------------------------------------------
    def sack_blocks(self, max_blocks: int = 3) -> tuple[tuple[int, int], ...]:
        """Relative-sequence SACK blocks for the reassembly holes.

        Blocks are coalesced from the out-of-order stash; the block
        containing the most recently received segment leads, per
        RFC 2018's "most recent first" rule.
        """
        if not self._out_of_order:
            return ()
        from repro.core.timeranges import TimeRangeSet

        coverage = TimeRangeSet(
            (seq, seq + len(payload))
            for seq, payload in self._out_of_order.items()
        )
        blocks = [(r.start, r.end) for r in coverage]

        def recency(block: tuple[int, int]) -> int:
            newest = -1
            for order, seq in enumerate(self._ooo_recency):
                if block[0] <= seq < block[1]:
                    newest = max(newest, order)
            return newest

        blocks.sort(key=recency, reverse=True)
        return tuple(blocks[:max_blocks])
