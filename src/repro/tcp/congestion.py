"""Window-based congestion control: Tahoe, Reno and NewReno.

T-DAT's basic assumption (paper section III) is that the monitored TCP
"uses congestion and receive windows to control packet delivery (i.e.,
TCP flavours such as Tahoe, Reno, New Reno)".  These are exactly the
flavours the simulator implements, so every inference T-DAT makes can be
validated against ground truth.

All window arithmetic is in bytes.
"""

from __future__ import annotations


class CongestionControl:
    """Shared slow-start / congestion-avoidance machinery."""

    name = "base"

    def __init__(
        self,
        mss: int,
        initial_cwnd_mss: int = 2,
        initial_ssthresh_bytes: int = 65535,
    ) -> None:
        if mss <= 0:
            raise ValueError(f"non-positive MSS {mss}")
        self.mss = mss
        self.cwnd = initial_cwnd_mss * mss
        self.ssthresh = initial_ssthresh_bytes
        self.in_fast_recovery = False
        self.recovery_point: int | None = None
        self._avoidance_accum = 0

    # ------------------------------------------------------------------
    # Normal (open) window growth
    # ------------------------------------------------------------------
    def on_new_ack(self, newly_acked_bytes: int) -> None:
        """Grow the window for ``newly_acked_bytes`` of fresh data ACKed."""
        if self.in_fast_recovery:
            return
        if self.cwnd < self.ssthresh:
            # Slow start: one MSS per ACKed MSS (byte counting).
            self.cwnd += min(newly_acked_bytes, self.mss)
        else:
            # Congestion avoidance: one MSS per ACKed window of bytes.
            self._avoidance_accum += min(newly_acked_bytes, self.mss)
            if self._avoidance_accum >= self.cwnd:
                self._avoidance_accum -= self.cwnd
                self.cwnd += self.mss

    # ------------------------------------------------------------------
    # Loss events — specialized per flavour
    # ------------------------------------------------------------------
    def on_triple_dupack(self, flight_size: int, recovery_point: int) -> bool:
        """React to three duplicate ACKs.

        Returns True if the caller should fast-retransmit the missing
        segment.  ``recovery_point`` is SND.NXT at loss detection; the
        flavour records it to decide when recovery ends.
        """
        raise NotImplementedError

    def on_dupack_in_recovery(self) -> None:
        """Window inflation for each further dup ACK during recovery."""
        if self.in_fast_recovery:
            self.cwnd += self.mss

    def on_recovery_ack(self, ack: int) -> str:
        """Process a cumulative ACK while in fast recovery.

        Returns one of ``"exit"`` (recovery over), ``"partial"`` (NewReno
        partial ACK: retransmit next hole, stay in recovery) or
        ``"ignore"``.
        """
        raise NotImplementedError

    def on_timeout(self, flight_size: int) -> None:
        """Collapse to slow start after an RTO."""
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.in_fast_recovery = False
        self.recovery_point = None
        self._avoidance_accum = 0

    def _halve_into_recovery(self, flight_size: int, recovery_point: int) -> None:
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss
        self.in_fast_recovery = True
        self.recovery_point = recovery_point

    def _deflate_and_exit(self) -> None:
        self.cwnd = self.ssthresh
        self.in_fast_recovery = False
        self.recovery_point = None
        self._avoidance_accum = 0


class Tahoe(CongestionControl):
    """TCP Tahoe: fast retransmit but no fast recovery."""

    name = "tahoe"

    def on_triple_dupack(self, flight_size: int, recovery_point: int) -> bool:
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.in_fast_recovery = False
        self.recovery_point = None
        self._avoidance_accum = 0
        return True

    def on_dupack_in_recovery(self) -> None:
        pass

    def on_recovery_ack(self, ack: int) -> str:
        return "ignore"


class Reno(CongestionControl):
    """TCP Reno: fast retransmit + fast recovery, exits on first new ACK."""

    name = "reno"

    def on_triple_dupack(self, flight_size: int, recovery_point: int) -> bool:
        if self.in_fast_recovery:
            return False
        self._halve_into_recovery(flight_size, recovery_point)
        return True

    def on_recovery_ack(self, ack: int) -> str:
        if not self.in_fast_recovery:
            return "ignore"
        self._deflate_and_exit()
        return "exit"


class NewReno(CongestionControl):
    """TCP NewReno (RFC 6582): partial ACKs keep recovery alive."""

    name = "newreno"

    def on_triple_dupack(self, flight_size: int, recovery_point: int) -> bool:
        if self.in_fast_recovery:
            return False
        self._halve_into_recovery(flight_size, recovery_point)
        return True

    def on_recovery_ack(self, ack: int) -> str:
        if not self.in_fast_recovery:
            return "ignore"
        assert self.recovery_point is not None
        if ack >= self.recovery_point:
            self._deflate_and_exit()
            return "exit"
        # Partial ACK: deflate by the amount acked, retransmit next hole.
        self.cwnd = max(self.cwnd - self.mss, self.mss)
        return "partial"


FLAVORS = {cls.name: cls for cls in (Tahoe, Reno, NewReno)}


def make_congestion_control(
    flavor: str, mss: int, initial_cwnd_mss: int = 2,
    initial_ssthresh_bytes: int = 65535,
) -> CongestionControl:
    """Instantiate a flavour by name (``tahoe`` / ``reno`` / ``newreno``)."""
    try:
        cls = FLAVORS[flavor]
    except KeyError:
        raise ValueError(
            f"unknown TCP flavor {flavor!r}; expected one of {sorted(FLAVORS)}"
        ) from None
    return cls(mss, initial_cwnd_mss, initial_ssthresh_bytes)
