"""TCP substrate: window-based congestion control on the simulator."""

from repro.tcp.congestion import (
    FLAVORS,
    CongestionControl,
    NewReno,
    Reno,
    Tahoe,
    make_congestion_control,
)
from repro.tcp.options import TcpConfig
from repro.tcp.receiver import RecvHalf
from repro.tcp.rto import RttEstimator
from repro.tcp.sender import SendHalf
from repro.tcp.socket import TcpEndpoint, TcpState, connect_pair

__all__ = [
    "FLAVORS",
    "CongestionControl",
    "NewReno",
    "RecvHalf",
    "Reno",
    "RttEstimator",
    "SendHalf",
    "Tahoe",
    "TcpConfig",
    "TcpEndpoint",
    "TcpState",
    "connect_pair",
    "make_congestion_control",
]
