"""RL003-RL007: the cross-layer contract rules.

Each of these rules pins an invariant that lives in *two* places at
once — a worker payload and the pickler, an issue kind and its
registry, an exit code and its ``--help`` table, a metric name and its
docs catalog.  Nothing in the interpreter couples the two halves, so
they drift silently; the rules make the coupling mechanical.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.lint.engine import Finding, Rule, register_rule
from repro.lint.project import Project, SourceFile

#: module holding the canonical IngestIssue kind registry (RL004).
HEALTH_MODULE = "repro.core.health"
ISSUE_REGISTRY_NAME = "ISSUE_KINDS"

#: module holding the CLI exit-code contract (RL005).
CLI_MODULE = "repro.tools.tdat_cli"
EXIT_TABLE_NAME = "EXIT_CODE_TABLE"

#: catalog every obs metric/span name must appear in (RL006).
OBS_CATALOG = "docs/observability.md"

#: module holding the chaos injection-point registry (RL007).
CHAOS_MODULE = "repro.chaos.plan"
INJECTION_REGISTRY_NAME = "INJECTION_POINTS"
#: catalog every chaos injection point must appear in (RL007).
ROBUSTNESS_CATALOG = "docs/robustness.md"


# ---------------------------------------------------------------------- #
# RL003                                                                   #
# ---------------------------------------------------------------------- #
@register_rule
class PoolPayloadPicklable(Rule):
    """RL003: payloads crossing the WorkPool process boundary must be
    importable at top level, or the parallel backend dies in pickle."""

    id = "RL003"
    summary = (
        "WorkPool tasks and their result types must be top-level "
        "(picklable) definitions"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for source in project.files:
            yield from self._check_file(source, project)

    def _check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Finding]:
        top_level = {
            statement.name
            for statement in source.tree.body
            if isinstance(
                statement,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            )
        }
        task_names: set[str] = set()
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in ("map", "submit")
                and isinstance(func.value, ast.Name)
                and "pool" in func.value.id.lower()
            ):
                continue
            if not node.args:
                continue
            task = node.args[0]
            if isinstance(task, ast.Lambda):
                yield self.finding(
                    source, task.lineno, task.col_offset,
                    "lambda submitted to WorkPool: lambdas cannot be "
                    "pickled to worker processes; use a module-level def",
                )
            elif isinstance(task, ast.Name):
                task_names.add(task.id)
                if task.id not in top_level and self._defined_nested(
                    source, task.id
                ):
                    yield self.finding(
                        source, task.lineno, task.col_offset,
                        f"WorkPool task '{task.id}' is defined inside "
                        f"another scope: nested functions cannot be "
                        f"pickled to worker processes; move it to module "
                        f"top level",
                    )
        # Result types: a class defined inside a task function body is
        # unpicklable the moment an instance is returned from a worker.
        for statement in source.tree.body:
            if (
                isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
                and statement.name in task_names
            ):
                for inner in ast.walk(statement):
                    if isinstance(inner, ast.ClassDef):
                        yield self.finding(
                            source, inner.lineno, inner.col_offset,
                            f"class '{inner.name}' defined inside WorkPool "
                            f"task '{statement.name}': instances crossing "
                            f"the process boundary cannot be pickled; "
                            f"define it at module top level",
                        )

    @staticmethod
    def _defined_nested(source: SourceFile, name: str) -> bool:
        for node in ast.walk(source.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == name
            ):
                return True
        return False


# ---------------------------------------------------------------------- #
# RL004                                                                   #
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _KindUse:
    kind: str
    source: SourceFile
    line: int
    col: int


@register_rule
class IssueKindRegistered(Rule):
    """RL004: every IngestIssue kind string agrees with the central
    ``ISSUE_KINDS`` registry, in both directions."""

    id = "RL004"
    summary = (
        "IngestIssue kind strings must match the ISSUE_KINDS registry "
        "in repro.core.health (both directions)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        health = project.modules.get(HEALTH_MODULE)
        if health is None:
            return
        registry = _parse_registry(health)
        if registry is None:
            yield self.finding(
                health, 1, 0,
                f"module {HEALTH_MODULE} defines no "
                f"{ISSUE_REGISTRY_NAME} dict literal; the kind registry "
                f"is the anchor this rule checks against",
            )
            return
        uses = list(_collect_kind_uses(project))
        used_kinds = {use.kind for use in uses}
        for use in sorted(
            uses, key=lambda u: (u.source.relpath, u.line, u.col)
        ):
            if use.kind not in registry:
                yield self.finding(
                    use.source, use.line, use.col,
                    f"issue kind '{use.kind}' is not in "
                    f"{ISSUE_REGISTRY_NAME} ({health.relpath}); register "
                    f"it with a one-line description",
                )
        for kind, line in sorted(registry.items()):
            if kind not in used_kinds:
                yield self.finding(
                    health, line, 0,
                    f"issue kind '{kind}' is registered in "
                    f"{ISSUE_REGISTRY_NAME} but never recorded anywhere; "
                    f"remove the stale entry",
                )


def _parse_registry(
    source: SourceFile, name: str = ISSUE_REGISTRY_NAME
) -> dict[str, int] | None:
    """The ``name`` dict literal's keys with each key's line number.

    Shared registry anchor for RL004 (``ISSUE_KINDS``) and RL007
    (``INJECTION_POINTS``): both rules pin a string-keyed dict literal
    as the single source of truth.
    """
    for statement in source.tree.body:
        targets: list[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value:
            targets = [statement.target]
            value = statement.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == name for t in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            return None
        registry: dict[str, int] = {}
        for key in value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                registry[key.value] = key.lineno
        return registry
    return None


def _collect_kind_uses(project: Project) -> Iterator[_KindUse]:
    """Every literal kind string flowing into ``TraceHealth.record``.

    Kinds rarely reach ``record`` directly: they pass through small
    conduits (``_give_up``, ``_skip``, ``on_issue`` callbacks) or sit
    in ``*_ISSUE_KINDS`` mapping literals.  We run a fixed point over
    function definitions: any function forwarding one of its parameters
    into a known kind slot becomes a conduit itself, matched at call
    sites by terminal name.  Name-based matching is deliberate — the
    callbacks are duck-typed, so no resolver can do better statically.
    """
    # conduit name -> (def-positional index of the kind param, its name,
    # whether the def's first parameter is self/cls)
    # ``TraceHealth.record(self, stage, kind, ...)``: def index 2.
    conduits: dict[str, tuple[int, str, bool]] = {
        "record": (2, "kind", True),
    }
    defs: list[tuple[SourceFile, ast.FunctionDef | ast.AsyncFunctionDef]] = [
        (source, node)
        for source in project.files
        if source.module != "repro.lint" and not source.module.startswith(
            "repro.lint."
        )
        for node in ast.walk(source.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    changed = True
    while changed:
        changed = False
        for source, func in defs:
            if func.name in conduits:
                continue
            params = [arg.arg for arg in func.args.args]
            for call in ast.walk(func):
                if not isinstance(call, ast.Call):
                    continue
                slot = _kind_argument(call, conduits)
                if (
                    isinstance(slot, ast.Name)
                    and slot.id in params
                ):
                    index = params.index(slot.id)
                    has_self = bool(params) and params[0] in ("self", "cls")
                    conduits[func.name] = (index, slot.id, has_self)
                    changed = True
                    break

    for source in project.files:
        if source.module == "repro.lint" or source.module.startswith(
            "repro.lint."
        ):
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                slot = _kind_argument(node, conduits)
                if isinstance(slot, ast.Constant) and isinstance(
                    slot.value, str
                ):
                    yield _KindUse(
                        slot.value, source, slot.lineno, slot.col_offset
                    )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from _kinds_from_mapping(source, node)
            if isinstance(node, ast.Call):
                yield from _kinds_from_get_default(source, node)


def _kind_argument(
    call: ast.Call, conduits: dict[str, tuple[int, str, bool]]
) -> ast.expr | None:
    """The expression in the kind slot of a conduit call, if any."""
    func = call.func
    if isinstance(func, ast.Attribute):
        name = func.attr
        bound = True  # receiver.method(...) — self is already bound
    elif isinstance(func, ast.Name):
        name = func.id
        bound = False
    else:
        return None
    spec = conduits.get(name)
    if spec is None:
        return None
    index, kwarg, has_self = spec
    for keyword in call.keywords:
        if keyword.arg == kwarg:
            return keyword.value
    if bound and has_self:
        index -= 1
    if 0 <= index < len(call.args):
        return call.args[index]
    return None


def _kinds_from_mapping(
    source: SourceFile, node: ast.Assign | ast.AnnAssign
) -> Iterator[_KindUse]:
    """String values of ``*_ISSUE_KINDS = {...}`` mapping literals."""
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    if not any(
        isinstance(t, ast.Name) and t.id.endswith("_ISSUE_KINDS")
        for t in targets
    ):
        return
    value = node.value
    if not isinstance(value, ast.Dict):
        return
    for entry in value.values:
        if isinstance(entry, ast.Constant) and isinstance(entry.value, str):
            yield _KindUse(
                entry.value, source, entry.lineno, entry.col_offset
            )


def _kinds_from_get_default(
    source: SourceFile, call: ast.Call
) -> Iterator[_KindUse]:
    """The literal default of ``*_ISSUE_KINDS.get(key, "fallback")``."""
    func = call.func
    if not (
        isinstance(func, ast.Attribute)
        and func.attr == "get"
        and isinstance(func.value, ast.Name)
        and func.value.id.endswith("_ISSUE_KINDS")
        and len(call.args) == 2
    ):
        return
    default = call.args[1]
    if isinstance(default, ast.Constant) and isinstance(default.value, str):
        yield _KindUse(
            default.value, source, default.lineno, default.col_offset
        )


# ---------------------------------------------------------------------- #
# RL005                                                                   #
# ---------------------------------------------------------------------- #
_TABLE_ROW_RE = re.compile(r"^\s*(\d+)\s+\S")


@register_rule
class ExitCodeTableConsistent(Rule):
    """RL005: the ``EXIT_*`` constants and the ``EXIT_CODE_TABLE``
    rendered into ``--help`` must describe the same contract."""

    id = "RL005"
    summary = (
        "EXIT_* constants in repro.tools.tdat_cli must match "
        "EXIT_CODE_TABLE (both directions)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        cli = project.modules.get(CLI_MODULE)
        if cli is None:
            return
        constants: dict[str, tuple[int, int]] = {}  # name -> (value, line)
        table_codes: set[int] = set()
        table_line = None
        for statement in cli.tree.body:
            if not isinstance(statement, ast.Assign):
                continue
            for target in statement.targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == EXIT_TABLE_NAME:
                    if isinstance(statement.value, ast.Constant) and (
                        isinstance(statement.value.value, str)
                    ):
                        table_line = statement.lineno
                        for row in statement.value.value.splitlines():
                            match = _TABLE_ROW_RE.match(row)
                            if match:
                                table_codes.add(int(match.group(1)))
                elif target.id.startswith("EXIT_"):
                    if isinstance(statement.value, ast.Constant) and (
                        isinstance(statement.value.value, int)
                    ):
                        constants[target.id] = (
                            statement.value.value, statement.lineno
                        )
        if table_line is None:
            yield self.finding(
                cli, 1, 0,
                f"{CLI_MODULE} defines no {EXIT_TABLE_NAME} string "
                f"literal; the --help exit-code table is the contract "
                f"this rule checks against",
            )
            return
        for name, (value, line) in sorted(constants.items()):
            if value not in table_codes:
                yield self.finding(
                    cli, line, 0,
                    f"exit code {name} = {value} is not documented in "
                    f"{EXIT_TABLE_NAME}; every code a subcommand can "
                    f"return must appear in --help",
                )
        known_values = {value for value, _ in constants.values()}
        for code in sorted(table_codes):
            if code not in known_values:
                yield self.finding(
                    cli, table_line, 0,
                    f"{EXIT_TABLE_NAME} documents exit code {code} but "
                    f"no EXIT_* constant has that value; the table has "
                    f"drifted from the code",
                )


# ---------------------------------------------------------------------- #
# RL006                                                                   #
# ---------------------------------------------------------------------- #
_OBS_METHODS = ("counter", "gauge", "histogram", "span")
_BACKTICK_RE = re.compile(r"`([^`\n]+)`")

#: packages whose obs recordings are implementation plumbing, not the
#: public telemetry surface the catalog documents.
_OBS_EXEMPT = ("repro.obs", "repro.lint")

#: name prefixes reconciled in the reverse direction too: a cataloged
#: name under one of these namespaces that no code records is a stale
#: row.  The service namespace starts strict; older namespaces predate
#: the reverse check and keep catalog-only latitude (prose rows like
#: the pool's grouped counters defeat exact matching).
_OBS_STRICT_PREFIXES = ("serve.",)

#: module anchoring reverse-direction findings for ``serve.*`` names.
_SERVE_MODULES = ("repro.serve.http", "repro.serve.session", "repro.serve")

#: what a concrete recordable obs name looks like; catalog prose that
#: backticks a glob or a phrase is not held to the reverse check.
_OBS_NAME_RE = re.compile(r"[a-z0-9_]+(\.[a-z0-9_]+)+")


@register_rule
class ObsNameCataloged(Rule):
    """RL006: every metric/span name the code records must be in the
    ``docs/observability.md`` catalog, or dashboards go stale."""

    id = "RL006"
    summary = (
        "metric/span names recorded via repro.obs must appear in "
        "docs/observability.md"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        uses = [
            use
            for source in project.files
            if not source.in_package(_OBS_EXEMPT)
            for use in self._obs_names(source)
        ]
        if not uses:
            return
        catalog_path = project.artifact(OBS_CATALOG)
        if not catalog_path.is_file():
            source, _, line, col, _ = uses[0]
            yield self.finding(
                source, line, col,
                f"{OBS_CATALOG} is missing but obs names are recorded; "
                f"create the catalog so telemetry stays documented",
            )
            return
        tokens = set(
            _BACKTICK_RE.findall(catalog_path.read_text(encoding="utf-8"))
        )
        for source, name, line, col, is_prefix in uses:
            if is_prefix:
                if not any(token.startswith(name) for token in tokens):
                    yield self.finding(
                        source, line, col,
                        f"dynamic obs name with prefix '{name}' matches "
                        f"no entry in {OBS_CATALOG}; document each "
                        f"concrete name (backticked) in the catalog",
                    )
            elif name not in tokens:
                yield self.finding(
                    source, line, col,
                    f"obs name '{name}' is not cataloged in "
                    f"{OBS_CATALOG}; add it (backticked) with its unit "
                    f"and meaning",
                )
        # Reverse direction for the strict namespaces: a cataloged
        # name no code records is a dashboard documenting telemetry
        # that does not exist.
        recorded = {
            name for _, name, _, _, is_prefix in uses if not is_prefix
        }
        dynamic_prefixes = {
            name for _, name, _, _, is_prefix in uses if is_prefix and name
        }
        anchor = next(
            (
                module
                for candidate in _SERVE_MODULES
                if (module := project.modules.get(candidate)) is not None
            ),
            uses[0][0],
        )
        for token in sorted(tokens):
            if not token.startswith(_OBS_STRICT_PREFIXES):
                continue
            if not _OBS_NAME_RE.fullmatch(token):
                continue  # prose like a `serve.*` glob, not a name
            if token in recorded:
                continue
            if any(token.startswith(p) for p in dynamic_prefixes):
                continue
            yield self.finding(
                anchor, 1, 0,
                f"obs name '{token}' is cataloged in {OBS_CATALOG} but "
                f"never recorded by the code; record it or remove the "
                f"stale catalog row",
            )

    @staticmethod
    def _obs_names(
        source: SourceFile,
    ) -> Iterator[tuple[SourceFile, str, int, int, bool]]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _OBS_METHODS
                and node.args
            ):
                continue
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Constant) and isinstance(
                name_arg.value, str
            ):
                yield (
                    source, name_arg.value,
                    name_arg.lineno, name_arg.col_offset, False,
                )
            elif isinstance(name_arg, ast.JoinedStr):
                prefix = ""
                for part in name_arg.values:
                    if isinstance(part, ast.Constant) and isinstance(
                        part.value, str
                    ):
                        prefix += part.value
                    else:
                        break
                yield (
                    source, prefix,
                    name_arg.lineno, name_arg.col_offset, True,
                )


# ---------------------------------------------------------------------- #
# RL007                                                                   #
# ---------------------------------------------------------------------- #
@register_rule
class InjectionPointCataloged(Rule):
    """RL007: every chaos injection point agrees with the
    ``INJECTION_POINTS`` registry and the ``docs/robustness.md``
    catalog, in all directions."""

    id = "RL007"
    summary = (
        "chaos injection points must match the INJECTION_POINTS "
        "registry in repro.chaos.plan and the docs/robustness.md "
        "catalog (all directions)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        chaos = project.modules.get(CHAOS_MODULE)
        if chaos is None:
            return
        registry = _parse_registry(chaos, INJECTION_REGISTRY_NAME)
        if registry is None:
            yield self.finding(
                chaos, 1, 0,
                f"module {CHAOS_MODULE} defines no "
                f"{INJECTION_REGISTRY_NAME} dict literal; the "
                f"injection-point registry is the anchor this rule "
                f"checks against",
            )
            return
        # Direction 1: every POINT_* constant anywhere in the tree
        # names a registered injection point — the constants ARE the
        # call-site seams, so an unregistered one is an injection point
        # the chaos planner can never schedule.
        constants = sorted(
            self._point_constants(project),
            key=lambda use: (use[0].relpath, use[2], use[3]),
        )
        for source, value, line, col in constants:
            if value not in registry:
                yield self.finding(
                    source, line, col,
                    f"injection point '{value}' is not in "
                    f"{INJECTION_REGISTRY_NAME} ({chaos.relpath}); "
                    f"register it so chaos plans can schedule it",
                )
        # Direction 2: every registered point has at least one POINT_*
        # constant backing it — a registry entry with no seam is dead.
        declared = {value for _, value, _, _ in constants}
        for point, line in sorted(registry.items()):
            if point not in declared:
                yield self.finding(
                    chaos, line, 0,
                    f"injection point '{point}' is registered in "
                    f"{INJECTION_REGISTRY_NAME} but no POINT_* constant "
                    f"declares it at a seam; remove the stale entry",
                )
        # Direction 3: every registered point is documented (backticked)
        # in the robustness catalog.
        catalog_path = project.artifact(ROBUSTNESS_CATALOG)
        if not catalog_path.is_file():
            yield self.finding(
                chaos, 1, 0,
                f"{ROBUSTNESS_CATALOG} is missing but injection points "
                f"are registered; create the catalog so the fault "
                f"surface stays documented",
            )
            return
        tokens = set(
            _BACKTICK_RE.findall(catalog_path.read_text(encoding="utf-8"))
        )
        for point, line in sorted(registry.items()):
            if point not in tokens:
                yield self.finding(
                    chaos, line, 0,
                    f"injection point '{point}' is not cataloged in "
                    f"{ROBUSTNESS_CATALOG}; add it (backticked) with "
                    f"the failure modes it models",
                )

    @staticmethod
    def _point_constants(
        project: Project,
    ) -> Iterator[tuple[SourceFile, str, int, int]]:
        """Top-level ``POINT_* = "..."`` string constants, tree-wide."""
        for source in project.files:
            for statement in source.tree.body:
                if not isinstance(statement, ast.Assign):
                    continue
                if not isinstance(statement.value, ast.Constant):
                    continue
                if not isinstance(statement.value.value, str):
                    continue
                for target in statement.targets:
                    if isinstance(target, ast.Name) and target.id.startswith(
                        "POINT_"
                    ):
                        yield (
                            source,
                            statement.value.value,
                            statement.value.lineno,
                            statement.value.col_offset,
                        )
