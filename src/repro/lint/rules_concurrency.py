"""RL008–RL011: the concurrency rules.

PR 9 made the reproduction a long-running concurrent service: an
asyncio event loop in front, per-session worker threads behind it,
``Condition``/``RLock``/``Lock`` state in between, and a leased shared
``WorkPool`` underneath.  That is exactly the territory where the
paper's slow-transfer pathologies have software analogues — a blocked
event loop or a lock-order inversion stalls every client the same way
a slow receiver stalls a table transfer.  These rules turn the three
classic failure shapes (event-loop stall, unguarded shared state,
leaked resource, deadlock) into lint findings with RL001-style
witness paths, built on :mod:`repro.lint.effects`.
"""

from __future__ import annotations

import ast
import re
from collections import deque
from typing import Iterable, Iterator

from repro.lint.callgraph import MODULE_BODY
from repro.lint.effects import (
    EffectMap,
    FunctionEffects,
    effect_map_for,
)
from repro.lint.engine import Finding, Rule, register_rule
from repro.lint.project import Project, SourceFile

#: packages whose ``async def`` bodies must never block (RL008).
ASYNC_PACKAGES = ("repro.serve",)

#: long-running modules where a leaked resource accumulates (RL010).
LIFECYCLE_PACKAGES = (
    "repro.serve",
    "repro.exec",
    "repro.workloads.checkpoint",
)

#: the guarded-by annotation: on the line declaring a shared mutable
#: attribute, name the lock attribute every access must hold.
GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: methods that run before the object is shared — unguarded writes
#: there are construction, not races.
_CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__post_init__", "__new__", "__del__"}
)


def _describe(qname: str) -> str:
    if qname.endswith("." + MODULE_BODY):
        return qname[: -len(MODULE_BODY) - 1] + " (module body)"
    return qname


# ---------------------------------------------------------------------- #
# RL008                                                                   #
# ---------------------------------------------------------------------- #
@register_rule
class AsyncBlockingReachable(Rule):
    """RL008: nothing reachable from an ``async def`` body in the
    service package may block the thread — a blocked coroutine stalls
    the event loop for every connected client."""

    id = "RL008"
    summary = (
        "no blocking call reachable from async def bodies in repro.serve "
        "(run_in_executor/to_thread boundaries allowlisted)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        effects = effect_map_for(project)
        entries = sorted(
            qname
            for qname, fx in effects.functions.items()
            if fx.is_async and fx.source.in_package(ASYNC_PACKAGES)
        )
        for fx, witness, effect in effects.blocking_from(entries):
            where = _describe(fx.qname)
            if len(witness) > 1:
                chain = " -> ".join(_describe(q) for q in witness)
                message = (
                    f"{effect.what}() ({effect.why}) in {where}, "
                    f"reachable from async code via {chain}; hand the "
                    f"blocking work to loop.run_in_executor or "
                    f"asyncio.to_thread"
                )
            else:
                message = (
                    f"{effect.what}() ({effect.why}) inside async "
                    f"function {where}; a blocked coroutine stalls the "
                    f"event loop for every client — hand the work to "
                    f"loop.run_in_executor or asyncio.to_thread"
                )
            yield self.finding(fx.source, effect.line, effect.col, message)


# ---------------------------------------------------------------------- #
# RL009                                                                   #
# ---------------------------------------------------------------------- #
@register_rule
class GuardedByDiscipline(Rule):
    """RL009: every read/write of a ``# guarded-by:`` annotated
    attribute must come from a method whose effect set acquires the
    named lock (directly or via a callee)."""

    id = "RL009"
    summary = (
        "accesses to # guarded-by: annotated attributes must hold the "
        "named lock (effect-set aware)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        effects = effect_map_for(project)
        guards = _collect_guards(project)
        if not guards:
            return
        guarded_classes = {class_qname for class_qname, _ in guards}
        for qname in sorted(effects.functions):
            fx = effects.functions[qname]
            if fx.class_qname not in guarded_classes:
                continue
            method = qname.rsplit(".", 1)[-1]
            if method in _CONSTRUCTION_METHODS:
                continue
            closure: dict[str, tuple[str, ...]] | None = None
            for access in fx.self_accesses:
                guard = guards.get((fx.class_qname, access.attr))
                if guard is None:
                    continue
                lock_attr, declared_at = guard
                lock_path = f"{fx.class_qname}.{lock_attr}"
                if closure is None:
                    closure = effects.acquires_closure(qname)
                if lock_path in closure:
                    continue
                verb = "writes" if access.write else "reads"
                yield self.finding(
                    fx.source, access.line, access.col,
                    f"'{_describe(qname)}' {verb} self.{access.attr} "
                    f"without acquiring self.{lock_attr} (declared "
                    f"guarded-by at {declared_at}); take the lock, or "
                    f"route the access through a method that does",
                )


def _collect_guards(
    project: Project,
) -> dict[tuple[str, str], tuple[str, str]]:
    """``{(class qname, attr): (lock attr, "path:line" declared)}``."""
    guards: dict[tuple[str, str], tuple[str, str]] = {}
    for source in project.files:
        for class_qname, classdef in _classes(source):
            for statement in classdef.body:
                if isinstance(statement, (ast.Assign, ast.AnnAssign)):
                    for name in _name_targets(statement):
                        _note_guard(
                            guards, source, class_qname, name,
                            statement.lineno,
                        )
                elif isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    for sub in ast.walk(statement):
                        if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                            continue
                        for attr in _self_attr_targets(sub):
                            _note_guard(
                                guards, source, class_qname, attr,
                                sub.lineno,
                            )
    return guards


def _note_guard(
    guards: dict[tuple[str, str], tuple[str, str]],
    source: SourceFile,
    class_qname: str,
    attr: str,
    line: int,
) -> None:
    if line > len(source.lines):
        return
    match = GUARDED_BY_RE.search(source.lines[line - 1])
    if match is None:
        return
    guards.setdefault(
        (class_qname, attr),
        (match.group(1), f"{source.relpath}:{line}"),
    )


def _name_targets(statement: ast.Assign | ast.AnnAssign) -> Iterator[str]:
    targets = (
        statement.targets
        if isinstance(statement, ast.Assign)
        else [statement.target]
    )
    for target in targets:
        if isinstance(target, ast.Name):
            yield target.id


def _self_attr_targets(statement: ast.Assign | ast.AnnAssign) -> Iterator[str]:
    targets = (
        statement.targets
        if isinstance(statement, ast.Assign)
        else [statement.target]
    )
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            yield target.attr


def _classes(source: SourceFile) -> Iterator[tuple[str, ast.ClassDef]]:
    def walk(body: list[ast.stmt], prefix: str) -> Iterator[tuple[str, ast.ClassDef]]:
        for statement in body:
            if isinstance(statement, ast.ClassDef):
                qname = f"{prefix}.{statement.name}"
                yield qname, statement
                yield from walk(statement.body, qname)

    yield from walk(source.tree.body, source.module)


# ---------------------------------------------------------------------- #
# RL010                                                                   #
# ---------------------------------------------------------------------- #
@register_rule
class ResourceLifecycle(Rule):
    """RL010: in the long-running modules, every allocation must be
    dominated by ``with`` or released on all paths via ``try/finally``
    (escaping to a caller or an owning object transfers the duty)."""

    id = "RL010"
    summary = (
        "allocations in repro.serve/repro.exec/repro.workloads.checkpoint "
        "must be with-managed or released in a finally block"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        effects = effect_map_for(project)
        for qname in sorted(effects.functions):
            fx = effects.functions[qname]
            if not fx.source.in_package(LIFECYCLE_PACKAGES):
                continue
            for alloc in fx.allocations:
                if alloc.managed:
                    continue
                yield self.finding(
                    fx.source, alloc.line, alloc.col,
                    f"{alloc.api}() allocates a {alloc.resource} in "
                    f"{_describe(qname)} but {alloc.how}; dominate it "
                    f"with a `with` block or release it in try/finally",
                )


# ---------------------------------------------------------------------- #
# RL011                                                                   #
# ---------------------------------------------------------------------- #
@register_rule
class LockOrderConsistency(Rule):
    """RL011: the project-wide acquires-while-holding graph must be
    acyclic — a cycle means two call paths can take the same locks in
    opposite orders and deadlock."""

    id = "RL011"
    summary = (
        "the static acquires-while-holding lock graph must have no "
        "cycles (potential deadlock)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        effects = effect_map_for(project)
        edges = _order_edges(effects)
        adjacency: dict[str, set[str]] = {}
        for held, acquired in edges:
            adjacency.setdefault(held, set()).add(acquired)

        for component in _cyclic_components(adjacency):
            anchor = next(
                (held, acquired)
                for held, acquired in sorted(edges)
                if held in component and acquired in component
            )
            forward, source, line, col = edges[anchor]
            path = _shortest_path(adjacency, anchor[1], anchor[0])
            reverse = "; ".join(
                edges[(path[i], path[i + 1])][0]
                for i in range(len(path) - 1)
            )
            yield self.finding(
                source, line, col,
                f"potential deadlock: inconsistent lock order between "
                f"{anchor[0]} and {anchor[1]} — {forward}; meanwhile "
                f"{reverse}",
            )


def _order_edges(
    effects: EffectMap,
) -> dict[tuple[str, str], tuple[str, SourceFile, int, int]]:
    """``{(held, acquired): (witness text, source, line, col)}`` —
    first (deterministically smallest) witness per edge wins."""
    edges: dict[tuple[str, str], tuple[str, SourceFile, int, int]] = {}
    for qname in sorted(effects.functions):
        fx = effects.functions[qname]
        for direct in fx.held_acquires:
            edges.setdefault(
                (direct.held, direct.acquired),
                (
                    f"{_describe(qname)} acquires {direct.acquired} "
                    f"while holding {direct.held}",
                    fx.source, direct.line, direct.col,
                ),
            )
        for call in fx.held_calls:
            callee = call.callee
            if callee in effects.graph.classes:
                callee = callee + ".__init__"
            for lock, witness in sorted(
                effects.acquires_closure(callee).items()
            ):
                if lock == call.held:
                    continue
                chain = " -> ".join(_describe(q) for q in witness)
                edges.setdefault(
                    (call.held, lock),
                    (
                        f"{_describe(qname)} calls {chain} while "
                        f"holding {call.held}, acquiring {lock}",
                        fx.source, call.line, call.col,
                    ),
                )
    return edges


def _reachable_set(adjacency: dict[str, set[str]], start: str) -> set[str]:
    """Nodes reachable from ``start`` via one or more edges."""
    seen: set[str] = set()
    queue: deque[str] = deque(sorted(adjacency.get(start, ())))
    while queue:
        node = queue.popleft()
        if node in seen:
            continue
        seen.add(node)
        queue.extend(sorted(adjacency.get(node, ())))
    return seen


def _cyclic_components(adjacency: dict[str, set[str]]) -> list[set[str]]:
    """Strongly connected components containing a cycle, sorted."""
    nodes = sorted(
        set(adjacency) | {n for targets in adjacency.values() for n in targets}
    )
    reach = {node: _reachable_set(adjacency, node) for node in nodes}
    components: list[set[str]] = []
    assigned: set[str] = set()
    for node in nodes:
        if node in assigned:
            continue
        component = {
            other
            for other in nodes
            if other in reach[node] and node in reach[other]
        } | {node}
        if len(component) > 1 or node in reach[node]:
            components.append(component)
        assigned |= component
    return sorted(components, key=lambda c: sorted(c))


def _shortest_path(
    adjacency: dict[str, set[str]], start: str, goal: str
) -> list[str]:
    """Shortest edge path ``start -> ... -> goal`` (must exist)."""
    previous: dict[str, str] = {}
    queue: deque[str] = deque([start])
    seen = {start}
    while queue:
        node = queue.popleft()
        for neighbor in sorted(adjacency.get(node, ())):
            if neighbor in seen:
                continue
            previous[neighbor] = node
            if neighbor == goal:
                path = [goal]
                while path[-1] != start:
                    path.append(previous[path[-1]])
                return list(reversed(path))
            seen.add(neighbor)
            queue.append(neighbor)
    raise AssertionError(f"no path {start} -> {goal}")  # pragma: no cover


__all__ = [
    "ASYNC_PACKAGES",
    "AsyncBlockingReachable",
    "GUARDED_BY_RE",
    "GuardedByDiscipline",
    "LIFECYCLE_PACKAGES",
    "LockOrderConsistency",
    "ResourceLifecycle",
]
