"""The rule engine: findings, registry, suppressions, the run loop.

A :class:`Rule` inspects a :class:`~repro.lint.project.Project` and
yields :class:`Finding` objects.  The engine then applies inline
suppressions — a ``# repro: noqa[RL001]`` comment on a finding's line
silences it — and reports any suppression that silenced nothing as a
finding of its own (``RL000``), so stale exemptions cannot accumulate.

Rules self-register via :func:`register_rule`; the registry is what
``tdat lint --list-rules`` prints and what ``--select`` filters.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lint.project import Project, SourceFile

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: the unused-suppression check; not a registered rule (it cannot be
#: selected away or suppressed — a noqa that silences nothing is dead
#: weight wherever it appears).
UNUSED_SUPPRESSION_ID = "RL000"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[A-Za-z0-9_,\s]+)\]\s*(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str  # posix path relative to the project root
    line: int  # 1-based
    col: int  # 0-based, as ast reports it
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity for baseline matching: stable across line drift."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Rule:
    """Base class: one invariant, checked project-wide.

    Subclasses set ``id`` (``RLnnn``), ``summary`` (one line, shown by
    ``--list-rules``), optionally ``severity``, and implement
    :meth:`check`.
    """

    id: str = ""
    summary: str = ""
    severity: str = SEVERITY_ERROR

    def check(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, source: SourceFile, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=source.relpath,
            line=line,
            col=col,
            message=message,
        )


#: the registered ruleset, id -> rule instance.
RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and add to the registry."""
    rule = cls()
    if not rule.id or not rule.summary:
        raise ValueError(f"rule {cls.__name__} needs an id and a summary")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return cls


@dataclass
class Suppression:
    """One ``# repro: noqa[...]`` comment."""

    path: str
    line: int
    rules: tuple[str, ...]
    reason: str
    used: set[str] = field(default_factory=set)


def find_suppressions(source: SourceFile) -> list[Suppression]:
    """Every noqa comment of a file, with the rules it names.

    Tokenized, not regex-over-lines: the marker inside a docstring (or
    any string literal) is prose about the syntax, not a suppression.
    """
    suppressions = []
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source.text).readline)
        )
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return []  # the file parsed, so this is unreachable in practice
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        number = token.start[0]
        match = _NOQA_RE.search(token.string)
        if match is None:
            continue
        rules = tuple(
            rule.strip() for rule in match.group("rules").split(",")
            if rule.strip()
        )
        suppressions.append(
            Suppression(
                path=source.relpath,
                line=number,
                rules=rules,
                reason=match.group("reason").strip(),
            )
        )
    return suppressions


@dataclass
class LintResult:
    """What one run produced, before and after baseline filtering."""

    findings: list[Finding]  # new findings: not suppressed, not baselined
    suppressed: list[Finding]  # silenced by an inline noqa
    baselined: list[Finding]  # matched a committed baseline entry
    stale_baseline: list[tuple[str, str, str]]  # entries nothing matched

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "stale_baseline": [
                {"rule": rule, "path": path, "message": message}
                for rule, path, message in self.stale_baseline
            ],
        }


def run_lint(
    project: Project,
    select: Iterable[str] | None = None,
    baseline_keys: Iterable[tuple[str, str, str]] = (),
) -> LintResult:
    """Run the (selected) ruleset and fold in suppressions + baseline."""
    rules = _select_rules(select)
    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(project))

    suppressions: dict[tuple[str, int], list[Suppression]] = {}
    all_suppressions: list[Suppression] = []
    for source in project.files:
        for suppression in find_suppressions(source):
            key = (suppression.path, suppression.line)
            suppressions.setdefault(key, []).append(suppression)
            all_suppressions.append(suppression)

    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw:
        hit = None
        for suppression in suppressions.get((finding.path, finding.line), ()):
            if finding.rule in suppression.rules:
                suppression.used.add(finding.rule)
                hit = suppression
                break
        (suppressed if hit is not None else kept).append(finding)

    # A suppression that silenced nothing for one of its rules is a
    # finding itself: stale exemptions rot into blanket ones.
    for suppression in all_suppressions:
        for rule_id in suppression.rules:
            if rule_id in suppression.used:
                continue
            kept.append(
                Finding(
                    rule=UNUSED_SUPPRESSION_ID,
                    severity=SEVERITY_ERROR,
                    path=suppression.path,
                    line=suppression.line,
                    col=0,
                    message=(
                        f"unused suppression: no {rule_id} finding on "
                        f"this line"
                    ),
                )
            )

    baseline = set(baseline_keys)
    matched: set[tuple[str, str, str]] = set()
    fresh: list[Finding] = []
    baselined: list[Finding] = []
    for finding in kept:
        key = finding.baseline_key()
        if key in baseline:
            matched.add(key)
            baselined.append(finding)
        else:
            fresh.append(finding)

    return LintResult(
        findings=sorted(fresh, key=Finding.sort_key),
        suppressed=sorted(suppressed, key=Finding.sort_key),
        baselined=sorted(baselined, key=Finding.sort_key),
        stale_baseline=sorted(baseline - matched),
    )


def _select_rules(select: Iterable[str] | None) -> list[Rule]:
    if select is None:
        return [RULES[rule_id] for rule_id in sorted(RULES)]
    chosen = []
    for rule_id in select:
        if rule_id not in RULES:
            raise KeyError(
                f"unknown rule {rule_id!r} (known: {', '.join(sorted(RULES))})"
            )
        chosen.append(RULES[rule_id])
    return chosen


def all_findings(result: LintResult) -> Iterator[Finding]:
    """New + baselined findings, for ``--write-baseline``."""
    yield from sorted(
        list(result.findings) + list(result.baselined), key=Finding.sort_key
    )


__all__ = [
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Suppression",
    "UNUSED_SUPPRESSION_ID",
    "all_findings",
    "find_suppressions",
    "register_rule",
    "run_lint",
]
