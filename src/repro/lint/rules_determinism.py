"""RL001/RL002: the determinism rules.

The paper's delay attribution is computed entirely from trace
timestamps; the campaign layer guarantees a parallel run is
byte-identical to the serial one.  Both properties die silently the
moment simulation or analysis code reads the host — wall clock,
process-seeded RNG, hash-randomized ``set`` order — so these rules
make "the deterministic packages never observe the host" a compile
time error instead of a flaky-test hunt.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.callgraph import MODULE_BODY, build_call_graph
from repro.lint.engine import Finding, Rule, register_rule
from repro.lint.project import Project, SourceFile

#: packages whose results must be pure functions of (input, seed).
DETERMINISTIC_PACKAGES = (
    "repro.netsim",
    "repro.tcp",
    "repro.bgp",
    "repro.analysis",
)

#: subsystems that are wall-domain *by contract* (supervision,
#: observability, fault injection) — RL002 does not apply inside them.
WALL_DOMAIN_PACKAGES = ("repro.exec", "repro.obs", "repro.faults", "repro.lint")

#: qualified names whose call observes the host clock or an unseeded
#: process-global RNG.
FORBIDDEN_CALLS = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.monotonic": "wall clock",
    "time.monotonic_ns": "wall clock",
    "time.perf_counter": "wall clock",
    "time.perf_counter_ns": "wall clock",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.datetime.today": "wall clock",
    "datetime.date.today": "wall clock",
    "random.random": "unseeded module-global RNG",
    "random.randint": "unseeded module-global RNG",
    "random.randrange": "unseeded module-global RNG",
    "random.uniform": "unseeded module-global RNG",
    "random.choice": "unseeded module-global RNG",
    "random.choices": "unseeded module-global RNG",
    "random.sample": "unseeded module-global RNG",
    "random.shuffle": "unseeded module-global RNG",
    "random.getrandbits": "unseeded module-global RNG",
    "random.gauss": "unseeded module-global RNG",
    "random.expovariate": "unseeded module-global RNG",
    "random.seed": "reseeding the module-global RNG",
    "uuid.uuid1": "host-derived identifier",
    "uuid.uuid4": "unseeded RNG identifier",
    "os.urandom": "OS entropy",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
}


@register_rule
class WallClockReachable(Rule):
    """RL001: nothing reachable from a deterministic package may read
    the host clock or an unseeded RNG."""

    id = "RL001"
    summary = (
        "no wall-clock or unseeded-random call reachable from "
        "repro.netsim/tcp/bgp/analysis (call-graph aware)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        graph = build_call_graph(project)
        entries = [
            qname
            for qname, node in graph.nodes.items()
            if node.source.in_package(DETERMINISTIC_PACKAGES)
        ]
        paths = graph.reachable_from(entries)

        findings: dict[tuple[str, int, int], Finding] = {}
        for qname, witness in paths.items():
            node = graph.nodes[qname]
            for call in node.calls:
                sink = self._sink(graph, call.callee, node, call)
                if sink is None:
                    continue
                api, why = sink
                key = (node.source.relpath, call.line, call.col)
                if key in findings and len(witness) >= _witness_len(
                    findings[key]
                ):
                    continue
                where = _describe(qname)
                if len(witness) > 1:
                    chain = " -> ".join(_describe(q) for q in witness)
                    message = (
                        f"{api}() ({why}) in {where}, reachable from a "
                        f"deterministic package via {chain}"
                    )
                else:
                    message = (
                        f"{api}() ({why}) inside deterministic package "
                        f"code ({where}); derive values from the "
                        f"simulation clock or a seeded stream instead"
                    )
                findings[key] = self.finding(
                    node.source, call.line, call.col, message
                )
        return sorted(findings.values(), key=Finding.sort_key)

    def _sink(self, graph, callee: str, node, call) -> tuple[str, str] | None:
        why = FORBIDDEN_CALLS.get(callee)
        if why is not None:
            return callee, why
        if callee == "random.Random":
            # Seeded construction (random.Random(seed)) is the repo's
            # own idiom; only a bare Random() draws from the OS.
            if self._bare_random_call(node, call):
                return "random.Random", "Random() constructed without a seed"
        return None

    @staticmethod
    def _bare_random_call(node, call) -> bool:
        for candidate in ast.walk(node.source.tree):
            if (
                isinstance(candidate, ast.Call)
                and candidate.lineno == call.line
                and candidate.col_offset == call.col
            ):
                return not candidate.args and not candidate.keywords
        return False


def _witness_len(finding: Finding) -> int:
    return finding.message.count(" -> ") + 1


def _describe(qname: str) -> str:
    if qname.endswith("." + MODULE_BODY):
        return qname[: -len(MODULE_BODY) - 1] + " (module body)"
    return qname


# ---------------------------------------------------------------------- #
# RL002                                                                   #
# ---------------------------------------------------------------------- #
#: calls through which consuming a set is order-insensitive.
_ORDER_FREE_CONSUMERS = {
    "sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset",
}

#: builtins whose result exposes the set's iteration order.
_ORDER_EXPOSING_CALLS = {"list", "tuple", "enumerate", "iter", "reversed"}

#: set methods returning another set (taint propagates).
_SET_PRODUCING_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}


@register_rule
class SetOrderIteration(Rule):
    """RL002: iterating a builtin ``set`` feeds hash-randomized order
    into whatever consumes it."""

    id = "RL002"
    summary = (
        "no ordering-dependent iteration over builtin sets in "
        "deterministic output paths"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for source in project.files:
            if source.in_package(WALL_DOMAIN_PACKAGES):
                continue
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterator[Finding]:
        visitor = _SetFlowVisitor()
        visitor.visit(source.tree)
        for line, col, how in visitor.violations:
            yield self.finding(
                source, line, col,
                f"{how} iterates a builtin set: element order is "
                f"hash-randomized across interpreter runs; wrap in "
                f"sorted(...) or use an ordered structure",
            )


class _SetFlowVisitor(ast.NodeVisitor):
    """Local, per-scope tracking of which names hold builtin sets."""

    def __init__(self) -> None:
        self.violations: list[tuple[int, int, str]] = []
        self._set_names: list[set[str]] = [set()]

    # -- scope boundaries ------------------------------------------------
    def _visit_scope(self, node) -> None:
        self._set_names.append(set())
        self.generic_visit(node)
        self._set_names.pop()

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope
    visit_ClassDef = _visit_scope

    # -- taint tracking --------------------------------------------------
    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_PRODUCING_METHODS
                and self.is_set_expr(func.value)
            ):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # Set algebra on a known set keeps the result a set; on
            # unknown operands we stay silent (could be ints, flags).
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_names)
        return False

    def _mark(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        if self.is_set_expr(value):
            self._set_names[-1].add(target.id)
        else:
            self._set_names[-1].discard(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        for target in node.targets:
            self._mark(target, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if node.value is not None:
            self._mark(node.target, node.value)
        elif isinstance(node.target, ast.Name) and _is_set_annotation(
            node.annotation
        ):
            self._set_names[-1].add(node.target.id)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # `s |= other` keeps s a set; any other augmented op on a
        # tracked name leaves its taint unchanged.
        self.generic_visit(node)

    # -- violation sites -------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if self.is_set_expr(node.iter):
            self.violations.append(
                (node.iter.lineno, node.iter.col_offset, "for loop")
            )
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            if self.is_set_expr(generator.iter):
                # A set comprehension over a set stays order-free.
                if isinstance(node, (ast.SetComp,)):
                    continue
                self.violations.append(
                    (
                        generator.iter.lineno,
                        generator.iter.col_offset,
                        "comprehension",
                    )
                )
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDER_EXPOSING_CALLS
            and node.args
            and self.is_set_expr(node.args[0])
        ):
            self.violations.append(
                (node.lineno, node.col_offset, f"{func.id}() call")
            )
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and node.args
            and self.is_set_expr(node.args[0])
        ):
            self.violations.append(
                (node.lineno, node.col_offset, "str.join() call")
            )
        self.generic_visit(node)


def _is_set_annotation(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset", "Set", "FrozenSet")
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    return False
