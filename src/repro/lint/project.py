"""The lint target: parsed source files with real module names.

A :class:`Project` is a set of parsed Python files under one root.
Each file knows its dotted module name (derived from the
``__init__.py`` chain above it, exactly as the import system would
name it), so rules can reason about packages — "is this function in
``repro.netsim``?" — instead of path prefixes.  The root also anchors
project-level artifacts rules check against (the observability
catalog, the baseline file).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator


class ProjectError(Exception):
    """The lint target could not be loaded (bad path, unparseable file)."""


@dataclass
class SourceFile:
    """One parsed Python file of the project."""

    path: Path  # absolute
    relpath: str  # posix, relative to the project root
    module: str  # dotted module name, e.g. "repro.netsim.simulator"
    text: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @property
    def package(self) -> str:
        """The module's package (the module itself for ``__init__``)."""
        if self.path.name == "__init__.py":
            return self.module
        return self.module.rpartition(".")[0]

    def in_package(self, prefixes: Iterable[str]) -> bool:
        """Whether the module lives under any of the given packages."""
        for prefix in prefixes:
            if self.module == prefix or self.module.startswith(prefix + "."):
                return True
        return False


def module_name_for(path: Path) -> str:
    """The dotted module name the import system would give ``path``.

    Walks up the directory tree for as long as ``__init__.py`` exists,
    the same rule the import machinery applies.  A file outside any
    package is its own single-segment module.
    """
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:  # a bare __init__.py with no package directory above
        parts = [path.stem]
    return ".".join(parts)


@dataclass
class Project:
    """Every parsed file under the lint root, indexed by module name."""

    root: Path
    files: list[SourceFile] = field(default_factory=list)
    modules: dict[str, SourceFile] = field(default_factory=dict)

    @classmethod
    def load(
        cls,
        root: Path | str,
        paths: Iterable[Path | str] | None = None,
        jobs: int = 1,
    ) -> "Project":
        """Parse every ``*.py`` under ``paths`` (default: the root).

        ``root`` anchors relative paths in findings and project-level
        artifacts (``docs/observability.md``).  A file that does not
        parse raises :class:`ProjectError` — the lint target is
        expected to be syntactically valid code.

        ``jobs > 1`` parses files in parallel over a
        :class:`~repro.exec.pool.WorkPool`.  Outcomes come back in
        submission order, so the resulting project — and every finding
        computed from it — is byte-identical to a serial load.
        """
        root = Path(root).resolve()
        if paths is None:
            paths = [root]
        project = cls(root=root)
        targets: list[Path] = []
        for path in paths:
            path = Path(path)
            if not path.is_absolute():
                path = root / path
            if not path.exists():
                raise ProjectError(f"no such lint target: {path}")
            targets.extend(sorted(_iter_python_files(path)))
        if jobs > 1 and len(targets) > 1:
            project._load_parallel(targets, jobs)
        else:
            for file_path in targets:
                project._ingest(_parse_file(file_path, root))
        return project

    def _load_parallel(self, targets: list[Path], jobs: int) -> None:
        # Imported lazily: the serial path (and `tdat --help`) must not
        # pay for the executor machinery.
        from repro.exec.pool import WorkPool

        pool = WorkPool(workers=min(jobs, len(targets)))
        outcomes = pool.map(
            _parse_task, [(str(p), str(self.root)) for p in targets]
        )
        for outcome in outcomes:
            if not outcome.ok:
                raise ProjectError(str(outcome.error))
            self._ingest(outcome.value)

    def _ingest(self, source: SourceFile) -> None:
        self.files.append(source)
        self.modules[source.module] = source

    def iter_files(self, packages: Iterable[str] | None = None) -> Iterator[SourceFile]:
        """The project's files, optionally limited to some packages."""
        for source in self.files:
            if packages is None or source.in_package(packages):
                yield source

    def artifact(self, relpath: str) -> Path:
        """A project-level artifact path (docs, baseline), root-relative."""
        return self.root / relpath


def _parse_file(path: Path, root: Path) -> SourceFile:
    path = path.resolve()
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        raise ProjectError(f"{path}: does not parse: {exc}") from exc
    try:
        relpath = path.relative_to(root).as_posix()
    except ValueError:
        relpath = path.as_posix()
    return SourceFile(
        path=path,
        relpath=relpath,
        module=module_name_for(path),
        text=text,
        tree=tree,
        lines=text.splitlines(),
    )


def _parse_task(spec: tuple[str, str]) -> SourceFile:
    """Pool task: parse one file (module-level, hence picklable)."""
    return _parse_file(Path(spec[0]), Path(spec[1]))


def _iter_python_files(path: Path) -> Iterator[Path]:
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    for candidate in path.rglob("*.py"):
        # Editable-install metadata and caches are not lint targets.
        if "__pycache__" in candidate.parts:
            continue
        if any(part.endswith(".egg-info") for part in candidate.parts):
            continue
        yield candidate
