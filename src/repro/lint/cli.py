"""The lint command line, shared by ``tdat lint`` and ``python -m repro.lint``.

Exit codes (lint's own contract, independent of ``tdat``'s analysis
codes): 0 — clean (no non-baselined findings); 1 — findings; 2 — the
lint run itself failed (bad target path, unreadable baseline, unknown
rule).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

LINT_EXIT_CODES = """\
exit codes:
  0  clean (no findings outside the committed baseline)
  1  findings
  2  lint failed to run (bad path, unreadable baseline, unknown rule)\
"""


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """The lint options, attachable to any parser (tdat's subcommand)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src/repro under "
        "the project root)",
    )
    parser.add_argument(
        "--root", metavar="DIR",
        help="project root anchoring relative paths, the baseline and "
        "the docs catalog (default: nearest ancestor with pyproject.toml)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of text "
        "(alias for --format json)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default=None,
        help="output format (default: text; sarif is SARIF 2.1.0 for "
        "code-host inline annotations)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parse project files over N worker processes; findings "
        "are byte-identical to --jobs 1 (default: 1)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="baseline file (default: <root>/lint-baseline.json when "
        "present); findings matching it don't fail the run",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "Determinism & isolation static analysis for the T-DAT repo"
        ),
        epilog=LINT_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    configure_parser(parser)
    return parser


def run_with_args(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    # Imported here so `tdat --help` never pays for the lint engine.
    from repro.lint import RULES, run_lint
    from repro.lint.baseline import (
        DEFAULT_BASELINE_NAME,
        BaselineError,
        load_baseline,
        write_baseline,
    )
    from repro.lint.engine import all_findings
    from repro.lint.project import Project, ProjectError

    if args.list_rules:
        for rule_id in sorted(RULES):
            rule = RULES[rule_id]
            print(f"{rule_id}  [{rule.severity}]  {rule.summary}")
        return EXIT_CLEAN

    try:
        root = _resolve_root(args)
        paths = [Path(p) for p in args.paths] or [_default_target(root)]
        project = Project.load(root, paths, jobs=max(1, args.jobs))
    except (ProjectError, FileNotFoundError) as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    baseline_path = (
        Path(args.baseline) if args.baseline
        else root / DEFAULT_BASELINE_NAME
    )
    baseline_keys: set = set()
    if baseline_path.exists() and not args.write_baseline:
        try:
            baseline_keys = load_baseline(baseline_path).keys()
        except BaselineError as exc:
            print(f"repro.lint: error: {exc}", file=sys.stderr)
            return EXIT_USAGE

    select = None
    if args.select:
        select = [rule.strip() for rule in args.select.split(",") if rule.strip()]
    try:
        result = run_lint(project, select=select, baseline_keys=baseline_keys)
    except KeyError as exc:
        print(f"repro.lint: error: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_baseline:
        write_baseline(baseline_path, all_findings(result))
        print(
            f"wrote {len(result.findings) + len(result.baselined)} "
            f"finding(s) -> {baseline_path}",
            file=sys.stderr,
        )
        return EXIT_CLEAN

    output_format = args.format or ("json" if args.json else "text")
    if output_format == "json":
        payload = result.to_dict()
        payload["root"] = str(root)
        payload["files"] = len(project.files)
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif output_format == "sarif":
        from repro.lint.sarif import render_sarif

        sys.stdout.write(render_sarif(result, str(root)))
    else:
        for finding in result.findings:
            print(finding.render())
        summary = (
            f"{len(project.files)} file(s): "
            f"{len(result.findings)} finding(s), "
            f"{len(result.suppressed)} suppressed, "
            f"{len(result.baselined)} baselined"
        )
        if result.stale_baseline:
            summary += (
                f", {len(result.stale_baseline)} stale baseline entr"
                f"{'y' if len(result.stale_baseline) == 1 else 'ies'} "
                f"(regenerate with --write-baseline)"
            )
        print(summary, file=sys.stderr)
    return EXIT_FINDINGS if result.findings else EXIT_CLEAN


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run_with_args(args)


def _resolve_root(args: argparse.Namespace) -> Path:
    if args.root:
        root = Path(args.root).resolve()
        if not root.is_dir():
            raise FileNotFoundError(f"--root is not a directory: {root}")
        return root
    start = Path(args.paths[0]).resolve() if args.paths else Path.cwd()
    if start.is_file():
        start = start.parent
    for candidate in [start, *start.parents]:
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def _default_target(root: Path) -> Path:
    target = root / "src" / "repro"
    if target.is_dir():
        return target
    raise FileNotFoundError(
        f"no lint target given and {target} does not exist; pass PATH"
    )


if __name__ == "__main__":
    sys.exit(main())
