"""A best-effort static call graph over the project.

Nodes are functions (and methods, and one pseudo-node per module body
for import-time code) named by qualified name, e.g.
``repro.analysis.tdat.analyze_connection`` or
``repro.netsim.simulator.Simulator.run``.  Edges are calls the
resolver can pin down statically:

* bare calls to names bound in the module (local ``def``/``class``,
  ``from a.b import c``, nested functions of the enclosing scope);
* attribute calls on imported modules (``time.time()``,
  ``mod.helper()``);
* ``self.method()`` calls within a class;
* constructor calls resolve to the class's ``__init__``.

Dynamic dispatch (``obj.method()`` on an arbitrary object, callbacks,
higher-order functions) is deliberately *not* resolved: a lint gate
must not guess, because a wrong guess is either a false alarm in CI or
unearned confidence.  The resolved subset is exactly the shape a
wall-clock or RNG leak takes in practice — a helper somewhere calling
``time.time()``, imported into a deterministic package.

Import bindings map names to fully qualified targets, so chained
attribute access composes: ``from datetime import datetime`` binds
``datetime -> datetime.datetime`` and a later ``datetime.now()``
resolves to ``datetime.datetime.now``.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.project import Project, SourceFile

#: qualified-name suffix of the pseudo-node holding module-level code.
MODULE_BODY = "<module>"


@dataclass(frozen=True)
class CallSite:
    """One resolved call: who is called, from where."""

    callee: str  # qualified name
    line: int
    col: int


@dataclass
class FunctionNode:
    """One function/method (or module body) in the graph."""

    qname: str
    module: str
    source: SourceFile
    calls: list[CallSite] = field(default_factory=list)


class CallGraph:
    """The project's functions and the calls between them."""

    def __init__(self) -> None:
        self.nodes: dict[str, FunctionNode] = {}
        self.classes: set[str] = set()  # qualified class names

    def node(self, qname: str) -> FunctionNode | None:
        return self.nodes.get(qname)

    def callees(self, qname: str) -> Iterator[CallSite]:
        node = self.nodes.get(qname)
        if node is not None:
            yield from node.calls

    def reachable_from(self, entries: list[str]) -> dict[str, tuple[str, ...]]:
        """Every node reachable from ``entries``, with a witness path.

        Returns ``{qname: (entry, ..., qname)}`` — the shortest call
        chain found, for diagnostics.  Constructor edges are followed
        like any other call.
        """
        paths: dict[str, tuple[str, ...]] = {}
        queue: deque[str] = deque()
        for entry in entries:
            if entry in self.nodes and entry not in paths:
                paths[entry] = (entry,)
                queue.append(entry)
        while queue:
            current = queue.popleft()
            for call in self.callees(current):
                target = call.callee
                # A call to a class is a call to its constructor.
                if target in self.classes:
                    target = target + ".__init__"
                if target in self.nodes and target not in paths:
                    paths[target] = paths[current] + (target,)
                    queue.append(target)
        return paths


def build_call_graph(project: Project) -> CallGraph:
    graph = CallGraph()
    for source in project.files:
        _GraphBuilder(graph, source).build()
    return graph


def module_bindings(source: SourceFile) -> dict[str, str]:
    """Name -> fully qualified target for the module's top level."""
    bindings: dict[str, str] = {}
    for statement in source.tree.body:
        _collect_import_bindings(statement, bindings)
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bindings[statement.name] = f"{source.module}.{statement.name}"
        elif isinstance(statement, ast.ClassDef):
            bindings[statement.name] = f"{source.module}.{statement.name}"
    return bindings


def _collect_import_bindings(
    statement: ast.stmt, bindings: dict[str, str]
) -> None:
    if isinstance(statement, ast.Import):
        for alias in statement.names:
            name = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            bindings[name] = target
    elif isinstance(statement, ast.ImportFrom) and statement.module:
        if statement.level:  # relative imports: outside our scope
            return
        for alias in statement.names:
            if alias.name == "*":
                continue
            bindings[alias.asname or alias.name] = (
                f"{statement.module}.{alias.name}"
            )


class _GraphBuilder(ast.NodeVisitor):
    """One file's contribution to the graph."""

    def __init__(self, graph: CallGraph, source: SourceFile) -> None:
        self.graph = graph
        self.source = source
        self.bindings = module_bindings(source)
        # Scope entries: (owning function node, enclosing class qname
        # for self-resolution, locally bound names, whether the scope
        # is a class *body* — where a def is a method, not a closure).
        self._scope: list[tuple[str, str | None, dict[str, str], bool]] = []

    def build(self) -> None:
        module_node = self._add_node(f"{self.source.module}.{MODULE_BODY}")
        self._scope.append((module_node.qname, None, {}, False))
        for statement in self.source.tree.body:
            self.visit(statement)
        self._scope.pop()

    # -- scope management ------------------------------------------------
    def _add_node(self, qname: str) -> FunctionNode:
        node = FunctionNode(
            qname=qname, module=self.source.module, source=self.source
        )
        self.graph.nodes[qname] = node
        return node

    def _current(self) -> FunctionNode:
        return self.graph.nodes[self._scope[-1][0]]

    def _qualify(self, name: str) -> str:
        owner, _, _, _ = self._scope[-1]
        if owner.endswith("." + MODULE_BODY):
            return f"{self.source.module}.{name}"
        return f"{owner}.{name}"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qname = self._qualify(node.name)
        self.graph.classes.add(qname)
        owner, _, locals_, _ = self._scope[-1]
        locals_[node.name] = qname
        # Class body: methods become <class>.<method>; the body's own
        # statements (rare) attribute to the enclosing scope.
        self._scope.append((owner, qname, dict(locals_), True))
        for statement in node.body:
            self.visit(statement)
        self._scope.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        owner, class_qname, locals_, in_class_body = self._scope[-1]
        if in_class_body and class_qname is not None:
            qname = f"{class_qname}.{node.name}"
        else:
            qname = self._qualify(node.name)
            locals_[node.name] = qname
        self._add_node(qname)
        # Closures keep the enclosing class for self-resolution (they
        # capture ``self``), but their own defs are not methods.
        self._scope.append((qname, class_qname, dict(locals_), False))
        for statement in node.body:
            self.visit(statement)
        self._scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- call resolution -------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        callee = self.resolve_call(node)
        if callee is not None:
            self._current().calls.append(
                CallSite(callee=callee, line=node.lineno, col=node.col_offset)
            )
        self.generic_visit(node)

    def resolve_call(self, node: ast.Call) -> str | None:
        """The qualified name this call targets, if statically known."""
        func = node.func
        if isinstance(func, ast.Name):
            _, _, locals_, _ = self._scope[-1]
            if func.id in locals_:
                return locals_[func.id]
            return self.bindings.get(func.id)
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if value.id == "self":
                    _, class_qname, _, _ = self._scope[-1]
                    if class_qname is not None:
                        return f"{class_qname}.{func.attr}"
                    return None
                base = self.bindings.get(value.id)
                if base is not None:
                    return f"{base}.{func.attr}"
        return None
