"""Conservative effect inference over the project call graph.

Every function (and method, and module body — mirroring the call
graph's node set) gets a statically inferred *effect set*:

* ``blocks`` — the function can stall its thread: sleeps, synchronous
  socket/file I/O, ``subprocess``, an un-timed ``lock.acquire()`` /
  ``event.wait()`` / ``thread.join()`` / ``queue.get()``;
* ``acquires(lock)`` — the function takes a lock or condition, named
  by its attribute path (``repro.serve.session.SessionManager._lock``);
* ``allocates(resource)`` — the function creates something that needs
  explicit release: open files, sockets, mmaps, threads, processes.

Effects then propagate through :mod:`repro.lint.callgraph`: a caller
*has* every effect of every callee the resolver can pin down, with the
shortest witness chain preserved for diagnostics — the same honesty
contract as RL001 (no dynamic dispatch, no guessing).

Two asymmetries are deliberate.  ``await``-ed calls produce **no**
effects: awaiting an asyncio primitive is cooperative, not blocking.
And calls through the sanctioned executor boundaries
(``loop.run_in_executor(...)`` / ``asyncio.to_thread(...)``) are
skipped entirely, arguments included — handing a blocking function to
an executor is exactly how async code is *supposed* to block.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.callgraph import (
    MODULE_BODY,
    CallGraph,
    build_call_graph,
    module_bindings,
)
from repro.lint.project import Project, SourceFile

EFFECT_BLOCKS = "blocks"
EFFECT_ACQUIRES = "acquires"
EFFECT_ALLOCATES = "allocates"

#: qualified names whose call can stall the calling thread.
BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "sleeps",
    "subprocess.run": "runs a child process synchronously",
    "subprocess.call": "runs a child process synchronously",
    "subprocess.check_call": "runs a child process synchronously",
    "subprocess.check_output": "runs a child process synchronously",
    "os.system": "runs a shell synchronously",
    "os.waitpid": "waits on a child process",
    "socket.create_connection": "opens a TCP connection synchronously",
    "socket.getaddrinfo": "resolves DNS synchronously",
    "socket.gethostbyname": "resolves DNS synchronously",
    "urllib.request.urlopen": "performs a synchronous HTTP request",
    "select.select": "waits on file descriptors",
    "signal.pause": "waits for a signal",
    "open": "synchronous file I/O",
    "io.open": "synchronous file I/O",
}

#: qualified names whose result owns a releasable resource.
ALLOCATING_CALLS: dict[str, str] = {
    "open": "file",
    "io.open": "file",
    "os.open": "file descriptor",
    "os.fdopen": "file",
    "os.pipe": "pipe",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "mmap.mmap": "memory map",
    "threading.Thread": "thread",
    "subprocess.Popen": "child process",
    "multiprocessing.Pipe": "pipe",
    "tempfile.TemporaryFile": "temporary file",
    "tempfile.NamedTemporaryFile": "temporary file",
}

#: constructors whose result is a lock (for recognizing module-level
#: lock globals: ``LOCK = threading.Lock()`` then ``with LOCK:``).
LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)

#: attribute names through which async code legitimately hands
#: blocking work to a thread — calls through these are not effects.
EXECUTOR_BOUNDARIES = frozenset({"run_in_executor", "to_thread"})

#: methods that release a resource, for lifecycle classification.
_RELEASE_METHODS = frozenset(
    {
        "close", "join", "release", "terminate", "shutdown", "kill",
        "stop", "cancel", "unlink", "cleanup",
    }
)


@dataclass(frozen=True)
class Effect:
    """One inferred effect at one source location."""

    kind: str  # EFFECT_BLOCKS / EFFECT_ACQUIRES / EFFECT_ALLOCATES
    what: str  # the API, lock path, or resource kind
    why: str  # one-line human description
    line: int
    col: int


@dataclass(frozen=True)
class Allocation:
    """One resource allocation with its lifecycle disposition."""

    resource: str
    api: str
    line: int
    col: int
    managed: bool
    how: str  # why it is (or is not) released on all paths


@dataclass(frozen=True)
class HeldAcquire:
    """Lock ``acquired`` taken while ``held`` was already held."""

    held: str
    acquired: str
    line: int
    col: int


@dataclass(frozen=True)
class HeldCall:
    """A resolved call made while ``held`` was held."""

    held: str
    callee: str
    line: int
    col: int


@dataclass(frozen=True)
class SelfAccess:
    """One ``self.<attr>`` read or write inside a method."""

    attr: str
    line: int
    col: int
    write: bool


@dataclass
class FunctionEffects:
    """The inferred effect set of one call-graph node."""

    qname: str
    module: str
    source: SourceFile
    class_qname: str | None
    is_async: bool
    effects: list[Effect] = field(default_factory=list)
    allocations: list[Allocation] = field(default_factory=list)
    held_acquires: list[HeldAcquire] = field(default_factory=list)
    held_calls: list[HeldCall] = field(default_factory=list)
    self_accesses: list[SelfAccess] = field(default_factory=list)

    def of_kind(self, kind: str) -> Iterator[Effect]:
        for effect in self.effects:
            if effect.kind == kind:
                yield effect


class EffectMap:
    """Per-function direct effects plus call-graph propagation."""

    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self.functions: dict[str, FunctionEffects] = {}
        self._acquire_closures: dict[str, dict[str, tuple[str, ...]]] = {}

    # -- construction ----------------------------------------------------
    @classmethod
    def build(cls, project: Project, graph: CallGraph | None = None) -> "EffectMap":
        if graph is None:
            graph = build_call_graph(project)
        effect_map = cls(project, graph)
        for source in project.files:
            _EffectExtractor(effect_map, source).extract()
        return effect_map

    def effects_of(self, qname: str) -> list[Effect]:
        fx = self.functions.get(qname)
        return [] if fx is None else fx.effects

    # -- propagation -----------------------------------------------------
    def acquires_closure(self, qname: str) -> dict[str, tuple[str, ...]]:
        """Every lock ``qname`` acquires, directly or via resolved
        callees: ``{lock path: shortest witness call chain}``."""
        cached = self._acquire_closures.get(qname)
        if cached is not None:
            return cached
        closure: dict[str, tuple[str, ...]] = {}
        # reachable_from is BFS: insertion order is shortest-first, so
        # keeping the first witness per lock keeps the shortest one.
        for node, witness in self.graph.reachable_from([qname]).items():
            fx = self.functions.get(node)
            if fx is None:
                continue
            for effect in fx.of_kind(EFFECT_ACQUIRES):
                closure.setdefault(effect.what, witness)
        self._acquire_closures[qname] = closure
        return closure

    def blocking_from(
        self, entries: list[str]
    ) -> list[tuple[FunctionEffects, tuple[str, ...], Effect]]:
        """Every ``blocks`` effect reachable from ``entries``, deduped
        by source location keeping the shortest witness chain."""
        found: dict[tuple[str, int, int], tuple[FunctionEffects, tuple[str, ...], Effect]] = {}
        for node, witness in self.graph.reachable_from(entries).items():
            fx = self.functions.get(node)
            if fx is None:
                continue
            for effect in fx.of_kind(EFFECT_BLOCKS):
                key = (fx.source.relpath, effect.line, effect.col)
                known = found.get(key)
                if known is not None and len(known[1]) <= len(witness):
                    continue
                found[key] = (fx, witness, effect)
        return [found[key] for key in sorted(found)]


def effect_map_for(project: Project) -> EffectMap:
    """The project's effect map, built once and cached on the project
    (four rules share it; the analysis is deterministic either way)."""
    cached = getattr(project, "_effect_map", None)
    if isinstance(cached, EffectMap):
        return cached
    effect_map = EffectMap.build(project)
    project._effect_map = effect_map  # type: ignore[attr-defined]
    return effect_map


def module_lock_globals(source: SourceFile) -> set[str]:
    """Module-level names bound to a lock factory call."""
    bindings = module_bindings(source)
    locks: set[str] = set()
    for statement in source.tree.body:
        if not isinstance(statement, ast.Assign):
            continue
        value = statement.value
        if not isinstance(value, ast.Call):
            continue
        target_qname = _resolve_qname(value.func, bindings)
        if target_qname not in LOCK_FACTORIES:
            continue
        for target in statement.targets:
            if isinstance(target, ast.Name):
                locks.add(target.id)
    return locks


def _resolve_qname(func: ast.expr, bindings: dict[str, str]) -> str | None:
    if isinstance(func, ast.Name):
        return bindings.get(func.id, func.id)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        base = bindings.get(func.value.id)
        if base is not None:
            return f"{base}.{func.attr}"
    return None


def _attr_parts(expr: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for anything else."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.insert(0, node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.insert(0, node.id)
        return parts
    return None


def _has_timeout(call: ast.Call) -> bool:
    if call.args:
        return True
    return any(
        kw.arg in ("timeout", "blocking", "block") for kw in call.keywords
    )


@dataclass
class _PendingAllocation:
    """An allocation bound to a local name, classified at scope exit."""

    resource: str
    api: str
    line: int
    col: int
    names: tuple[str, ...]


class _EffectExtractor(ast.NodeVisitor):
    """One file's direct effects, mirroring the call-graph scoping."""

    def __init__(self, effect_map: EffectMap, source: SourceFile) -> None:
        self.effect_map = effect_map
        self.source = source
        self.bindings = module_bindings(source)
        self.module_locks = module_lock_globals(source)
        # Scope entries mirror callgraph._GraphBuilder: (owning function
        # qname, enclosing class qname, local bindings, is-class-body).
        self._scope: list[tuple[str, str | None, dict[str, str], bool]] = []
        self._current: FunctionEffects | None = None
        self._held: list[str] = []
        self._awaited: set[int] = set()
        # What the enclosing statement does with an allocated value:
        # "with" / "escapes" / "stored" / "bare", or bound local names.
        self._disposition: list[tuple[str, tuple[str, ...]]] = [("bare", ())]
        self._pending: list[_PendingAllocation] = []

    def extract(self) -> None:
        qname = f"{self.source.module}.{MODULE_BODY}"
        self._current = self._add_function(qname, None, is_async=False)
        self._scope.append((qname, None, {}, False))
        body_node = self.source.tree
        for statement in body_node.body:
            self.visit(statement)
        self._finish_pending(body_node)
        self._scope.pop()

    # -- bookkeeping -------------------------------------------------------
    def _add_function(
        self, qname: str, class_qname: str | None, is_async: bool
    ) -> FunctionEffects:
        fx = FunctionEffects(
            qname=qname,
            module=self.source.module,
            source=self.source,
            class_qname=class_qname,
            is_async=is_async,
        )
        self.effect_map.functions[qname] = fx
        return fx

    def _note(self, kind: str, what: str, why: str, node: ast.expr) -> None:
        assert self._current is not None
        self._current.effects.append(
            Effect(
                kind=kind, what=what, why=why,
                line=node.lineno, col=node.col_offset,
            )
        )

    def _qualify(self, name: str) -> str:
        owner, _, _, _ = self._scope[-1]
        if owner.endswith("." + MODULE_BODY):
            return f"{self.source.module}.{name}"
        return f"{owner}.{name}"

    # -- scope management (mirrors callgraph._GraphBuilder) ----------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qname = self._qualify(node.name)
        owner, _, locals_, _ = self._scope[-1]
        locals_[node.name] = qname
        self._scope.append((owner, qname, dict(locals_), True))
        for statement in node.body:
            self.visit(statement)
        self._scope.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        owner, class_qname, locals_, in_class_body = self._scope[-1]
        if in_class_body and class_qname is not None:
            qname = f"{class_qname}.{node.name}"
        else:
            qname = self._qualify(node.name)
            locals_[node.name] = qname
        outer_fx = self._current
        outer_held = self._held
        outer_pending = self._pending
        self._current = self._add_function(
            qname, class_qname, isinstance(node, ast.AsyncFunctionDef)
        )
        self._held = []  # a nested def's body runs later, outside the with
        self._pending = []
        self._scope.append((qname, class_qname, dict(locals_), False))
        self._disposition.append(("bare", ()))
        for statement in node.body:
            self.visit(statement)
        self._disposition.pop()
        self._finish_pending(node)
        self._scope.pop()
        self._current = outer_fx
        self._held = outer_held
        self._pending = outer_pending

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- lock paths ---------------------------------------------------------
    def _lock_path(self, expr: ast.expr) -> str | None:
        parts = _attr_parts(expr)
        if parts is None:
            return None
        root = parts[0]
        if root == "self" and len(parts) > 1:
            _, class_qname, _, _ = self._scope[-1]
            if class_qname is not None:
                return f"{class_qname}.{'.'.join(parts[1:])}"
            return None
        if len(parts) == 1:
            # A bare name is only a lock if the module level binds it
            # to a lock factory; locals stay unresolved (no guessing).
            if root in self.module_locks:
                return f"{self.source.module}.{root}"
            return None
        base = self.bindings.get(root)
        if base is not None:
            return f"{base}.{'.'.join(parts[1:])}"
        return None

    def _note_acquire(self, lock: str, node: ast.expr) -> None:
        assert self._current is not None
        self._note(
            EFFECT_ACQUIRES, lock, f"acquires {lock.rsplit('.', 1)[-1]}", node
        )
        for held in self._held:
            if held != lock:
                self._current.held_acquires.append(
                    HeldAcquire(
                        held=held, acquired=lock,
                        line=node.lineno, col=node.col_offset,
                    )
                )

    # -- with blocks ---------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        self._handle_with(node, is_async=False)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._handle_with(node, is_async=True)

    def _handle_with(self, node: ast.With | ast.AsyncWith, is_async: bool) -> None:
        pushed = 0
        for item in node.items:
            ctx = item.context_expr
            lock = None if is_async else self._lock_path(ctx)
            if lock is not None:
                self._note_acquire(lock, ctx)
                self._held.append(lock)
                pushed += 1
            else:
                self._disposition.append(("with", ()))
                self.visit(ctx)
                self._disposition.pop()
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        for statement in node.body:
            self.visit(statement)
        for _ in range(pushed):
            self._held.pop()

    # -- statement shapes feeding allocation disposition ----------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        names = tuple(
            target.id for target in node.targets if isinstance(target, ast.Name)
        )
        if names and len(names) == len(node.targets):
            self._disposition.append(("name", names))
        else:
            # Attribute/subscript/tuple targets: the value is stored
            # somewhere that outlives the statement — owner's problem.
            self._disposition.append(("stored", ()))
        self.visit(node.value)
        self._disposition.pop()
        for target in node.targets:
            self.visit(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            if isinstance(node.target, ast.Name):
                self._disposition.append(("name", (node.target.id,)))
            else:
                self._disposition.append(("stored", ()))
            self.visit(node.value)
            self._disposition.pop()
        self.visit(node.target)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._disposition.append(("escapes", ()))
            self.visit(node.value)
            self._disposition.pop()

    def visit_Expr(self, node: ast.Expr) -> None:
        self._disposition.append(("bare", ()))
        self.visit(node.value)
        self._disposition.pop()

    # -- effects at call sites -------------------------------------------------
    def visit_Await(self, node: ast.Await) -> None:
        if isinstance(node.value, ast.Call):
            self._awaited.add(id(node.value))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in EXECUTOR_BOUNDARIES:
            # The sanctioned async->thread hand-off: neither the call
            # nor the blocking function passed to it is an effect here.
            return
        if id(node) not in self._awaited:
            self._classify_call(node)
        callee = self._resolve(node)
        if callee is not None and self._held:
            assert self._current is not None
            for held in self._held:
                self._current.held_calls.append(
                    HeldCall(
                        held=held, callee=callee,
                        line=node.lineno, col=node.col_offset,
                    )
                )
        # Arguments of any call receive the allocated value: ownership
        # escapes to the callee.
        self.visit(func)
        self._disposition.append(("escapes", ()))
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)
        self._disposition.pop()

    def _resolve(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            _, _, locals_, _ = self._scope[-1]
            if func.id in locals_:
                return locals_[func.id]
            return self.bindings.get(func.id)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id == "self":
                _, class_qname, _, _ = self._scope[-1]
                if class_qname is not None:
                    return f"{class_qname}.{func.attr}"
                return None
            base = self.bindings.get(func.value.id)
            if base is not None:
                return f"{base}.{func.attr}"
        return None

    def _classify_call(self, node: ast.Call) -> None:
        func = node.func
        qname: str | None = None
        if isinstance(func, ast.Name):
            qname = self.bindings.get(func.id, func.id)
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = self.bindings.get(func.value.id)
            if base is not None:
                qname = f"{base}.{func.attr}"
        if qname is not None:
            why = BLOCKING_CALLS.get(qname)
            if why is not None:
                self._note(EFFECT_BLOCKS, qname, why, node)
            resource = ALLOCATING_CALLS.get(qname)
            if resource is not None:
                self._record_allocation(node, qname, resource)
        if isinstance(func, ast.Attribute):
            self._classify_method_call(node, func)

    def _classify_method_call(self, node: ast.Call, func: ast.Attribute) -> None:
        receiver = _attr_parts(func.value)
        if receiver is None:
            return  # constants ("".join), calls, subscripts: no receiver path
        method = func.attr
        described = ".".join(receiver)
        if method == "acquire":
            lock = self._lock_path(func.value)
            if lock is not None:
                self._note_acquire(lock, node)
            if not _has_timeout(node):
                self._note(
                    EFFECT_BLOCKS, f"{described}.acquire",
                    "acquires a lock without a timeout", node,
                )
        elif method == "wait" and not _has_timeout(node):
            self._note(
                EFFECT_BLOCKS, f"{described}.wait",
                "waits on an event/condition without a timeout", node,
            )
        elif method == "join" and not node.args and not node.keywords:
            self._note(
                EFFECT_BLOCKS, f"{described}.join",
                "joins a thread without a timeout", node,
            )
        elif (
            method == "get"
            and not _has_timeout(node)
            and any("queue" in part.lower() for part in receiver)
        ):
            self._note(
                EFFECT_BLOCKS, f"{described}.get",
                "dequeues without a timeout", node,
            )

    # -- allocation lifecycle ---------------------------------------------------
    def _record_allocation(self, node: ast.Call, api: str, resource: str) -> None:
        assert self._current is not None
        self._note(EFFECT_ALLOCATES, resource, f"allocates a {resource}", node)
        shape, names = self._disposition[-1]
        if shape == "with":
            self._add_allocation(node, api, resource, True, "context-managed")
        elif shape == "escapes":
            self._add_allocation(
                node, api, resource, True, "ownership escapes to the caller"
            )
        elif shape == "stored":
            self._add_allocation(
                node, api, resource, True, "stored on an owning object"
            )
        elif shape == "name" and names:
            self._pending.append(
                _PendingAllocation(
                    resource=resource, api=api,
                    line=node.lineno, col=node.col_offset, names=names,
                )
            )
        else:
            self._add_allocation(
                node, api, resource, False,
                "the result is discarded without being released",
            )

    def _add_allocation(
        self, node: ast.Call, api: str, resource: str, managed: bool, how: str
    ) -> None:
        assert self._current is not None
        self._current.allocations.append(
            Allocation(
                resource=resource, api=api,
                line=node.lineno, col=node.col_offset,
                managed=managed, how=how,
            )
        )

    def _finish_pending(self, scope_node: ast.AST) -> None:
        assert self._current is not None
        for pending in self._pending:
            managed, how = _name_disposition(scope_node, pending.names)
            self._current.allocations.append(
                Allocation(
                    resource=pending.resource, api=pending.api,
                    line=pending.line, col=pending.col,
                    managed=managed, how=how,
                )
            )
        self._pending = []

    # -- self attribute accesses ---------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        _, class_qname, _, _ = self._scope[-1]
        if class_qname is not None and isinstance(node.value, ast.Name):
            if node.value.id == "self":
                assert self._current is not None
                self._current.self_accesses.append(
                    SelfAccess(
                        attr=node.attr,
                        line=node.lineno, col=node.col_offset,
                        write=isinstance(node.ctx, (ast.Store, ast.Del)),
                    )
                )
        self.generic_visit(node)


def _is_name_of(expr: ast.expr, names: tuple[str, ...]) -> bool:
    """Whether ``expr`` is one of ``names`` at top level (possibly
    inside a tuple/list literal or a conditional expression)."""
    if isinstance(expr, ast.Name):
        return expr.id in names
    if isinstance(expr, (ast.Tuple, ast.List)):
        return any(_is_name_of(element, names) for element in expr.elts)
    if isinstance(expr, ast.IfExp):
        return _is_name_of(expr.body, names) or _is_name_of(expr.orelse, names)
    return False


def _name_disposition(
    scope_node: ast.AST, names: tuple[str, ...]
) -> tuple[bool, str]:
    """How a locally bound allocation fares over the rest of its scope."""
    in_finally: set[int] = set()
    for candidate in ast.walk(scope_node):
        if isinstance(candidate, ast.Try) and candidate.finalbody:
            for statement in candidate.finalbody:
                for sub in ast.walk(statement):
                    in_finally.add(id(sub))

    released_outside_finally = False
    for candidate in ast.walk(scope_node):
        if isinstance(candidate, ast.Name) and candidate.id in names:
            if id(candidate) in in_finally:
                return True, "released in a finally block"
        if isinstance(candidate, ast.Call):
            for arg in list(candidate.args) + [
                kw.value for kw in candidate.keywords
            ]:
                if isinstance(arg, ast.Name) and arg.id in names:
                    return True, "handed off as a call argument"
            func = candidate.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in names
                and func.attr in _RELEASE_METHODS
            ):
                released_outside_finally = True
        if isinstance(candidate, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = candidate.value
            # The *handle itself* must be what escapes: returning
            # `handle.read()` returns data, not ownership.
            if value is not None and _is_name_of(value, names):
                return True, "returned to the caller"
        if isinstance(candidate, ast.Assign):
            for target in candidate.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)) and (
                    _is_name_of(candidate.value, names)
                ):
                    return True, "stored on an owning object"

    if released_outside_finally:
        return False, (
            "released only on the happy path (no with/try-finally)"
        )
    return False, "never released on any path"


__all__ = [
    "ALLOCATING_CALLS",
    "Allocation",
    "BLOCKING_CALLS",
    "EFFECT_ACQUIRES",
    "EFFECT_ALLOCATES",
    "EFFECT_BLOCKS",
    "EXECUTOR_BOUNDARIES",
    "Effect",
    "EffectMap",
    "FunctionEffects",
    "HeldAcquire",
    "HeldCall",
    "LOCK_FACTORIES",
    "SelfAccess",
    "effect_map_for",
    "module_lock_globals",
]
