"""The lint baseline: pre-existing findings that don't block the gate.

A baseline is a committed JSON file enumerating findings that were
present when a rule was introduced.  The gate then fails only on *new*
findings, so a rule can land before every legacy violation is fixed —
while the baseline shames the debt in version control, entry by entry.

Matching is by ``(rule, path, message)`` — deliberately not by line,
so unrelated edits shifting a file don't un-baseline a finding.  The
file is rendered deterministically (sorted entries, sorted keys, fixed
indentation, trailing newline) so regenerating an unchanged state is
byte-identical — the property the self-lint test pins.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.engine import Finding

BASELINE_VERSION = 1

#: the conventional baseline filename at a project root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class BaselineError(ValueError):
    """The baseline file is unreadable or structurally invalid."""


@dataclass
class Baseline:
    """The committed set of tolerated findings."""

    entries: list[dict] = field(default_factory=list)

    def keys(self) -> set[tuple[str, str, str]]:
        return {
            (entry["rule"], entry["path"], entry["message"])
            for entry in self.entries
        }


def load_baseline(path: Path | str) -> Baseline:
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not JSON: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_VERSION
        or not isinstance(payload.get("findings"), list)
    ):
        raise BaselineError(
            f"baseline {path}: expected "
            f'{{"version": {BASELINE_VERSION}, "findings": [...]}}'
        )
    entries = []
    for entry in payload["findings"]:
        if not isinstance(entry, dict) or not {
            "rule", "path", "message"
        } <= set(entry):
            raise BaselineError(
                f"baseline {path}: malformed entry {entry!r}"
            )
        entries.append(entry)
    return Baseline(entries=entries)


def render_baseline(findings: Iterable[Finding]) -> str:
    """The canonical byte-stable serialization of a finding set."""
    entries = sorted(
        (
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
            }
            for finding in findings
        ),
        key=lambda entry: (
            entry["path"], entry["line"], entry["rule"], entry["message"]
        ),
    )
    payload = {"version": BASELINE_VERSION, "findings": entries}
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_baseline(path: Path | str, findings: Iterable[Finding]) -> None:
    Path(path).write_text(render_baseline(findings), encoding="utf-8")
