"""``repro.lint``: static analysis for this repo's determinism contracts.

The reproduction rests on invariants the test suite can only
spot-check: simulated time must never leak wall-clock into a result
(the paper's delay attribution is computed from trace timestamps, so
one stray ``time.time()`` in a sim path silently corrupts every factor
of the T-DAT breakdown), parallel campaigns must stay byte-identical
to serial runs, and everything crossing the
:class:`~repro.exec.pool.WorkPool` boundary must be picklable.  This
package machine-enforces them: an AST-based visitor engine with a rule
registry, per-rule severities, inline ``# repro: noqa[RULE]``
suppressions (with an unused-suppression check), a machine-readable
baseline so pre-existing findings don't block a gate, and an initial
ruleset encoding the repo's contracts:

* **RL001** — no wall-clock (``time.time``/``time.monotonic``/
  ``datetime.now``) or unseeded ``random`` reachable from the
  deterministic packages (``repro.netsim``, ``repro.tcp``,
  ``repro.bgp``, ``repro.analysis``), call-graph aware;
* **RL002** — no builtin-``set`` ordering-dependent iteration feeding
  output in deterministic paths;
* **RL003** — task functions submitted to a work pool must be
  module-level (picklable) callables, and no classes defined inside
  functions in pool-submitting modules;
* **RL004** — every :class:`~repro.core.health.IngestIssue` kind
  string appears in the central ``ISSUE_KINDS`` registry, and vice
  versa;
* **RL005** — exit codes used in ``repro.tools.tdat_cli`` match its
  ``EXIT_CODE_TABLE``;
* **RL006** — metric and span names recorded via ``repro.obs`` appear
  in the ``docs/observability.md`` catalog;
* **RL007** — chaos injection points (``POINT_*`` constants at the
  seams) match the ``INJECTION_POINTS`` registry in
  ``repro.chaos.plan`` and the ``docs/robustness.md`` catalog;
* **RL008** — no blocking call (sleep, sync I/O, subprocess, un-timed
  wait/join/acquire) reachable from an ``async def`` body in
  ``repro.serve``, with ``run_in_executor``/``to_thread`` boundaries
  allowlisted (effect-inference over the call graph);
* **RL009** — every access to a ``# guarded-by: <lock-attr>``
  annotated attribute comes from a method whose effect set acquires
  that lock;
* **RL010** — allocations in the long-running modules (``repro.serve``,
  ``repro.exec``, ``repro.workloads.checkpoint``) are dominated by
  ``with`` or released in a ``finally`` block;
* **RL011** — the project-wide acquires-while-holding lock graph is
  acyclic (a cycle is a potential deadlock, reported with both
  witness chains).

Run it as ``tdat lint`` or ``python -m repro.lint``; see
``docs/static-analysis.md`` for the rule catalog and how to add a
rule.
"""

from __future__ import annotations

# PEP 562 lazy exports: ``tdat`` imports ``repro.lint.cli`` at startup
# for the subcommand's options, which executes this package __init__ —
# so the engine, the call-graph builder and the rule modules must not
# load until something actually lints.  First attribute access imports
# everything (rule modules included, which registers the ruleset) and
# caches the names in module globals.
_EXPORTS = {
    "Baseline": "repro.lint.baseline",
    "load_baseline": "repro.lint.baseline",
    "render_baseline": "repro.lint.baseline",
    "RULES": "repro.lint.engine",
    "SEVERITY_ERROR": "repro.lint.engine",
    "SEVERITY_WARNING": "repro.lint.engine",
    "Finding": "repro.lint.engine",
    "LintResult": "repro.lint.engine",
    "Rule": "repro.lint.engine",
    "register_rule": "repro.lint.engine",
    "run_lint": "repro.lint.engine",
    "Project": "repro.lint.project",
    "SourceFile": "repro.lint.project",
}


def __getattr__(name: str):
    if name not in _EXPORTS:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    # Importing the rule modules registers the ruleset.
    importlib.import_module("repro.lint.rules_contracts")
    importlib.import_module("repro.lint.rules_determinism")
    importlib.import_module("repro.lint.rules_concurrency")
    for export, module_name in _EXPORTS.items():
        globals()[export] = getattr(
            importlib.import_module(module_name), export
        )
    return globals()[name]


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "Project",
    "RULES",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SourceFile",
    "load_baseline",
    "register_rule",
    "render_baseline",
    "run_lint",
]
