"""SARIF 2.1.0 output for lint findings.

SARIF (Static Analysis Results Interchange Format) is what code
hosts ingest for inline annotations: upload the file from CI and each
finding renders on its line in the diff view.  The document here is
the minimal valid subset — one run, the full rule catalog under
``tool.driver`` (so rule metadata shows in the UI even for rules with
no findings), one ``result`` per finding — and is rendered
deterministically (sorted keys, two-space indent) so byte-identical
findings give byte-identical reports.

Only *new* findings become results: suppressed and baselined findings
are exactly the ones a gate must not re-announce, same as the text
and JSON formats.
"""

from __future__ import annotations

import json

from repro.lint.engine import RULES, Finding, LintResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: lint severities map 1:1 onto SARIF levels.
_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule_id: str) -> dict:
    rule = RULES[rule_id]
    return {
        "id": rule.id,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning")
        },
    }


def _result(finding: Finding) -> dict:
    return {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based; ast's are 0-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def render_sarif(result: LintResult, root: str) -> str:
    """The run as a SARIF 2.1.0 document (deterministic bytes)."""
    rule_ids = sorted(set(RULES) | {f.rule for f in result.findings})
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "rules": [
                            _rule_descriptor(rule_id)
                            if rule_id in RULES
                            else {"id": rule_id}
                            for rule_id in rule_ids
                        ],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": f"file://{root}/"}},
                "results": [_result(f) for f in result.findings],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "render_sarif"]
