"""Downstream applications of the event series (paper section V-D).

The paper argues T-DAT's series make other TCP analyses easier than raw
traces:

* Qian et al. extract *flow clocks* — non-RTT application timers — which
  are concealed by RTT except while the connection is application
  limited: :func:`extract_flow_clock` runs directly on the
  ``SendAppLimited`` series.
* Jaiswal et al. infer the *TCP flavour* by comparing outstanding data
  against a projected congestion window, which is only meaningful while
  the connection is congestion-window bounded: :func:`infer_tcp_flavor`
  reasons over the loss labels and the outstanding step function.

Both run on a :class:`~repro.analysis.series.ConnectionSeries` bundle,
exactly the hand-off the paper proposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.detectors import detect_timer_gaps
from repro.analysis.labeling import LabelingResult
from repro.analysis.profile import Connection
from repro.analysis.series import ConnectionSeries

FLAVOR_TAHOE = "tahoe"
FLAVOR_RENO = "reno"
FLAVOR_NEWRENO = "newreno"
FLAVOR_UNKNOWN = "unknown"


@dataclass
class FlowClockReport:
    """An inferred application timer driving the flow."""

    detected: bool
    period_us: int | None = None
    strength: float = 0.0  # fraction of gaps on the clock
    samples: int = 0


def extract_flow_clock(series: ConnectionSeries) -> FlowClockReport:
    """Recover a non-RTT application clock from sender-idle gaps.

    The clock only shows while the connection is application limited —
    which is exactly what the ``SendAppLimited`` series isolates, so no
    RTT filtering is needed (the paper's point about Qian et al.).
    """
    report = detect_timer_gaps(series)
    if not report.detected:
        return FlowClockReport(detected=False, samples=report.gap_count)
    return FlowClockReport(
        detected=True,
        period_us=report.timer_us,
        strength=report.plateau_count / max(report.gap_count, 1),
        samples=report.gap_count,
    )


@dataclass
class FlavorReport:
    """An inferred TCP congestion-control flavour."""

    flavor: str
    confidence: float = 0.0
    fast_recovery_events: int = 0
    collapse_events: int = 0
    evidence: list[str] = field(default_factory=list)


def infer_tcp_flavor(
    connection: Connection,
    series: ConnectionSeries,
) -> FlavorReport:
    """Guess Tahoe / Reno / NewReno from post-loss window behaviour.

    * After a dupack-triggered retransmission, Tahoe collapses its
      window to one segment (the next flight is tiny); Reno and NewReno
      halve it (the next flight is roughly half the pre-loss flight).
    * Within a multi-hole recovery, NewReno retransmits the next hole
      on each partial ACK (spacing ~ RTT); Reno needs a fresh dupack
      burst or a timeout per hole (spacing >> RTT).

    Returns :data:`FLAVOR_UNKNOWN` when no loss episode gives evidence —
    flavour is only observable under congestion, as Jaiswal et al. note.
    """
    labeling = series.labeling
    rtt = max(series.rtt_us, 1_000)
    retx = [
        l for l in labeling.retransmissions() if l.trigger_time_us is not None
    ]
    if not retx:
        return FlavorReport(flavor=FLAVOR_UNKNOWN, evidence=["no losses"])

    fast_events = 0
    collapse_events = 0
    halved_events = 0
    evidence: list[str] = []
    outstanding = series.outstanding

    clusters = _cluster_retransmissions(retx, gap_us=8 * rtt)
    newreno_votes = 0
    reno_votes = 0
    for cluster in clusters:
        first = cluster[0]
        packet = first.packet
        silence = packet.timestamp_us - first.trigger_time_us
        is_timeout = silence > 3 * rtt + 200_000
        if is_timeout:
            continue  # RTO recovery says nothing about fast-recovery flavour
        fast_events += 1
        before = outstanding.value_at(packet.timestamp_us - 1)
        recovery_end = max(
            (l.recovery_time_us or packet.timestamp_us) for l in cluster
        )
        # Only the FIRST flight after recovery reflects the collapsed /
        # halved window; any longer horizon sees slow-start regrowth.
        after = _post_recovery_peak(
            outstanding, recovery_end, int(1.5 * rtt), before, series.mss
        )
        if before > 0 and after is not None:
            ratio = after / before
            # A collapse is a ratio far below one half — or an
            # absolutely tiny restart window when the pre-loss window
            # was big enough for the distinction to be meaningful.
            tiny_restart = (
                after <= 2.5 * series.mss and before >= 5 * series.mss
            )
            if ratio < 0.25 or tiny_restart:
                collapse_events += 1
                evidence.append(f"post-loss window ratio {ratio:.2f} (collapse)")
            elif ratio < 0.8:
                halved_events += 1
                evidence.append(f"post-loss window ratio {ratio:.2f} (halved)")
        # Multi-hole recovery spacing.
        distinct = _distinct_seq_retx_times(cluster, connection)
        if len(distinct) >= 2:
            spacings = [b - a for a, b in zip(distinct, distinct[1:])]
            median = sorted(spacings)[len(spacings) // 2]
            if median <= 3 * rtt:
                newreno_votes += 1
                evidence.append(f"hole spacing {median / 1000:.1f}ms (~RTT)")
            else:
                reno_votes += 1
                evidence.append(f"hole spacing {median / 1000:.1f}ms (>>RTT)")

    if fast_events == 0:
        return FlavorReport(
            flavor=FLAVOR_UNKNOWN,
            evidence=evidence + ["only timeout recoveries observed"],
        )
    if collapse_events > halved_events:
        flavor = FLAVOR_TAHOE
        confidence = collapse_events / fast_events
    elif newreno_votes >= reno_votes and newreno_votes > 0:
        flavor = FLAVOR_NEWRENO
        confidence = newreno_votes / max(newreno_votes + reno_votes, 1)
    elif reno_votes > 0:
        flavor = FLAVOR_RENO
        confidence = reno_votes / max(newreno_votes + reno_votes, 1)
    else:
        # Halving observed but no multi-hole evidence: Reno-family.
        flavor = FLAVOR_NEWRENO if halved_events else FLAVOR_UNKNOWN
        confidence = 0.5 if halved_events else 0.0
    return FlavorReport(
        flavor=flavor,
        confidence=confidence,
        fast_recovery_events=fast_events,
        collapse_events=collapse_events,
        evidence=evidence,
    )


def _cluster_retransmissions(retx, gap_us: int):
    """Group retransmissions separated by less than ``gap_us``."""
    clusters = []
    current = [retx[0]]
    for label in retx[1:]:
        if (
            label.packet.timestamp_us - current[-1].packet.timestamp_us
            <= gap_us
        ):
            current.append(label)
        else:
            clusters.append(current)
            current = [label]
    clusters.append(current)
    return clusters


def _post_recovery_peak(
    outstanding, recovery_us: int, horizon_us: int, before: int, mss: int
) -> int | None:
    """Peak of the first flight *after* the recovery ACK took effect.

    Samples are skipped until the outstanding level drops near zero —
    partial-ACK plateaus of the *old* flight must not count — then the
    peak of what follows is the sender's fresh window: collapsed for
    Tahoe, roughly halved for the Reno family.
    """
    drop_level = max(2 * mss, round(before * 0.15))
    seen_drop = False
    peak: int | None = None
    for t, v in outstanding.samples():
        if t <= recovery_us:
            continue
        if t > recovery_us + horizon_us:
            break
        if not seen_drop:
            if v <= drop_level:
                seen_drop = True
            continue
        peak = v if peak is None else max(peak, v)
    return peak


def _distinct_seq_retx_times(cluster, connection: Connection) -> list[int]:
    """First retransmission time of each distinct segment in a cluster."""
    seen: dict[int, int] = {}
    for label in cluster:
        seq = connection.relative_seq(label.packet)
        seen.setdefault(seq, label.packet.timestamp_us)
    return sorted(seen.values())
