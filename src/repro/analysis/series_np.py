"""numpy-vectorized series kernels (optional fast backend).

The reference implementations in :mod:`repro.analysis.series` are the
contract; this module re-derives the hottest kernel — the Outstanding
accumulation, an event walk over every data packet and ACK of a
connection — with vectorized integer array operations.  The results
are **byte-identical** to the reference walk (integer microseconds and
byte counts throughout, no float arithmetic), which the differential
suite in ``tests/analysis/test_fastpath_differential.py`` enforces.

numpy is optional: :data:`AVAILABLE` gates every entry point, and
``SeriesConfig(series_backend="auto")`` only routes here for
connections with at least :data:`AUTO_MIN_EVENTS` events, below which
the list<->array round-trip costs more than the loop it replaces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

try:  # pragma: no cover - exercised via both branches in CI images
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

AVAILABLE = _np is not None

#: below this many events per connection the pure-python walk wins.
AUTO_MIN_EVENTS = 4096

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.profile import Connection, TracePacket


def outstanding(
    connection: "Connection",
    data: "list[TracePacket]",
    acks: "list[TracePacket]",
):
    """Vectorized equivalent of ``series._outstanding``.

    Returns the same ``(StepFunction, TimeRangeSet)`` pair: the
    outstanding-bytes step function sampled at every event instant
    (last event of an instant wins, as the reference's same-time
    overwrite rule dictates) and the coalesced set of periods with
    unacknowledged data in flight.
    """
    from repro.analysis.series import StepFunction
    from repro.core.timeranges import TimeRangeSet

    if _np is None:  # pragma: no cover - guarded by AVAILABLE
        raise RuntimeError("numpy backend requested but numpy is unavailable")

    fn = StepFunction()
    ranges = TimeRangeSet()
    n_data = len(data)
    n_acks = len(acks)
    if n_data + n_acks == 0:
        return fn, ranges

    relative_seq = connection.relative_seq
    relative_ack = connection.relative_ack
    times = _np.empty(n_data + n_acks, dtype=_np.int64)
    values = _np.empty(n_data + n_acks, dtype=_np.int64)
    prio = _np.empty(n_data + n_acks, dtype=_np.int64)
    for k, packet in enumerate(data):
        times[k] = packet.timestamp_us
        values[k] = relative_seq(packet) + packet.payload_len
        prio[k] = 0
    for k, ack in enumerate(acks, start=n_data):
        times[k] = ack.effective_time_us
        values[k] = relative_ack(ack)
        prio[k] = 1

    # The reference sorts events by (time, kind) with data before ACKs
    # at equal instants; lexsort's last key is primary.
    order = _np.lexsort((prio, times))
    times = times[order]
    values = values[order]
    is_ack = prio[order] == 1

    snd_max = _np.maximum.accumulate(_np.where(is_ack, 0, values))
    acked = _np.maximum.accumulate(_np.where(is_ack, values, 0))
    out = _np.maximum(snd_max - acked, 0)

    # Same-instant events collapse to the instant's final value — the
    # transient values can only open-and-close zero-length spans, which
    # the reference's TimeRangeSet.add drops anyway.
    last_of_instant = _np.empty(len(times), dtype=bool)
    last_of_instant[:-1] = times[:-1] != times[1:]
    last_of_instant[-1] = True
    step_times = times[last_of_instant]
    step_values = out[last_of_instant]

    fn._times = step_times.tolist()
    fn._values = step_values.tolist()

    positive = step_values > 0
    previous = _np.empty(len(positive), dtype=bool)
    previous[0] = False
    previous[1:] = positive[:-1]
    opens = step_times[positive & ~previous]
    closes = step_times[~positive & previous]
    open_list = opens.tolist()
    close_list = closes.tolist()
    for start, end in zip(open_list, close_list):
        ranges.add_span(start, end)
    if len(open_list) > len(close_list):
        # Still in flight at the final event, as in the reference.
        ranges.add_span(open_list[-1], int(times[-1]) + 1)
    return fn, ranges
