"""Detectors for the specific transport problems of paper section IV-B.

Each detector consumes the generated event series (not the raw trace),
demonstrating the paper's point that the unified time-range
representation makes targeted problem checks short and composable:

* **BGP timer gaps** — a knee in the sender-idle gap-length
  distribution reveals a timer-driven implementation and its period;
* **Consecutive losses** — coalesced loss-recovery ranges covering
  at least 8 retransmissions (enough to collapse cwnd and ssthresh to
  their minima);
* **Peer-group blocking** — one session's sender idleness coinciding
  with a sibling session's loss recovery, with only keepalives flowing;
* **ZeroAckBug** — simultaneous zero-window-bounded and upstream-loss
  periods (``ZeroAdvBndOut ∩ UpstreamLoss``), the implementation bug
  the paper discovered via conflicting series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.knee import l_method_knee, plateau_value
from repro.analysis.profile import Connection
from repro.analysis.series import ConnectionSeries
from repro.core.events import SeriesEventData
from repro.core.timeranges import TimeRange, TimeRangeSet
from repro.core.units import seconds

# Gaps outside this band are not implementation timers.
TIMER_GAP_MIN_US = 20_000
TIMER_GAP_MAX_US = seconds(5)
TIMER_MIN_GAPS = 8
TIMER_PLATEAU_FRACTION = 0.5

CONSECUTIVE_LOSS_THRESHOLD = 8

PEER_GROUP_MIN_BLOCK_US = seconds(10)


@dataclass
class TimerGapReport:
    """Outcome of the timer-gap detector for one connection."""

    detected: bool
    timer_us: int | None = None
    gap_count: int = 0
    plateau_count: int = 0
    induced_delay_us: int = 0
    gap_durations_us: list[int] = field(default_factory=list)


def detect_timer_gaps(series: ConnectionSeries) -> TimerGapReport:
    """Infer a BGP implementation timer from sender-idle gap lengths.

    The idle gap a timer leaves on the wire is roughly (timer − RTT),
    because the idle period is measured from ACK arrival at the sender
    to its next transmission; the reported timer adds the RTT back.
    """
    idle = series.catalog.get_or_empty("SendAppLimited")
    gaps = sorted(
        d for d in idle.ranges.durations()
        if TIMER_GAP_MIN_US <= d <= TIMER_GAP_MAX_US
    )
    if len(gaps) < TIMER_MIN_GAPS:
        return TimerGapReport(detected=False, gap_count=len(gaps),
                              gap_durations_us=gaps)
    median = gaps[len(gaps) // 2]
    if gaps[-1] - gaps[0] <= max(0.2 * median, 20_000):
        # The whole distribution is one flat plateau: a pure timer.
        return TimerGapReport(
            detected=True,
            timer_us=int(median) + series.rtt_us,
            gap_count=len(gaps),
            plateau_count=len(gaps),
            induced_delay_us=sum(gaps),
            gap_durations_us=gaps,
        )
    knee = l_method_knee([float(g) for g in gaps])
    plateau = plateau_value([float(g) for g in gaps], knee)
    if plateau is None:
        return TimerGapReport(detected=False, gap_count=len(gaps),
                              gap_durations_us=gaps)
    plateau_count = knee + 1 if knee is not None else 0
    # The plateau must be flat (a repeating timer, not a smooth spread)
    # and cover a meaningful share of the gaps.
    plateau_gaps = gaps[:plateau_count]
    flat = (
        plateau_gaps[-1] - plateau_gaps[0] <= max(plateau * 0.5, 20_000)
        if plateau_gaps
        else False
    )
    pronounced = plateau_count / len(gaps) >= TIMER_PLATEAU_FRACTION
    if not (flat and pronounced):
        return TimerGapReport(detected=False, gap_count=len(gaps),
                              gap_durations_us=gaps)
    return TimerGapReport(
        detected=True,
        timer_us=int(plateau) + series.rtt_us,
        gap_count=len(gaps),
        plateau_count=plateau_count,
        induced_delay_us=sum(plateau_gaps),
        gap_durations_us=gaps,
    )


@dataclass
class ConsecutiveLossReport:
    """Outcome of the consecutive-loss detector."""

    detected: bool
    episodes: int = 0
    worst_run: int = 0
    induced_delay_us: int = 0
    episode_ranges: list[TimeRange] = field(default_factory=list)


def detect_consecutive_losses(
    series: ConnectionSeries,
    threshold: int = CONSECUTIVE_LOSS_THRESHOLD,
    cluster_gap_us: int = 500_000,
) -> ConsecutiveLossReport:
    """Find recovery episodes covering >= ``threshold`` retransmissions.

    Individual loss-recovery ranges closer than ``cluster_gap_us`` are
    one episode: a burst of drops recovers through several RTO rounds
    whose ranges fragment, but operationally it is a single event whose
    cost is the whole recovery period (paper section IV-B).
    """
    send_local = series.catalog.get_or_empty("SendLocalLoss")
    recv_local = series.catalog.get_or_empty("RecvLocalLoss")
    network = series.catalog.get_or_empty("NetworkLoss")
    all_loss = send_local.union(recv_local, network, name="loss-union")
    clusters = all_loss.ranges.dilate(cluster_gap_us // 2)
    episodes = []
    worst = 0
    delay = 0
    for cluster in clusters:
        members = all_loss.ranges.overlapping(cluster.start, cluster.end)
        packets = sum(_range_packets(m) for m in members)
        worst = max(worst, packets)
        if packets >= threshold and members:
            span = TimeRange(
                min(m.start for m in members), max(m.end for m in members)
            )
            episodes.append(span)
            delay += span.duration
    return ConsecutiveLossReport(
        detected=bool(episodes),
        episodes=len(episodes),
        worst_run=worst,
        induced_delay_us=delay,
        episode_ranges=episodes,
    )


def _range_packets(rng: TimeRange) -> int:
    data = rng.data
    if isinstance(data, SeriesEventData):
        return data.packets
    if isinstance(data, list):
        return sum(
            item.packets for item in data if isinstance(item, SeriesEventData)
        )
    return 1 if data is None else 1


@dataclass
class PeerGroupBlockingReport:
    """Outcome of the cross-connection peer-group detector."""

    detected: bool
    blocked_ranges: list[TimeRange] = field(default_factory=list)
    induced_delay_us: int = 0


def detect_peer_group_blocking(
    idle_series: ConnectionSeries,
    idle_connection: Connection,
    failed_series: ConnectionSeries,
    min_block_us: int = PEER_GROUP_MIN_BLOCK_US,
) -> PeerGroupBlockingReport:
    """Did ``failed`` drag down ``idle`` through peer-group replication?

    Implements the paper's rule
    ``A.SendAppLimited ∩ B.Loss`` (section IV-B), confirmed by checking
    that only keepalives left A during the overlap.
    """
    # Candidate pauses on the idle session: whole periods between
    # non-keepalive data with keepalives flowing inside (keepalives
    # would otherwise chop SendAppLimited into sub-threshold pieces).
    pauses = detect_long_keepalive_pauses(
        idle_series, idle_connection, min_block_us
    ).blocked_ranges
    failed_loss = failed_series.catalog.get_or_empty("AllLoss").ranges
    blocked = []
    for pause in pauses:
        overlap = TimeRangeSet([pause]).intersection(failed_loss)
        if overlap.size() >= min(min_block_us, pause.duration // 2):
            blocked.append(pause)
    return PeerGroupBlockingReport(
        detected=bool(blocked),
        blocked_ranges=blocked,
        induced_delay_us=sum(r.duration for r in blocked),
    )


def detect_long_keepalive_pauses(
    series: ConnectionSeries,
    connection: Connection,
    min_block_us: int = PEER_GROUP_MIN_BLOCK_US,
) -> PeerGroupBlockingReport:
    """Single-trace variant: long sender pauses with only keepalives.

    A candidate pause is the whole period between two non-keepalive
    data packets; it qualifies when it is long and at least one BGP
    keepalive crossed the wire inside it (the session was alive but the
    application sent nothing) — the paper's "only keep-alive messages
    are seen within the whole idle period" confirmation.  Without the
    sibling connection's trace the cause cannot be pinned to peer-group
    replication, but the signature is the same.
    """
    real_data = []
    keepalive_times = []
    for packet in connection.data_packets():
        if packet.is_bgp_keepalive():
            keepalive_times.append(packet.timestamp_us)
        else:
            real_data.append(packet.timestamp_us)
    blocked = []
    for left, right in zip(real_data, real_data[1:]):
        if right - left < min_block_us:
            continue
        inside = [t for t in keepalive_times if left < t < right]
        if inside:
            blocked.append(TimeRange(left, right))
    return PeerGroupBlockingReport(
        detected=bool(blocked),
        blocked_ranges=blocked,
        induced_delay_us=sum(r.duration for r in blocked),
    )


def _only_keepalives(connection: Connection, rng: TimeRange) -> bool:
    """No non-keepalive data left the sender inside ``rng``."""
    for packet in connection.data_packets():
        if rng.start <= packet.timestamp_us < rng.end:
            if not packet.is_bgp_keepalive():
                return False
    return True


@dataclass
class ZeroAckBugReport:
    """Outcome of the zero-window probe-bug detector."""

    detected: bool
    occurrences: int = 0
    induced_delay_us: int = 0


def detect_zero_ack_bug(
    series: ConnectionSeries, min_delay_us: int = 10_000
) -> ZeroAckBugReport:
    """Conflicting series: zero-window-bounded while recovering losses."""
    bug = series.catalog.get_or_empty("ZeroAckBug")
    size = bug.size()
    return ZeroAckBugReport(
        detected=size >= min_delay_us and len(bug) > 0,
        occurrences=len(bug),
        induced_delay_us=size,
    )
