"""Trace front end: pcap -> TCP connections with profiles.

This is the repo's ``tcptrace``-equivalent (paper section III-B): it
extracts individual TCP connections from a bidirectional capture and
derives the connection-level parameters the analyzer needs — MSS, an
RTT estimate, the maximum advertised window, start/end times — plus the
per-direction packet timelines that the series generators consume.

The d1/d2 decomposition (paper Figure 12) is computed here too:
``d1`` is the tap→receiver→tap half of the RTT (data seen → matching
ACK seen) and ``d2`` the tap→sender→tap half (ACK seen → released data
seen), following Jaiswal et al.
"""

from __future__ import annotations

import statistics
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO

from repro.analysis.budget import POLICY_FINALIZE_IDLE, StateLedger
from repro.bgp.messages import HEADER_LEN as BGP_HEADER_LEN
from repro.bgp.messages import MARKER as BGP_MARKER
from repro.core.health import STAGE_FRAME, TraceHealth
from repro.wire import frames
from repro.wire.pcap import PcapReader, PcapRecord, read_pcap
from repro.wire.tcpw import ACK, FIN, RST, SYN

FlowKey = tuple[str, int, str, int]


@dataclass
class TracePacket:
    """One captured TCP segment, flattened for analysis."""

    index: int
    timestamp_us: int
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int
    payload_len: int
    wire_len: int
    ip_id: int
    payload: bytes = b""
    mss_option: int | None = None
    wscale_option: int | None = None
    # Filled by the ACK-shift step; series generation reads this field.
    shifted_timestamp_us: int | None = None

    @property
    def effective_time_us(self) -> int:
        """Shifted timestamp when present, raw otherwise."""
        if self.shifted_timestamp_us is not None:
            return self.shifted_timestamp_us
        return self.timestamp_us

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & SYN)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & RST)

    @property
    def is_pure_ack(self) -> bool:
        """ACK-only segment carrying no data and no SYN/FIN/RST."""
        return (
            bool(self.flags & ACK)
            and self.payload_len == 0
            and not self.flags & (SYN | FIN | RST)
        )

    @property
    def seq_end(self) -> int:
        """Sequence number just past this segment's payload."""
        return self.seq + self.payload_len

    def is_bgp_keepalive(self) -> bool:
        """True when the payload is exactly one BGP KEEPALIVE."""
        return (
            self.payload_len == BGP_HEADER_LEN
            and self.payload[:16] == BGP_MARKER
            and self.payload[18:19] == b"\x04"
        )


@dataclass
class ConnectionProfile:
    """Connection-level parameters (the tcptrace output the paper uses)."""

    mss: int
    rtt_us: int
    d1_us: int
    d2_us: int
    max_advertised_window: int
    start_time_us: int
    end_time_us: int
    total_data_bytes: int
    total_data_packets: int
    total_ack_packets: int
    saw_syn: bool
    saw_fin: bool
    saw_rst: bool

    @property
    def duration_us(self) -> int:
        """Wall-clock span of the captured connection."""
        return self.end_time_us - self.start_time_us


class Connection:
    """One TCP connection: both directions plus derived profile.

    ``sender`` / ``receiver`` follow the paper's terminology: the
    sender is the endpoint contributing the bulk of the data bytes (the
    operational router in a monitoring deployment).
    """

    def __init__(self, key: FlowKey) -> None:
        self.key = key
        self.packets: list[TracePacket] = []
        self.sender_ip: str | None = None
        self._isn: dict[str, int] = {}
        self.profile: ConnectionProfile | None = None
        # False when a resource budget truncated this connection's
        # packet record (shed data or early finalization before close):
        # the derived profile and analysis rest on partial state.
        self.complete = True

    def add(self, packet: TracePacket) -> None:
        """Append a packet (records must arrive in timestamp order)."""
        self.packets.append(packet)
        if packet.is_syn:
            self._isn[packet.src_ip] = packet.seq

    # ------------------------------------------------------------------
    # Direction handling
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Determine the data direction and compute the profile."""
        bytes_by_src: dict[str, int] = {}
        for packet in self.packets:
            bytes_by_src[packet.src_ip] = (
                bytes_by_src.get(packet.src_ip, 0) + packet.payload_len
            )
        if not bytes_by_src:
            return
        self.sender_ip = max(bytes_by_src, key=lambda ip: bytes_by_src[ip])
        self._apply_window_scaling()
        self.profile = self._build_profile()

    def _apply_window_scaling(self) -> None:
        """Rewrite window fields per RFC 7323 if both SYNs offered it.

        tcptrace does the same: the scale seen on each side's SYN
        applies to every later window that side advertises.
        """
        scales: dict[str, int] = {}
        for packet in self.packets:
            if packet.is_syn and packet.wscale_option is not None:
                scales[packet.src_ip] = min(packet.wscale_option, 14)
        if len(scales) < 2:
            return  # both ends must offer the option
        for packet in self.packets:
            if not packet.is_syn:
                packet.window <<= scales[packet.src_ip]

    @property
    def receiver_ip(self) -> str | None:
        if self.sender_ip is None:
            return None
        src, _, dst, _ = self.key
        return dst if self.sender_ip == src else src

    def data_packets(self) -> list[TracePacket]:
        """Sender-to-receiver segments that carry payload."""
        return [
            p
            for p in self.packets
            if p.src_ip == self.sender_ip and p.payload_len > 0
        ]

    def ack_packets(self) -> list[TracePacket]:
        """Receiver-to-sender segments bearing the ACK flag."""
        return [
            p
            for p in self.packets
            if p.src_ip != self.sender_ip and p.flags & ACK and not p.is_syn
        ]

    def relative_seq(self, packet: TracePacket) -> int:
        """Sequence relative to the data stream (0 == first data byte)."""
        isn = self._isn.get(packet.src_ip)
        if isn is None:
            first = next(
                (p for p in self.packets if p.src_ip == packet.src_ip), None
            )
            isn = first.seq - 1 if first is not None else packet.seq - 1
            self._isn[packet.src_ip] = isn
        return (packet.seq - isn - 1) & 0xFFFFFFFF

    def relative_ack(self, packet: TracePacket) -> int:
        """ACK number relative to the opposite direction's stream."""
        src, _, dst, _ = self.key
        other = dst if packet.src_ip == src else src
        isn = self._isn.get(other)
        if isn is None:
            first = next(
                (p for p in self.packets if p.src_ip == other), None
            )
            isn = first.seq - 1 if first is not None else packet.ack - 1
            self._isn[other] = isn
        return (packet.ack - isn - 1) & 0xFFFFFFFF

    # ------------------------------------------------------------------
    # Profile derivation
    # ------------------------------------------------------------------
    def _build_profile(self) -> ConnectionProfile:
        data = self.data_packets()
        acks = self.ack_packets()
        mss = self._estimate_mss(data)
        d1 = self._estimate_d1(data, acks)
        d2 = self._estimate_d2_handshake()
        if d2 is None:
            d2 = self._estimate_d2(data, acks)
        max_window = max((p.window for p in acks), default=0)
        return ConnectionProfile(
            mss=mss,
            rtt_us=d1 + d2,
            d1_us=d1,
            d2_us=d2,
            max_advertised_window=max_window,
            start_time_us=self.packets[0].timestamp_us,
            end_time_us=self.packets[-1].timestamp_us,
            total_data_bytes=sum(p.payload_len for p in data),
            total_data_packets=len(data),
            total_ack_packets=len(acks),
            saw_syn=any(p.is_syn for p in self.packets),
            saw_fin=any(p.is_fin for p in self.packets),
            saw_rst=any(p.is_rst for p in self.packets),
        )

    def _estimate_mss(self, data: list[TracePacket]) -> int:
        for packet in self.packets:
            if packet.is_syn:
                parsed_mss = getattr(packet, "mss_option", None)
                if parsed_mss:
                    return parsed_mss
        return max((p.payload_len for p in data), default=536)

    def _estimate_d1(
        self, data: list[TracePacket], acks: list[TracePacket]
    ) -> int:
        """Tap -> receiver -> tap delay: data seen to its exact ACK seen."""
        samples = []
        ack_iter = iter(acks)
        current_ack = next(ack_iter, None)
        for packet in data:
            target = self.relative_seq(packet) + packet.payload_len
            while current_ack is not None and (
                current_ack.timestamp_us < packet.timestamp_us
                or self.relative_ack(current_ack) < target
            ):
                current_ack = next(ack_iter, None)
            if current_ack is None:
                break
            if self.relative_ack(current_ack) == target:
                samples.append(current_ack.timestamp_us - packet.timestamp_us)
            if len(samples) >= 200:
                break
        if not samples:
            return 0
        return int(statistics.median(samples))

    def _estimate_d2_handshake(self) -> int | None:
        """Sender-side roundtrip from the three-way handshake at the tap.

        When the data sender initiated the connection, the gap between
        the SYN/ACK and the handshake-completing ACK is one tap → sender
        → tap roundtrip; when the sender was passive, the SYN → SYN/ACK
        gap is.  This survives pipelined data flows where per-ACK d2
        estimates collapse.
        """
        syn = synack = handshake_ack = None
        for packet in self.packets:
            if packet.is_syn and not packet.flags & ACK and syn is None:
                syn = packet
            elif packet.is_syn and packet.flags & ACK and synack is None:
                synack = packet
            elif (
                synack is not None
                and handshake_ack is None
                and packet.is_pure_ack
                and packet.src_ip == (syn.src_ip if syn else None)
            ):
                handshake_ack = packet
                break
        if syn is None or synack is None:
            return None
        if self.sender_ip == syn.src_ip:
            if handshake_ack is None:
                return None
            return handshake_ack.timestamp_us - synack.timestamp_us
        return synack.timestamp_us - syn.timestamp_us

    def _estimate_d2(
        self, data: list[TracePacket], acks: list[TracePacket]
    ) -> int:
        """Tap -> sender -> tap delay: ACK seen to released data seen.

        The minimum positive gap is used: larger gaps include sender
        application think-time, which is exactly what the analyzer must
        *not* bake into its RTT estimate.
        """
        samples = []
        data_iter = iter(data)
        current_data = next(data_iter, None)
        for ack in acks:
            while current_data is not None and (
                current_data.timestamp_us <= ack.timestamp_us
            ):
                current_data = next(data_iter, None)
            if current_data is None:
                break
            samples.append(current_data.timestamp_us - ack.timestamp_us)
            if len(samples) >= 500:
                break
        positive = [s for s in samples if s > 0]
        if not positive:
            return 0
        return min(positive)


def infer_sniffer_location(
    connection: Connection, dominance: float = 4.0
) -> str:
    """Guess where the tap sat from the d1/d2 split of the RTT.

    The paper leaves the sniffer location as user configuration but
    notes it can be inferred from packet/ACK inter-arrivals [28]: a
    receiver-side tap sees ACKs almost immediately after data
    (d1 << d2), a sender-side tap the reverse.  Returns ``"receiver"``,
    ``"sender"`` or ``"middle"``; ``dominance`` is the ratio one side
    must exceed the other by.
    """
    profile = connection.profile
    if profile is None:
        raise ValueError("connection has no profile; call finalize() first")
    d1 = max(profile.d1_us, 1)
    d2 = max(profile.d2_us, 1)
    if d2 >= d1 * dominance:
        return "receiver"
    if d1 >= d2 * dominance:
        return "sender"
    return "middle"


class Trace:
    """A parsed capture: connections keyed by canonical 4-tuple."""

    def __init__(self, health: TraceHealth | None = None) -> None:
        self.connections: dict[FlowKey, Connection] = {}
        self.skipped_frames = 0
        self.total_records = 0
        self.health = health if health is not None else TraceHealth()

    @classmethod
    def from_pcap(
        cls,
        source: BinaryIO | str | Path | list[PcapRecord],
        health: TraceHealth | None = None,
        tolerant: bool = False,
        *,
        mmap: bool | None = None,
        decode_batch: int | None = None,
    ) -> "Trace":
        """Parse a pcap file (or pre-read records) into connections.

        With ``tolerant=True`` the pcap layer survives structural
        damage (see :class:`~repro.wire.pcap.PcapReader`); either way,
        undecodable frames are skipped and accounted in ``health``.
        ``mmap`` and ``decode_batch`` tune the reader's zero-copy fast
        path (result-identical; see :class:`~repro.wire.pcap.PcapReader`).
        """
        trace = cls(health=health)
        if isinstance(source, list):
            records = source
            trace.health.records_read += len(records)
        else:
            records = read_pcap(
                source, tolerant=tolerant, health=trace.health,
                mmap=mmap, decode_batch=decode_batch,
            )
        for index, record in enumerate(records):
            trace.total_records += 1
            try:
                fields = frames.parse_packet(record.data)
            except (frames.FrameError, ValueError) as exc:
                trace.skipped_frames += 1
                trace.health.record(
                    STAGE_FRAME, "undecodable-frame",
                    timestamp_us=record.timestamp_us,
                    bytes_lost=record.captured_length,
                    detail=str(exc),
                    benign=True,
                )
                continue
            trace.health.frames_decoded += 1
            packet = _packet_from_fields(index, record, fields)
            key = canonical_key(
                fields.src_ip,
                fields.src_port,
                fields.dst_ip,
                fields.dst_port,
            )
            connection = trace.connections.get(key)
            if connection is None:
                connection = Connection(key)
                trace.connections[key] = connection
            connection.add(packet)
        for connection in trace.connections.values():
            connection.finalize()
        return trace

    def __len__(self) -> int:
        return len(self.connections)

    def __iter__(self):
        return iter(self.connections.values())


def _packet_from_record(
    index: int, record: PcapRecord, parsed
) -> TracePacket:
    """Flatten one decoded frame into the analyzer's packet form."""
    return TracePacket(
        index=index,
        timestamp_us=record.timestamp_us,
        src_ip=parsed.ipv4.src,
        src_port=parsed.tcp.src_port,
        dst_ip=parsed.ipv4.dst,
        dst_port=parsed.tcp.dst_port,
        seq=parsed.tcp.seq,
        ack=parsed.tcp.ack,
        flags=parsed.tcp.flags,
        window=parsed.tcp.window,
        payload_len=len(parsed.tcp.payload),
        wire_len=record.wire_length,
        ip_id=parsed.ipv4.identification,
        payload=parsed.tcp.payload,
        mss_option=parsed.tcp.mss_option,
        wscale_option=parsed.tcp.wscale_option,
    )


def _packet_from_fields(
    index: int, record: PcapRecord, fields: frames.PacketFields
) -> TracePacket:
    """Flatten one fused-decoded frame into the analyzer's packet form."""
    payload = fields.payload
    return TracePacket(
        index=index,
        timestamp_us=record.timestamp_us,
        src_ip=fields.src_ip,
        src_port=fields.src_port,
        dst_ip=fields.dst_ip,
        dst_port=fields.dst_port,
        seq=fields.seq,
        ack=fields.ack,
        flags=fields.flags,
        window=fields.window,
        payload_len=len(payload),
        wire_len=record.wire_length,
        ip_id=fields.ip_id,
        payload=payload,
        mss_option=fields.mss_option,
        wscale_option=fields.wscale_option,
    )


@dataclass
class _OpenFlow:
    """Streaming-ingest state of one not-yet-finalized connection."""

    connection: Connection
    last_ts_us: int = 0
    fin_from: set = field(default_factory=set)
    saw_rst: bool = False

    @property
    def closable(self) -> bool:
        """Both sides said FIN (or someone said RST): no data expected.

        The flow is still held open for a linger period so trailing
        ACKs and retransmitted FINs land in the connection instead of
        after its finalization.
        """
        return self.saw_rst or len(self.fin_from) >= 2


#: how long after its last packet a closed flow lingers before being
#: finalized (covers the final ACK of the FIN exchange and stragglers).
DEFAULT_LINGER_US = 2_000_000


def iter_connections(
    source: BinaryIO | str | Path | list[PcapRecord],
    health: TraceHealth | None = None,
    tolerant: bool = False,
    linger_us: int = DEFAULT_LINGER_US,
    *,
    mmap: bool | None = None,
    decode_batch: int | None = None,
    ledger: StateLedger | None = None,
) -> Iterator[Connection]:
    """Stream finalized connections out of a capture, flow by flow.

    The buffered path (:meth:`Trace.from_pcap`) holds every parsed
    frame of every connection until the file ends; this iterator
    finalizes and yields each connection as soon as its flow has closed
    (FINs from both sides or an RST) and stayed quiet for
    ``linger_us``, so peak memory is bounded by the *open* flows, not
    the whole capture.  Per-connection results are identical to the
    buffered path for captures whose flows close cleanly; a packet
    arriving for an already-emitted flow is dropped and accounted in
    ``health`` rather than resurrecting the connection.

    A :class:`~repro.analysis.budget.StateLedger` bounds even the open
    flows: every packet is metered through it, per-connection caps shed
    excess data (``connection.complete`` flips to ``False``), and when
    a global watermark trips its eviction plan is executed here —
    ``finalize-idle`` victims are finalized and yielded early,
    ``drop-coldest`` victims are discarded.  Either way the victim's
    key joins ``emitted``, so stragglers land as benign
    ``packet-after-close`` issues instead of resurrecting state.
    """
    health = health if health is not None else TraceHealth()
    reader: PcapReader | None = None
    if isinstance(source, list):
        records: Iterator[PcapRecord] = iter(source)
        reader_counts = False
    else:
        reader = PcapReader(
            source, tolerant=tolerant, health=health,
            mmap=mmap, decode_batch=decode_batch,
        )
        records = iter(reader)
        reader_counts = True
    open_flows: dict[FlowKey, _OpenFlow] = {}
    emitted: set[FlowKey] = set()
    try:
        for index, record in enumerate(records):
            if not reader_counts:
                health.records_read += 1
            try:
                fields = frames.parse_packet(record.data)
            except (frames.FrameError, ValueError) as exc:
                health.record(
                    STAGE_FRAME, "undecodable-frame",
                    timestamp_us=record.timestamp_us,
                    bytes_lost=record.captured_length,
                    detail=str(exc),
                    benign=True,
                )
                continue
            health.frames_decoded += 1
            key = canonical_key(
                fields.src_ip,
                fields.src_port,
                fields.dst_ip,
                fields.dst_port,
            )
            # Sweep flows whose close has lingered long enough.
            now = record.timestamp_us
            for other_key in list(open_flows):
                flow = open_flows[other_key]
                if (
                    other_key != key
                    and flow.closable
                    and now - flow.last_ts_us > linger_us
                ):
                    del open_flows[other_key]
                    emitted.add(other_key)
                    if ledger is not None:
                        ledger.discharge(other_key)
                    flow.connection.finalize()
                    yield flow.connection
            if key in emitted:
                health.record(
                    STAGE_FRAME, "packet-after-close",
                    timestamp_us=record.timestamp_us,
                    bytes_lost=len(fields.payload),
                    detail=f"{key}: flow already finalized and emitted",
                    benign=True,
                )
                continue
            if ledger is not None and not ledger.admit(
                key, len(fields.payload), fields.flags, now
            ):
                # A capped connection sheds this packet, but its clock
                # must keep running so the linger sweep stays honest.
                flow = open_flows.get(key)
                if flow is not None:
                    flow.connection.complete = False
                    flow.last_ts_us = now
                continue
            packet = _packet_from_fields(index, record, fields)
            flow = open_flows.get(key)
            if flow is None:
                flow = _OpenFlow(connection=Connection(key))
                open_flows[key] = flow
            flow.connection.add(packet)
            flow.last_ts_us = record.timestamp_us
            if packet.is_fin:
                flow.fin_from.add(packet.src_ip)
            if packet.is_rst:
                flow.saw_rst = True
            if ledger is not None:
                for victim_key, policy in ledger.plan_evictions(
                    open_flows, key, now
                ):
                    victim = open_flows.pop(victim_key)
                    emitted.add(victim_key)
                    if policy == POLICY_FINALIZE_IDLE:
                        # Early render: complete only if the flow had
                        # already closed and was merely lingering.
                        victim.connection.complete = (
                            victim.connection.complete and victim.closable
                        )
                        victim.connection.finalize()
                        yield victim.connection
        for key, flow in open_flows.items():
            if ledger is not None:
                ledger.discharge(key)
            flow.connection.finalize()
            yield flow.connection
        if ledger is not None:
            ledger.finish()
    finally:
        if reader is not None:
            reader.close()


def canonical_key(
    src_ip: str, src_port: int, dst_ip: str, dst_port: int
) -> FlowKey:
    """Order-independent connection key (lexicographically smaller first)."""
    forward = (src_ip, src_port, dst_ip, dst_port)
    backward = (dst_ip, dst_port, src_ip, src_port)
    return min(forward, backward)
