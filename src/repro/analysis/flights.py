"""Flight grouping: split packet timelines on inter-arrival gaps.

Both the ACK-shift step and the congestion-window inference reason
about *flights* — bursts of packets separated by quiet periods, the
grouping technique of Zhang et al. [38] that the paper adopts for ACKs
as well as data.
"""

from __future__ import annotations

from repro.analysis.profile import TracePacket


def flight_gap_threshold_us(rtt_us: int, floor_us: int = 1_000) -> int:
    """The default split threshold: half an RTT, floored at 1 ms."""
    return max(rtt_us // 2, floor_us)


def group_flights(
    packets: list[TracePacket], gap_threshold_us: int
) -> list[list[TracePacket]]:
    """Partition time-ordered packets into flights.

    A gap of more than ``gap_threshold_us`` between consecutive packets
    starts a new flight.
    """
    if gap_threshold_us <= 0:
        raise ValueError(f"non-positive threshold {gap_threshold_us}")
    flights: list[list[TracePacket]] = []
    current: list[TracePacket] = []
    previous_time: int | None = None
    for packet in packets:
        if (
            previous_time is not None
            and packet.timestamp_us - previous_time > gap_threshold_us
        ):
            flights.append(current)
            current = []
        current.append(packet)
        previous_time = packet.timestamp_us
    if current:
        flights.append(current)
    return flights


def flight_spans(
    flights: list[list[TracePacket]],
) -> list[tuple[int, int]]:
    """The [first, last] timestamp of each flight."""
    return [
        (flight[0].timestamp_us, flight[-1].timestamp_us)
        for flight in flights
        if flight
    ]
