"""T-DAT: the top-level TCP Delay Analysis Tool facade.

``analyze_pcap`` runs the full pipeline of the paper's Figure 10 —
pre-process (connection extraction and profiling), ACK shift, series
generation, delay-factor classification, problem detection — over every
TCP connection in a capture and returns a structured report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO

from repro.analysis.ackshift import AckShiftStats, shift_acks
from repro.analysis.budget import (
    DegradationSummary,
    ResourceBudget,
    StateLedger,
)
from repro.analysis.detectors import (
    ConsecutiveLossReport,
    TimerGapReport,
    ZeroAckBugReport,
    detect_consecutive_losses,
    detect_timer_gaps,
    detect_zero_ack_bug,
)
from repro.analysis.factors import FactorReport, classify
from repro.analysis.labeling import LabelingResult, label_connection
from repro.analysis.profile import (
    Connection,
    FlowKey,
    Trace,
    iter_connections,
)
from repro.analysis.series import (
    SNIFFER_AT_RECEIVER,
    ConnectionSeries,
    SeriesConfig,
    generate_series,
)
from repro.analysis.voids import CaptureVoidReport, find_capture_voids
from repro.core.health import IngestError, STAGE_ANALYSIS, TraceHealth
from repro.exec.pool import WorkPool, task_context
from repro.obs import get_obs
from repro.wire.pcap import PcapRecord


@dataclass
class ConnectionAnalysis:
    """Everything T-DAT derived for one TCP connection."""

    connection: Connection
    labeling: LabelingResult
    ack_shift: AckShiftStats
    series: ConnectionSeries
    factors: FactorReport
    timer_gaps: TimerGapReport
    consecutive_losses: ConsecutiveLossReport
    zero_ack_bug: ZeroAckBugReport
    capture_voids: CaptureVoidReport
    #: False when a resource budget truncated or early-finalized this
    #: connection — the analysis rests on partial state.
    complete: bool = True

    @property
    def key(self) -> FlowKey:
        return self.connection.key

    @property
    def confidence(self) -> str:
        """``"full"``, or ``"reduced"`` when the budget shed state —
        factor attribution from a truncated packet record is still the
        best available estimate, but not a complete observation."""
        return "full" if self.complete else "reduced"


@dataclass
class TdatReport:
    """The analysis of a whole capture."""

    analyses: dict[FlowKey, ConnectionAnalysis] = field(default_factory=dict)
    skipped_connections: int = 0
    health: TraceHealth = field(default_factory=TraceHealth)
    #: Present whenever a budget was in force (``degraded`` tells
    #: whether it actually shed anything); ``None`` for unbudgeted runs.
    degradation: DegradationSummary | None = None

    def __iter__(self):
        return iter(self.analyses.values())

    def __len__(self) -> int:
        return len(self.analyses)

    def get(self, key: FlowKey) -> ConnectionAnalysis:
        return self.analyses[key]


def analyze_connection(
    connection: Connection,
    window: tuple[int, int] | None = None,
    config: SeriesConfig | None = None,
    enable_ack_shift: bool = True,
    exclude_voids: bool = True,
) -> ConnectionAnalysis:
    """Run the full T-DAT pipeline on one connection.

    With ``exclude_voids`` (the default), periods where the sniffer
    demonstrably lost packets are removed from the factor ratios, per
    the paper's section II-A exclusion rule.

    Each pipeline stage runs inside its own observability span
    (``analysis.*``), and the whole connection's wall time lands in the
    ``analysis.connection_s`` histogram — the per-stage/per-connection
    timings of Figure 10's boxes.
    """
    config = config or SeriesConfig()
    obs = get_obs()
    tracer = obs.tracer
    wall_start = (
        time.monotonic() if obs.enabled else 0.0  # repro: noqa[RL001] wall-domain metric timing, never in results
    )
    shift_stats = AckShiftStats()
    with tracer.span("analysis.ack_shift", cat="analysis"):
        if enable_ack_shift and config.sniffer_location != "sender":
            shift_stats = shift_acks(connection)
    with tracer.span("analysis.label", cat="analysis"):
        labeling = label_connection(connection)
    with tracer.span("analysis.series", cat="analysis"):
        series = generate_series(
            connection, labeling, window=window, config=config
        )
    with tracer.span("analysis.voids", cat="analysis"):
        voids = find_capture_voids(connection)
    exclude = voids.void_windows if exclude_voids and voids.detected else None
    with tracer.span("analysis.classify", cat="analysis"):
        factors = classify(series, exclude=exclude)
    with tracer.span("analysis.detectors", cat="analysis"):
        timer_gaps = detect_timer_gaps(series)
        consecutive_losses = detect_consecutive_losses(series)
        zero_ack_bug = detect_zero_ack_bug(series)
    if obs.enabled:
        obs.metrics.counter("analysis.connections").inc()
        obs.metrics.histogram("analysis.connection_s", wall=True).observe(
            time.monotonic() - wall_start  # repro: noqa[RL001] wall-domain metric
        )
    return ConnectionAnalysis(
        connection=connection,
        labeling=labeling,
        ack_shift=shift_stats,
        series=series,
        factors=factors,
        timer_gaps=timer_gaps,
        consecutive_losses=consecutive_losses,
        zero_ack_bug=zero_ack_bug,
        capture_voids=voids,
        complete=getattr(connection, "complete", True),
    )


def _record_analysis_failure(
    health: TraceHealth, connection: Connection, summary: str
) -> None:
    """Account one contained per-connection analysis crash."""
    profile = connection.profile
    health.record(
        STAGE_ANALYSIS, "connection-analysis-failed",
        timestamp_us=profile.start_time_us if profile else None,
        bytes_lost=profile.total_data_bytes if profile else 0,
        detail=f"{connection.key}: {summary}",
    )


def _analyze_connection_task(
    item: tuple[Connection, tuple[int, int] | None]
) -> ConnectionAnalysis:
    """Work-pool task: one connection through the full pipeline.

    The shared :class:`SeriesConfig` travels as the pool context so it
    is shipped once per worker, not once per connection.
    """
    connection, window = item
    return analyze_connection(connection, window=window, config=task_context())


def analyze_pcap(
    source: BinaryIO | str | Path | list[PcapRecord],
    sniffer_location: str = SNIFFER_AT_RECEIVER,
    windows: dict[FlowKey, tuple[int, int]] | None = None,
    config: SeriesConfig | None = None,
    min_data_packets: int = 2,
    strict: bool = False,
    health: TraceHealth | None = None,
    workers: int = 1,
    streaming: bool = False,
    pool: WorkPool | None = None,
    mmap: bool | None = None,
    decode_batch: int | None = None,
    series_backend: str | None = None,
    budget: ResourceBudget | None = None,
) -> TdatReport:
    """Analyze every TCP connection in a capture.

    ``windows`` optionally restricts each connection's analysis period
    (e.g. to the MCT-determined table-transfer extent).  Connections
    with fewer than ``min_data_packets`` data segments are skipped.

    The default discipline is graceful degradation: structurally
    damaged pcap regions are skipped with resynchronization, frames and
    connections that defeat their decoders are dropped, and everything
    lost is accounted in the report's :class:`TraceHealth`.  With
    ``strict=True`` the original fail-fast behaviour is restored:
    damaged pcap structure or a crashed per-connection analysis raises
    instead of degrading (undecodable individual frames remain benign
    skips — real captures always contain some ARP/LLDP).

    Two execution knobs, both result-preserving:

    * ``streaming=True`` finalizes and analyzes each flow as it closes
      instead of parsing the whole capture first, bounding ingest
      memory by the *open* flows (see
      :func:`~repro.analysis.profile.iter_connections` and
      :func:`iter_analyze_pcap` for the incremental form);
    * ``workers=N`` (or an explicit ``pool``) fans the per-connection
      pipeline runs of a multi-connection capture out across worker
      processes.  Analyses come back in the same order the serial path
      produces, so reports are identical.

    Three performance knobs, also result-preserving (every fast path is
    byte-identical to its reference and falls back automatically):

    * ``mmap`` — zero-copy batched pcap scanning (``None`` = auto:
      used when the source supports it and the pre-scan finds no
      damage; ``False`` forces the streaming reader);
    * ``decode_batch`` — records decoded per fast-path batch;
    * ``series_backend`` — ``"auto"`` | ``"python"`` | ``"numpy"``
      kernel selection for series generation (ignored when an explicit
      ``config`` is given; set it on the config instead).

    ``budget`` bounds the live analysis state itself (see
    :class:`~repro.analysis.budget.ResourceBudget`): ingest is forced
    onto the streaming path, every packet is metered, and watermark
    trips evict state deterministically.  The run then *degrades*
    rather than growing without bound — shed state is accounted in
    benign health issues and ``report.degradation`` — and whenever the
    trace fits the budget the report is byte-identical to an
    unbudgeted streaming run.
    """
    if config is None:
        config = SeriesConfig(
            sniffer_location=sniffer_location,
            series_backend=series_backend or "auto",
        )
    if health is None:
        health = TraceHealth(strict=strict)
    report = TdatReport(health=health)
    ledger: StateLedger | None = None
    if budget is not None and budget.bounded:
        ledger = StateLedger(budget, health=health)
        report.degradation = ledger.summary
    bounded = streaming or ledger is not None
    if pool is None:
        pool = WorkPool(workers=workers)
    parallel = pool.workers > 1

    if bounded and not parallel:
        for analysis in _analyze_stream(
            source, report, windows=windows, config=config,
            min_data_packets=min_data_packets, strict=strict, health=health,
            mmap=mmap, decode_batch=decode_batch, ledger=ledger,
        ):
            report.analyses[analysis.key] = analysis
        _restore_capture_order(report)
        return report

    if bounded:
        # Parallel + streaming: ingest incrementally (bounded by open
        # flows, and by the ledger when a budget is set), then batch
        # the eligible connections through the pool.
        connections = iter_connections(
            source, health=health, tolerant=not strict,
            mmap=mmap, decode_batch=decode_batch, ledger=ledger,
        )
    else:
        connections = iter(Trace.from_pcap(
            source, health=health, tolerant=not strict,
            mmap=mmap, decode_batch=decode_batch,
        ))

    eligible: list[tuple[Connection, tuple[int, int] | None]] = []
    for connection in connections:
        if connection.profile is None or (
            connection.profile.total_data_packets < min_data_packets
        ):
            report.skipped_connections += 1
            continue
        window = windows.get(connection.key) if windows else None
        eligible.append((connection, window))

    if not parallel:
        for connection, window in eligible:
            try:
                report.analyses[connection.key] = analyze_connection(
                    connection, window=window, config=config
                )
            except Exception as exc:
                if strict:
                    raise
                # Contain the blast radius to one connection: record
                # what was lost and keep analyzing the rest.
                report.skipped_connections += 1
                _record_analysis_failure(
                    health, connection, f"{type(exc).__name__}: {exc}"
                )
    else:
        outcomes = pool.map(_analyze_connection_task, eligible, context=config)
        for (connection, _), outcome in zip(eligible, outcomes):
            if outcome.ok:
                report.analyses[connection.key] = outcome.value
                continue
            if strict:
                raise IngestError(
                    f"{connection.key}: analysis crashed in worker: "
                    f"{outcome.error}"
                )
            report.skipped_connections += 1
            _record_analysis_failure(health, connection, str(outcome.error))
    if bounded:
        _restore_capture_order(report)
    return report


def _restore_capture_order(report: TdatReport) -> None:
    """Reorder analyses to first-appearance order of their connections.

    Streaming ingest yields flows in *close* order; the buffered path
    iterates them in first-packet order.  Reports must not depend on
    the execution mode, so streaming results are put back in capture
    order (every connection holds its packets, so the order is exact).
    """
    report.analyses = dict(
        sorted(
            report.analyses.items(),
            key=lambda item: item[1].connection.packets[0].index,
        )
    )


def _analyze_stream(
    source: BinaryIO | str | Path | list[PcapRecord],
    report: TdatReport,
    windows: dict[FlowKey, tuple[int, int]] | None,
    config: SeriesConfig,
    min_data_packets: int,
    strict: bool,
    health: TraceHealth,
    mmap: bool | None = None,
    decode_batch: int | None = None,
    ledger: StateLedger | None = None,
):
    """Yield analyses one flow at a time, updating ``report`` counters."""
    for connection in iter_connections(
        source, health=health, tolerant=not strict,
        mmap=mmap, decode_batch=decode_batch, ledger=ledger,
    ):
        if connection.profile is None or (
            connection.profile.total_data_packets < min_data_packets
        ):
            report.skipped_connections += 1
            continue
        window = windows.get(connection.key) if windows else None
        try:
            yield analyze_connection(connection, window=window, config=config)
        except Exception as exc:
            if strict:
                raise
            report.skipped_connections += 1
            _record_analysis_failure(
                health, connection, f"{type(exc).__name__}: {exc}"
            )


def iter_analyze_pcap(
    source: BinaryIO | str | Path | list[PcapRecord],
    sniffer_location: str = SNIFFER_AT_RECEIVER,
    windows: dict[FlowKey, tuple[int, int]] | None = None,
    config: SeriesConfig | None = None,
    min_data_packets: int = 2,
    strict: bool = False,
    health: TraceHealth | None = None,
    mmap: bool | None = None,
    decode_batch: int | None = None,
    series_backend: str | None = None,
    budget: ResourceBudget | None = None,
    ledger: StateLedger | None = None,
):
    """The incremental form of :func:`analyze_pcap`.

    Yields each connection's :class:`ConnectionAnalysis` the moment its
    flow closes, in close order.  The caller owns each analysis as it
    arrives and may discard it, so a capture of thousands of sequential
    transfers can be analyzed in bounded memory — the use case behind
    the paper's multi-week monitoring traces.  The performance knobs
    (``mmap``, ``decode_batch``, ``series_backend``) behave exactly as
    in :func:`analyze_pcap`, as does ``budget``; a caller that needs
    the :class:`~repro.analysis.budget.DegradationSummary` afterwards
    can construct the :class:`~repro.analysis.budget.StateLedger`
    itself and pass it as ``ledger`` (which overrides ``budget``).
    """
    if config is None:
        config = SeriesConfig(
            sniffer_location=sniffer_location,
            series_backend=series_backend or "auto",
        )
    if health is None:
        health = TraceHealth(strict=strict)
    if ledger is None and budget is not None and budget.bounded:
        ledger = StateLedger(budget, health=health)
    throwaway = TdatReport(health=health)
    yield from _analyze_stream(
        source, throwaway, windows=windows, config=config,
        min_data_packets=min_data_packets, strict=strict, health=health,
        mmap=mmap, decode_batch=decode_batch, ledger=ledger,
    )
