"""T-DAT: the top-level TCP Delay Analysis Tool facade.

``analyze_pcap`` runs the full pipeline of the paper's Figure 10 —
pre-process (connection extraction and profiling), ACK shift, series
generation, delay-factor classification, problem detection — over every
TCP connection in a capture and returns a structured report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO

from repro.analysis.ackshift import AckShiftStats, shift_acks
from repro.analysis.detectors import (
    ConsecutiveLossReport,
    TimerGapReport,
    ZeroAckBugReport,
    detect_consecutive_losses,
    detect_timer_gaps,
    detect_zero_ack_bug,
)
from repro.analysis.factors import FactorReport, classify
from repro.analysis.labeling import LabelingResult, label_connection
from repro.analysis.profile import Connection, FlowKey, Trace
from repro.analysis.series import (
    SNIFFER_AT_RECEIVER,
    ConnectionSeries,
    SeriesConfig,
    generate_series,
)
from repro.analysis.voids import CaptureVoidReport, find_capture_voids
from repro.core.health import STAGE_ANALYSIS, TraceHealth
from repro.wire.pcap import PcapRecord


@dataclass
class ConnectionAnalysis:
    """Everything T-DAT derived for one TCP connection."""

    connection: Connection
    labeling: LabelingResult
    ack_shift: AckShiftStats
    series: ConnectionSeries
    factors: FactorReport
    timer_gaps: TimerGapReport
    consecutive_losses: ConsecutiveLossReport
    zero_ack_bug: ZeroAckBugReport
    capture_voids: CaptureVoidReport

    @property
    def key(self) -> FlowKey:
        return self.connection.key


@dataclass
class TdatReport:
    """The analysis of a whole capture."""

    analyses: dict[FlowKey, ConnectionAnalysis] = field(default_factory=dict)
    skipped_connections: int = 0
    health: TraceHealth = field(default_factory=TraceHealth)

    def __iter__(self):
        return iter(self.analyses.values())

    def __len__(self) -> int:
        return len(self.analyses)

    def get(self, key: FlowKey) -> ConnectionAnalysis:
        return self.analyses[key]


def analyze_connection(
    connection: Connection,
    window: tuple[int, int] | None = None,
    config: SeriesConfig | None = None,
    enable_ack_shift: bool = True,
    exclude_voids: bool = True,
) -> ConnectionAnalysis:
    """Run the full T-DAT pipeline on one connection.

    With ``exclude_voids`` (the default), periods where the sniffer
    demonstrably lost packets are removed from the factor ratios, per
    the paper's section II-A exclusion rule.
    """
    config = config or SeriesConfig()
    shift_stats = AckShiftStats()
    if enable_ack_shift and config.sniffer_location != "sender":
        shift_stats = shift_acks(connection)
    labeling = label_connection(connection)
    series = generate_series(connection, labeling, window=window, config=config)
    voids = find_capture_voids(connection)
    exclude = voids.void_windows if exclude_voids and voids.detected else None
    return ConnectionAnalysis(
        connection=connection,
        labeling=labeling,
        ack_shift=shift_stats,
        series=series,
        factors=classify(series, exclude=exclude),
        timer_gaps=detect_timer_gaps(series),
        consecutive_losses=detect_consecutive_losses(series),
        zero_ack_bug=detect_zero_ack_bug(series),
        capture_voids=voids,
    )


def analyze_pcap(
    source: BinaryIO | str | Path | list[PcapRecord],
    sniffer_location: str = SNIFFER_AT_RECEIVER,
    windows: dict[FlowKey, tuple[int, int]] | None = None,
    config: SeriesConfig | None = None,
    min_data_packets: int = 2,
    strict: bool = False,
    health: TraceHealth | None = None,
) -> TdatReport:
    """Analyze every TCP connection in a capture.

    ``windows`` optionally restricts each connection's analysis period
    (e.g. to the MCT-determined table-transfer extent).  Connections
    with fewer than ``min_data_packets`` data segments are skipped.

    The default discipline is graceful degradation: structurally
    damaged pcap regions are skipped with resynchronization, frames and
    connections that defeat their decoders are dropped, and everything
    lost is accounted in the report's :class:`TraceHealth`.  With
    ``strict=True`` the original fail-fast behaviour is restored:
    damaged pcap structure or a crashed per-connection analysis raises
    instead of degrading (undecodable individual frames remain benign
    skips — real captures always contain some ARP/LLDP).
    """
    if config is None:
        config = SeriesConfig(sniffer_location=sniffer_location)
    if health is None:
        health = TraceHealth(strict=strict)
    trace = Trace.from_pcap(source, health=health, tolerant=not strict)
    report = TdatReport(health=health)
    for connection in trace:
        if connection.profile is None or (
            connection.profile.total_data_packets < min_data_packets
        ):
            report.skipped_connections += 1
            continue
        window = windows.get(connection.key) if windows else None
        try:
            report.analyses[connection.key] = analyze_connection(
                connection, window=window, config=config
            )
        except Exception as exc:
            if strict:
                raise
            # Contain the blast radius to one connection: record what
            # was lost and keep analyzing the rest of the capture.
            report.skipped_connections += 1
            profile = connection.profile
            health.record(
                STAGE_ANALYSIS, "connection-analysis-failed",
                timestamp_us=profile.start_time_us if profile else None,
                bytes_lost=profile.total_data_bytes if profile else 0,
                detail=f"{connection.key}: {type(exc).__name__}: {exc}",
            )
    return report
