"""Event-series generation: the heart of T-DAT (paper section III-C).

From one connection's (ACK-shifted) packet timeline this module derives
the catalogue of named :class:`~repro.core.events.EventSeries`, through
the paper's three rule classes:

* **Extraction** — series read directly off the trace: transmission
  time, outstanding bytes, the receiver-advertised window, upstream and
  downstream loss-recovery periods, reordering, keepalives;
* **Interpretation** — renaming by deployment knowledge: with the
  sniffer next to the receiver, ``RecvLocalLoss := DownstreamLoss`` and
  ``NetworkLoss := UpstreamLoss`` (mirrored for a sender-side tap);
* **Operation** — inference and set algebra: sender application
  idleness, advertised-window-bounded and congestion-window-bounded
  flights, ``SmallAdvBndOut := AdvBndOut ∩ SmallAdv`` and friends.

The walk is organized around *flight cycles*: consecutive data flights
split on inter-arrival gaps, each cycle ending where the next flight
begins.  Per cycle the generator decides which constraint (receiver
window, congestion window, loss recovery, or the sending application)
explains the inter-transmission gap — the question the paper poses
under Figure 11.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.analysis.flights import flight_gap_threshold_us, group_flights
from repro.analysis.labeling import (
    KIND_DOWNSTREAM,
    KIND_REORDERING,
    KIND_UPSTREAM,
    LabelingResult,
    label_connection,
)
from repro.analysis.profile import Connection, TracePacket
from repro.core.events import EventSeries, SeriesCatalog, SeriesEventData
from repro.core.timeranges import TimeRange, TimeRangeSet

SNIFFER_AT_RECEIVER = "receiver"
SNIFFER_AT_SENDER = "sender"
SNIFFER_IN_MIDDLE = "middle"

#: All series the generator can emit (the paper's "34 internal series";
#: ours are enumerated here for discoverability).
SERIES_NAMES = [
    # Extraction
    "Transmission",
    "Outstanding",
    "AckArrivals",
    "ZeroAdvWindow",
    "SmallAdvWindow",
    "LargeAdvWindow",
    "UpstreamLoss",
    "DownstreamLoss",
    "AllLoss",
    "Reordering",
    "KeepAlives",
    "InterTransmissionGaps",
    # Interpretation
    "SendLocalLoss",
    "RecvLocalLoss",
    "NetworkLoss",
    # Operation
    "SenderIdleRaw",
    "SenderPacedRaw",
    "SmallAdvStall",
    "SendAppLimited",
    "AdvBndOut",
    "CwdBndOut",
    "ZeroAdvBndOut",
    "SmallAdvBndOut",
    "LargeAdvBndOut",
    "TcpAdvBndOut",
    "ZeroAckBug",
    "BandwidthLimited",
]


#: accepted values of :attr:`SeriesConfig.series_backend`.
SERIES_BACKENDS = ("auto", "python", "numpy")


@dataclass
class SeriesConfig:
    """Tunables of the series generator (paper defaults)."""

    sniffer_location: str = SNIFFER_AT_RECEIVER
    # "Small"/"large" advertised-window thresholds (paper: 3 MSS).
    window_margin_mss: int = 3
    # A sender answering ACKs within this delay is not app-limited.
    response_threshold_us: int = 2_000
    # Back-to-back spacing slack for bandwidth-limit detection.
    bandwidth_slack: float = 1.3
    # Minimum packets of sustained bottleneck spacing.
    bandwidth_min_packets: int = 5
    # Accumulation backend for the Outstanding kernel: "python" is the
    # reference event walk, "numpy" the vectorized equivalent (errors
    # when numpy is absent), "auto" picks numpy only for connections
    # large enough to amortize the array round-trip.  All three produce
    # byte-identical series.
    series_backend: str = "auto"


#: below this many events per connection "auto" keeps the pure-python
#: walk: the list<->array round-trip costs more than the loop it
#: replaces (and the decision is made before numpy is even imported,
#: so small-connection analyses never pay the import either).
AUTO_MIN_EVENTS = 4096


def _resolve_backend(name: str, n_events: int):
    """The series_np module to use, or None for the pure-python walk."""
    if name not in SERIES_BACKENDS:
        raise ValueError(
            f"unknown series_backend {name!r}; expected one of {SERIES_BACKENDS}"
        )
    if name == "python":
        return None
    if name == "auto" and n_events < AUTO_MIN_EVENTS:
        return None
    from repro.analysis import series_np

    if not series_np.AVAILABLE:
        if name == "numpy":
            raise ValueError(
                "series_backend='numpy' requested but numpy is not installed"
            )
        return None
    return series_np


class StepFunction:
    """A right-continuous integer step function of time."""

    def __init__(self, initial: int = 0) -> None:
        self._times: list[int] = []
        self._values: list[int] = []
        self.initial = initial

    def add(self, time_us: int, value: int) -> None:
        """Append a sample; times must be non-decreasing."""
        if self._times and time_us < self._times[-1]:
            raise ValueError("step function samples must be time-ordered")
        if self._times and self._times[-1] == time_us:
            self._values[-1] = value
            return
        self._times.append(time_us)
        self._values.append(value)

    def value_at(self, time_us: int) -> int:
        """The value in effect at ``time_us``."""
        idx = bisect.bisect_right(self._times, time_us) - 1
        if idx < 0:
            return self.initial
        return self._values[idx]

    def ranges_where(self, predicate, start_us: int, end_us: int) -> TimeRangeSet:
        """Intervals within [start, end) where ``predicate(value)`` holds.

        One linear walk over the samples — a true run opens where the
        predicate starts holding and closes where it stops, which is
        exactly the coalescing the per-interval span adds used to do.
        """
        result = TimeRangeSet()
        if end_us <= start_us:
            return result
        times = self._times
        values = self._values
        i = bisect.bisect_right(times, start_us)
        current = self.initial if i == 0 else values[i - 1]
        run_start = start_us if predicate(current) else None
        for i in range(i, len(times)):
            t = times[i]
            if t >= end_us:
                break
            holds = predicate(values[i])
            if run_start is None:
                if holds:
                    run_start = t
            elif not holds:
                result.add_span(run_start, t)
                run_start = None
        if run_start is not None:
            result.add_span(run_start, end_us)
        return result

    def samples(self) -> list[tuple[int, int]]:
        """The raw (time, value) samples."""
        return list(zip(self._times, self._values))


@dataclass
class ConnectionSeries:
    """The output bundle of :func:`generate_series`."""

    catalog: SeriesCatalog
    labeling: LabelingResult
    outstanding: StepFunction
    advertised_window: StepFunction
    window: TimeRange
    mss: int
    rtt_us: int
    serialization_us_per_byte: float

    def get(self, name: str) -> EventSeries:
        """Look up a series by name."""
        return self.catalog.get(name)


def generate_series(
    connection: Connection,
    labeling: LabelingResult | None = None,
    window: tuple[int, int] | None = None,
    config: SeriesConfig | None = None,
) -> ConnectionSeries:
    """Generate the full series catalogue for one connection.

    ``window`` is the analysis period (defaults to the span from the
    first data packet to the last packet of the connection).
    """
    config = config or SeriesConfig()
    if labeling is None:
        labeling = label_connection(connection)
    profile = connection.profile
    if profile is None:
        raise ValueError("connection has no profile; call finalize() first")
    mss = profile.mss
    data = connection.data_packets()
    acks = connection.ack_packets()
    if window is None:
        start = data[0].timestamp_us if data else profile.start_time_us
        window = (start, profile.end_time_us)
    analysis = TimeRange(*window)
    catalog = SeriesCatalog()

    byte_time = _estimate_byte_time(data)

    # ------------------------------------------------------------- #
    # Extraction                                                      #
    # ------------------------------------------------------------- #
    backend = _resolve_backend(config.series_backend, len(data) + len(acks))

    transmission = TimeRangeSet()
    for packet in data:
        ser = max(1, round(packet.wire_len * byte_time))
        transmission.add(
            TimeRange(
                packet.timestamp_us - ser,
                packet.timestamp_us,
                SeriesEventData(packets=1, bytes=packet.payload_len,
                                refs=[packet.index]),
            )
        )
    catalog.put(EventSeries("Transmission", transmission,
                            "time actually spent clocking data onto the wire"))

    if backend is not None:
        outstanding_fn, outstanding_set = backend.outstanding(
            connection, data, acks
        )
    else:
        outstanding_fn, outstanding_set = _outstanding(connection, data, acks)
    catalog.put(EventSeries("Outstanding", outstanding_set,
                            "periods with unacknowledged data in flight"))

    ack_marks = TimeRangeSet()
    for ack in acks:
        t = ack.effective_time_us
        ack_marks.add_span(t, t + 1)
    catalog.put(EventSeries("AckArrivals", ack_marks, "ACK observation instants"))

    adv_fn = _advertised_window(acks)
    small_limit = config.window_margin_mss * mss
    large_limit = max(profile.max_advertised_window - small_limit, 0)
    catalog.put(EventSeries(
        "ZeroAdvWindow",
        adv_fn.ranges_where(lambda v: v == 0, analysis.start, analysis.end),
        "receiver advertised a zero window",
    ))
    catalog.put(EventSeries(
        "SmallAdvWindow",
        adv_fn.ranges_where(lambda v: v < small_limit, analysis.start, analysis.end),
        "receiver window below 3 MSS (receiving app falling behind)",
    ))
    catalog.put(EventSeries(
        "LargeAdvWindow",
        adv_fn.ranges_where(lambda v: v > large_limit, analysis.start, analysis.end),
        "receiver window near its configured maximum",
    ))

    upstream, downstream, reordering = _loss_series(labeling)
    catalog.put(EventSeries("UpstreamLoss", upstream,
                            "recovery periods for losses upstream of the tap"))
    catalog.put(EventSeries("DownstreamLoss", downstream,
                            "recovery periods for losses downstream of the tap"))
    catalog.put(EventSeries("AllLoss", upstream.union(downstream),
                            "all loss-recovery periods"))
    catalog.put(EventSeries("Reordering", reordering,
                            "in-network reordering (not loss)"))

    keepalives = TimeRangeSet()
    for packet in data:
        if packet.is_bgp_keepalive():
            keepalives.add_span(packet.timestamp_us, packet.timestamp_us + 1)
    catalog.put(EventSeries("KeepAlives", keepalives,
                            "BGP keepalive transmission instants"))

    catalog.put(EventSeries(
        "InterTransmissionGaps",
        transmission.complement(analysis),
        "the time between transmissions that the analyzer must explain",
    ))

    # ------------------------------------------------------------- #
    # Interpretation                                                  #
    # ------------------------------------------------------------- #
    up_series = catalog.get("UpstreamLoss")
    down_series = catalog.get("DownstreamLoss")
    if config.sniffer_location == SNIFFER_AT_RECEIVER:
        catalog.put(EventSeries("SendLocalLoss", TimeRangeSet()))
        catalog.put(down_series.renamed("RecvLocalLoss"))
        catalog.put(up_series.renamed("NetworkLoss"))
    elif config.sniffer_location == SNIFFER_AT_SENDER:
        catalog.put(up_series.renamed("SendLocalLoss"))
        catalog.put(EventSeries("RecvLocalLoss", TimeRangeSet()))
        catalog.put(down_series.renamed("NetworkLoss"))
    else:
        catalog.put(EventSeries("SendLocalLoss", TimeRangeSet()))
        catalog.put(EventSeries("RecvLocalLoss", TimeRangeSet()))
        catalog.put(up_series.union(down_series, name="NetworkLoss"))

    # ------------------------------------------------------------- #
    # Operation: per-flight-cycle constraint attribution              #
    # ------------------------------------------------------------- #
    loss_union = upstream.union(downstream)
    # Window boundedness is evaluated continuously on the outstanding
    # and advertised-window step functions, which handles both discrete
    # flights and continuously ack-clocked periods.
    busy, adv_bnd_raw = _bounded_ranges(
        outstanding_fn, adv_fn, small_limit, analysis.start, analysis.end
    )
    adv_bnd = adv_bnd_raw.difference(loss_union)
    # Sender idleness comes from the flight-cycle walk: the time between
    # the final ACK of one flight and the start of the next.  The
    # congestion-window attribution is opt-in per cycle: only cycles
    # whose next flight follows the ACKs immediately are candidates —
    # in an idle-resolved cycle the ACK-wait is not a cwnd constraint
    # (the sender had nothing more to send, paper section III-C).
    # Data cycles split on a *fine* inter-arrival threshold (not the
    # RTT): a paced sender's per-message gaps must become cycles of
    # their own, or a whole transfer merges into one cycle and gets the
    # classification of its tail.
    threshold = config.response_threshold_us
    cycles = _flight_cycles(
        connection, data, acks, profile.rtt_us,
        gap_threshold_us=max(threshold, 1_000),
    )
    idle_raw = TimeRangeSet()
    paced_raw = TimeRangeSet()
    cwnd_eligible = TimeRangeSet()
    for cycle in cycles:
        # The busy head of every cycle — transmission plus the wait for
        # its ACKs — is window territory (adv or cwnd decide there).
        head_end = cycle.end_us if cycle.acked_us is None else min(
            cycle.acked_us, cycle.end_us
        )
        if head_end > cycle.start_us:
            cwnd_eligible.add_span(cycle.start_us, head_end)
        if cycle.next_start_us is None:
            # The trailing quiet period after the final flight.
            if cycle.acked_us is not None and analysis.end > cycle.acked_us:
                idle_raw.add_span(cycle.acked_us, analysis.end)
            continue
        gap = cycle.next_start_us - cycle.last_data_us
        if gap <= threshold:
            continue  # continuous transmission
        response = (
            cycle.next_start_us - cycle.acked_us
            if cycle.acked_us is not None
            else None
        )
        ack_slid_window = (
            cycle.last_ack_before_next_us is not None
            and 0
            <= cycle.next_start_us - cycle.last_ack_before_next_us
            <= threshold
        )
        if (response is not None and abs(response) <= threshold) or ack_slid_window:
            # Transmission resumed right on an ACK's heels — either the
            # cycle-covering ACK or an earlier window-sliding one (the
            # delayed ACK of a flight's last odd segment arrives long
            # after the window has already slid open): window bound.
            cwnd_eligible.add_span(cycle.start_us, cycle.next_start_us)
        elif response is not None and response > threshold:
            # Idle after everything was acknowledged: the application.
            idle_raw.add_span(cycle.acked_us, cycle.next_start_us)
        else:
            # Paused, then resumed *before* the ACKs arrived: the
            # application paces itself (a sender-side rate limit, which
            # the paper folds into SendAppLimited via [15]).
            paced_raw.add_span(cycle.last_data_us, cycle.next_start_us)
    cwd_bnd = (
        busy.intersection(cwnd_eligible)
        .difference(adv_bnd_raw)
        .difference(loss_union)
        .difference(transmission)
        .difference(idle_raw)
        .difference(paced_raw)
    )
    catalog.put(EventSeries("SenderIdleRaw", idle_raw,
                            "raw idle periods before filtering"))
    catalog.put(EventSeries("SenderPacedRaw", paced_raw,
                            "pauses where sending resumed before the ACKs"))
    catalog.put(EventSeries("AdvBndOut", adv_bnd,
                            "flights bounded by the receiver window"))
    catalog.put(EventSeries("CwdBndOut", cwd_bnd,
                            "flights bounded by the congestion window"))

    zero_bnd = catalog.get("ZeroAdvWindow").ranges
    if data:
        zero_bnd = zero_bnd.clip(analysis.start, data[-1].timestamp_us)
    catalog.put(EventSeries("ZeroAdvBndOut", zero_bnd,
                            "transfer stalled on a zero receiver window"))

    # Idle under a small advertised window is the *receiver* pacing the
    # sender, not sender application think-time — the paper's
    # definition requires the sender "not bounded by the TCP windows".
    small_adv = catalog.get("SmallAdvWindow").ranges
    small_adv_stall = idle_raw.intersection(small_adv).difference(loss_union)
    catalog.put(EventSeries("SmallAdvStall", small_adv_stall,
                            "sender idle because the window closed"))
    send_app = (
        idle_raw.union(paced_raw)
        .difference(small_adv)
        .difference(loss_union)
        .clip(analysis.start, analysis.end)
    )
    catalog.put(EventSeries("SendAppLimited", send_app,
                            "sender idle with open windows (BGP app delay)"))

    catalog.put(
        EventSeries(
            "SmallAdvBndOut",
            catalog.get("AdvBndOut")
            .intersection(catalog.get("SmallAdvWindow"))
            .ranges.union(small_adv_stall),
            "receiver window small and binding (receiving app delay)",
        )
    )
    catalog.put(
        catalog.get("AdvBndOut").intersection(
            catalog.get("LargeAdvWindow"), name="LargeAdvBndOut"
        )
    )
    # Everything advertised-window bound that is NOT explained by a
    # closing (small) window is the TCP window configuration limiting —
    # the window may read mid-range at ACK instants while still being
    # the binding constraint.
    catalog.put(
        EventSeries(
            "TcpAdvBndOut",
            catalog.get("AdvBndOut").ranges.difference(small_adv),
            "receiver window binding without the receiving app lagging",
        )
    )
    # The paper found this bug through *conflicting* series: losses
    # while the zero window should have silenced the sender.  The zero
    # window is dilated by ~2 RTT so recoveries that begin the instant a
    # window update ends the episode still register as coincident.
    zero_dilated = catalog.get("ZeroAdvBndOut").ranges.dilate(
        max(2 * profile.rtt_us, 10_000)
    )
    catalog.put(EventSeries(
        "ZeroAckBug",
        zero_dilated.intersection(catalog.get("UpstreamLoss").ranges),
        "upstream-loss recovery coinciding with zero-window episodes",
    ))

    catalog.put(EventSeries(
        "BandwidthLimited",
        _bandwidth_limited(
            data, byte_time, config,
            min_duration_us=max(2 * profile.rtt_us, 20_000),
        ),
        "sustained back-to-back arrivals at bottleneck spacing",
    ))

    return ConnectionSeries(
        catalog=catalog,
        labeling=labeling,
        outstanding=outstanding_fn,
        advertised_window=adv_fn,
        window=analysis,
        mss=mss,
        rtt_us=profile.rtt_us,
        serialization_us_per_byte=byte_time,
    )


# ------------------------------------------------------------------ #
# Internals                                                            #
# ------------------------------------------------------------------ #
def _estimate_byte_time(data: list[TracePacket]) -> float:
    """Packet-pair estimate of the bottleneck's us-per-byte."""
    best: float | None = None
    for prev, curr in zip(data, data[1:]):
        gap = curr.timestamp_us - prev.timestamp_us
        if gap <= 0 or curr.wire_len == 0:
            continue
        rate = gap / curr.wire_len
        if best is None or rate < best:
            best = rate
    return best if best is not None else 0.01


def _bounded_ranges(
    out_fn: "StepFunction",
    adv_fn: "StepFunction",
    small_limit: int,
    start_us: int,
    end_us: int,
) -> tuple[TimeRangeSet, TimeRangeSet]:
    """(busy, advertised-window-bounded) ranges from the step functions.

    A two-pointer merge over both step functions' boundaries; run
    open/close bookkeeping reproduces the coalescing that per-interval
    span adds over the sorted boundary union used to do.
    """
    busy = TimeRangeSet()
    adv_bound = TimeRangeSet()
    if end_us <= start_us:
        return busy, adv_bound
    out_times, out_values = out_fn._times, out_fn._values
    adv_times, adv_values = adv_fn._times, adv_fn._values
    len_out, len_adv = len(out_times), len(adv_times)
    i = bisect.bisect_right(out_times, start_us)
    j = bisect.bisect_right(adv_times, start_us)
    out_v = out_fn.initial if i == 0 else out_values[i - 1]
    adv_v = adv_fn.initial if j == 0 else adv_values[j - 1]
    left = start_us
    busy_start: int | None = None
    adv_start: int | None = None
    while left < end_us:
        right = end_us
        if i < len_out and out_times[i] < right:
            right = out_times[i]
        if j < len_adv and adv_times[j] < right:
            right = adv_times[j]
        if out_v > 0:
            if busy_start is None:
                busy_start = left
            if adv_v - out_v < small_limit:
                if adv_start is None:
                    adv_start = left
            elif adv_start is not None:
                adv_bound.add_span(adv_start, left)
                adv_start = None
        else:
            if busy_start is not None:
                busy.add_span(busy_start, left)
                busy_start = None
            if adv_start is not None:
                adv_bound.add_span(adv_start, left)
                adv_start = None
        if right == end_us:
            break
        while i < len_out and out_times[i] == right:
            out_v = out_values[i]
            i += 1
        while j < len_adv and adv_times[j] == right:
            adv_v = adv_values[j]
            j += 1
        left = right
    if busy_start is not None:
        busy.add_span(busy_start, end_us)
    if adv_start is not None:
        adv_bound.add_span(adv_start, end_us)
    return busy, adv_bound


def _outstanding(
    connection: Connection,
    data: list[TracePacket],
    acks: list[TracePacket],
) -> tuple[StepFunction, TimeRangeSet]:
    events: list[tuple[int, int, str, int]] = []
    for packet in data:
        end = connection.relative_seq(packet) + packet.payload_len
        events.append((packet.timestamp_us, 0, "data", end))
    for ack in acks:
        events.append((ack.effective_time_us, 1, "ack", connection.relative_ack(ack)))
    events.sort(key=lambda e: (e[0], e[1]))
    fn = StepFunction()
    ranges = TimeRangeSet()
    snd_max = 0
    acked = 0
    open_since: int | None = None
    for time_us, _, kind, value in events:
        if kind == "data":
            snd_max = max(snd_max, value)
        else:
            acked = max(acked, value)
        outstanding = max(snd_max - acked, 0)
        fn.add(time_us, outstanding)
        if outstanding > 0 and open_since is None:
            open_since = time_us
        elif outstanding == 0 and open_since is not None:
            ranges.add_span(open_since, time_us)
            open_since = None
    if open_since is not None and events:
        ranges.add_span(open_since, events[-1][0] + 1)
    return fn, ranges


def _advertised_window(acks: list[TracePacket]) -> StepFunction:
    fn = StepFunction(initial=65535)
    for ack in sorted(acks, key=lambda a: a.effective_time_us):
        fn.add(ack.effective_time_us, ack.window)
    return fn


def _loss_series(
    labeling: LabelingResult,
) -> tuple[TimeRangeSet, TimeRangeSet, TimeRangeSet]:
    upstream = TimeRangeSet()
    downstream = TimeRangeSet()
    reordering = TimeRangeSet()
    for label in labeling.labels:
        packet = label.packet
        if label.kind == KIND_REORDERING:
            reordering.add_span(packet.timestamp_us, packet.timestamp_us + 1)
            continue
        if not label.is_retransmission:
            continue
        start = label.trigger_time_us
        if start is None:
            start = packet.timestamp_us
        end = label.recovery_time_us
        if end is None or end <= start:
            end = max(packet.timestamp_us, start + 1)
        target = upstream if label.kind == KIND_UPSTREAM else downstream
        target.add(
            TimeRange(
                start,
                end,
                SeriesEventData(packets=1, bytes=packet.payload_len,
                                refs=[packet.index]),
            )
        )
    return upstream, downstream, reordering


@dataclass
class FlightCycle:
    """One data flight plus the quiet period until the next flight."""

    start_us: int
    last_data_us: int
    end_us: int
    packets: int
    bytes: int
    peak_outstanding: int
    acked_us: int | None
    next_start_us: int | None
    # The last ACK observed before the next flight began: a next flight
    # right on its heels is window-sliding, not application pacing.
    last_ack_before_next_us: int | None = None


def _flight_cycles(
    connection: Connection,
    data: list[TracePacket],
    acks: list[TracePacket],
    rtt_us: int,
    gap_threshold_us: int | None = None,
) -> list[FlightCycle]:
    if not data:
        return []
    threshold = (
        gap_threshold_us
        if gap_threshold_us is not None
        else flight_gap_threshold_us(rtt_us)
    )
    flights = group_flights(data, threshold)
    # Per-flight ACK shifting may locally perturb the time order; sort
    # so the bisect lookups below stay correct.
    pairs = sorted(
        (a.effective_time_us, connection.relative_ack(a)) for a in acks
    )
    ack_times = [t for t, _ in pairs]
    ack_values = [v for _, v in pairs]
    # ack_values is non-decreasing in a sane trace; enforce monotonicity
    # so bisect works even through reordered captures.
    running = 0
    monotone = []
    for value in ack_values:
        running = max(running, value)
        monotone.append(running)

    cycles: list[FlightCycle] = []
    for i, flight in enumerate(flights):
        start = flight[0].timestamp_us
        last_data = flight[-1].timestamp_us
        next_start = (
            flights[i + 1][0].timestamp_us if i + 1 < len(flights) else None
        )
        end = next_start if next_start is not None else last_data + rtt_us
        flight_end_seq = max(
            connection.relative_seq(p) + p.payload_len for p in flight
        )
        acked_us = _first_ack_covering(
            ack_times, monotone, last_data, flight_end_seq
        )
        peak = max(
            flight_end_seq
            - _ack_value_at(ack_times, monotone, p.timestamp_us)
            for p in flight
        )
        last_ack_before_next = None
        if next_start is not None:
            idx = bisect.bisect_right(ack_times, next_start) - 1
            if idx >= 0:
                last_ack_before_next = ack_times[idx]
        cycles.append(
            FlightCycle(
                start_us=start,
                last_data_us=last_data,
                end_us=end,
                packets=len(flight),
                bytes=sum(p.payload_len for p in flight),
                peak_outstanding=peak,
                acked_us=acked_us,
                next_start_us=next_start,
                last_ack_before_next_us=last_ack_before_next,
            )
        )
    return cycles


def _first_ack_covering(
    ack_times: list[int], ack_values: list[int], after_us: int, seq: int
) -> int | None:
    start = bisect.bisect_left(ack_times, after_us)
    for i in range(start, len(ack_times)):
        if ack_values[i] >= seq:
            return ack_times[i]
    return None


def _ack_value_at(
    ack_times: list[int], ack_values: list[int], time_us: int
) -> int:
    idx = bisect.bisect_right(ack_times, time_us) - 1
    if idx < 0:
        return 0
    return ack_values[idx]


def _bandwidth_limited(
    data: list[TracePacket],
    byte_time: float,
    config: SeriesConfig,
    min_duration_us: int = 20_000,
) -> TimeRangeSet:
    result = TimeRangeSet()
    run_start: int | None = None
    run_packets = 0

    def commit(end_us: int) -> None:
        # A window-sized burst also rides at wire speed; only runs both
        # long (in packets) and sustained (in time, beyond a couple of
        # RTTs) indicate an actually bandwidth-limited path.
        if (
            run_start is not None
            and run_packets >= config.bandwidth_min_packets
            and end_us - run_start >= min_duration_us
        ):
            result.add_span(run_start, end_us)

    for prev, curr in zip(data, data[1:]):
        gap = curr.timestamp_us - prev.timestamp_us
        expected = curr.wire_len * byte_time
        if gap <= expected * config.bandwidth_slack:
            if run_start is None:
                run_start = prev.timestamp_us
                run_packets = 1
            run_packets += 1
        else:
            commit(prev.timestamp_us)
            run_start = None
            run_packets = 0
    commit(data[-1].timestamp_us if data else 0)
    return result
