"""Delay-factor classification: series -> ratio vectors (paper III-D).

Eight conclusive series become the delay *factors*; each factor's delay
ratio is its series size over the analysis period.  Factors roll up
into the Sender / Receiver / Network groups via set union (so
overlapping factor periods are not double counted), yielding the
compact 3-vector ``(Rs, Rr, Rn)`` the paper scatter-plots in Figure 14.
A group is a *major* factor when its ratio exceeds the 0.3 threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.series import ConnectionSeries
from repro.core.events import EventSeries

MAJOR_THRESHOLD = 0.3

#: factor name -> (series name, group) in paper order.
FACTORS: dict[str, tuple[str, str]] = {
    "bgp_sender_app": ("SendAppLimited", "sender"),
    "tcp_congestion_window": ("CwdBndOut", "sender"),
    "sender_local_loss": ("SendLocalLoss", "sender"),
    "bgp_receiver_app": ("SmallAdvBndOut", "receiver"),
    "tcp_advertised_window": ("TcpAdvBndOut", "receiver"),
    "receiver_local_loss": ("RecvLocalLoss", "receiver"),
    "bandwidth_limited": ("BandwidthLimited", "network"),
    "network_packet_loss": ("NetworkLoss", "network"),
}

GROUPS = ("sender", "receiver", "network")


@dataclass
class FactorReport:
    """Raw 8-vector, grouped 3-vector and derived verdicts."""

    analysis_period_us: int
    ratios: dict[str, float]
    group_ratios: dict[str, float]
    factor_sizes_us: dict[str, int]

    @property
    def vector(self) -> tuple[float, ...]:
        """The raw ratio 8-vector in canonical factor order."""
        return tuple(self.ratios[name] for name in FACTORS)

    @property
    def group_vector(self) -> tuple[float, float, float]:
        """(Rs, Rr, Rn)."""
        return (
            self.group_ratios["sender"],
            self.group_ratios["receiver"],
            self.group_ratios["network"],
        )

    def major_groups(self, threshold: float = MAJOR_THRESHOLD) -> list[str]:
        """Groups whose delay ratio exceeds the threshold."""
        return [g for g in GROUPS if self.group_ratios[g] > threshold]

    def is_unknown(self, threshold: float = MAJOR_THRESHOLD) -> bool:
        """True when no group clears the major threshold."""
        return not self.major_groups(threshold)

    def dominant_factor(self, group: str) -> str | None:
        """The largest individual factor within ``group``, if any."""
        candidates = [
            (self.ratios[name], name)
            for name, (_, g) in FACTORS.items()
            if g == group and self.ratios[name] > 0
        ]
        if not candidates:
            return None
        return max(candidates)[1]

    def major_factors(
        self, threshold: float = MAJOR_THRESHOLD
    ) -> dict[str, str]:
        """For each major group, its dominant individual factor."""
        result = {}
        for group in self.major_groups(threshold):
            factor = self.dominant_factor(group)
            if factor is not None:
                result[group] = factor
        return result


def classify(series: ConnectionSeries, exclude=None) -> FactorReport:
    """Compute the delay-factor report for one connection's series.

    ``exclude`` (a :class:`~repro.core.timeranges.TimeRangeSet`) removes
    capture-void periods from both the factor series and the analysis
    period, per the paper's section II-A exclusion rule.
    """
    period = series.window.duration
    if exclude is not None:
        period -= exclude.clip(series.window.start, series.window.end).size()
        period = max(period, 1)
    ratios: dict[str, float] = {}
    sizes: dict[str, int] = {}
    group_members: dict[str, list[EventSeries]] = {g: [] for g in GROUPS}
    for factor_name, (series_name, group) in FACTORS.items():
        member = series.catalog.get_or_empty(series_name).clip(
            series.window.start, series.window.end
        )
        if exclude is not None:
            member = member.difference(
                EventSeries("excluded", exclude), name=member.name
            )
        sizes[factor_name] = member.size()
        ratios[factor_name] = member.delay_ratio(period)
        group_members[group].append(member)
    group_ratios = {}
    for group, members in group_members.items():
        if members:
            union = members[0].union(*members[1:], name=f"group-{group}")
        else:
            union = EventSeries(f"group-{group}")
        group_ratios[group] = union.delay_ratio(period)
    return FactorReport(
        analysis_period_us=period,
        ratios=ratios,
        group_ratios=group_ratios,
        factor_sizes_us=sizes,
    )
