"""MCT — estimating the end of a BGP table transfer (Zhang et al. [36]).

A table transfer is the burst of UPDATEs right after session
establishment announcing the peer's full table.  Its end is estimated
from the update stream itself: the transfer is over once prefixes stop
being *new* — steady-state updates mostly re-announce or withdraw known
prefixes — or once the stream goes quiet for longer than an idle
timeout.  The paper runs MCT only on the stream following a TCP
connection start, which is how this module is meant to be driven (the
connection start time comes from the packet trace).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.messages import UpdateMessage
from repro.core.units import seconds

DEFAULT_IDLE_TIMEOUT_US = seconds(30)
DEFAULT_DUPLICATE_TOLERANCE = 0.05


@dataclass
class TableTransfer:
    """The MCT estimate for one table transfer."""

    start_us: int
    end_us: int
    updates: int
    prefixes: int
    ended_by: str  # "duplicates" | "idle" | "stream-end"

    @property
    def duration_us(self) -> int:
        return self.end_us - self.start_us


def minimum_collection_time(
    updates: list[tuple[int, UpdateMessage]],
    start_us: int | None = None,
    idle_timeout_us: int = DEFAULT_IDLE_TIMEOUT_US,
    duplicate_tolerance: float = DEFAULT_DUPLICATE_TOLERANCE,
) -> TableTransfer | None:
    """Estimate the table-transfer extent from (timestamp, UPDATE) pairs.

    ``start_us`` anchors the transfer start (the TCP connection start in
    the paper's pipeline); it defaults to the first update's timestamp.
    The transfer ends at the last update that still contributed new
    prefixes, before either the duplicate fraction exceeded the
    tolerance or the stream idled.
    """
    if not updates:
        return None
    if start_us is None:
        start_us = updates[0][0]
    seen: set[str] = set()
    end_us = updates[0][0]
    total_updates = 0
    duplicates = 0
    ended_by = "stream-end"
    previous_ts = updates[0][0]
    for ts, update in updates:
        if ts - previous_ts > idle_timeout_us:
            ended_by = "idle"
            break
        previous_ts = ts
        total_updates += 1
        new_prefixes = 0
        for prefix in update.announced:
            key = str(prefix)
            if key not in seen:
                seen.add(key)
                new_prefixes += 1
        if update.announced and new_prefixes == 0:
            duplicates += 1
            if duplicates / max(total_updates, 1) > duplicate_tolerance:
                ended_by = "duplicates"
                break
        if new_prefixes:
            end_us = ts
    return TableTransfer(
        start_us=start_us,
        end_us=end_us,
        updates=total_updates,
        prefixes=len(seen),
        ended_by=ended_by,
    )


def transfers_from_mrt_records(
    records,
    connection_start_us: int,
    **kwargs,
) -> TableTransfer | None:
    """Run MCT over MRT records for one peer, anchored at a TCP start."""
    updates = [
        (record.timestamp_us, record.message)
        for record in records
        if isinstance(record.message, UpdateMessage)
        and record.timestamp_us >= connection_start_us
    ]
    return minimum_collection_time(updates, start_us=connection_start_us, **kwargs)
