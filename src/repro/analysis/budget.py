"""Resource budgets for bounded-memory streaming analysis.

At collector scale a capture is effectively unbounded, yet the
per-connection accumulators the analyzer builds (packet timelines,
flights, ack-shift queues, ``TimeRangeSet``\\ s) grow with the trace.
This module makes that growth a managed quantity: a
:class:`ResourceBudget` declares limits, a :class:`StateLedger` meters
every packet the streaming ingest admits against them, and when a
watermark trips a deterministic eviction policy reclaims state —
**gracefully**, with a typed degradation trail instead of an OOM kill.

Two eviction policies, applied in the budget's configured order:

* ``finalize-idle`` — the victim connection's report is rendered
  *early* from the partial state accumulated so far (the refactor that
  lets any connection be finalized at any time), then its state is
  released.  Victims are chosen coldest-first: flows that have already
  closed (waiting out their linger) before still-open flows, oldest
  last-activity first.
* ``drop-coldest`` — the victim's state is discarded without a report.
  With the default policy order this is the fallback for state that
  cannot be finalized away: when everything cold is already gone and
  the budget is still exceeded, the in-flight connection itself is
  capped (further packets shed, ``complete=False``).

Everything here is deterministic: decisions depend only on capture
timestamps and the admission order, never on wall clocks or host
memory probes, so a budgeted run is exactly reproducible — and
byte-identical to an unbudgeted run whenever the trace fits the
budget (the invariant the chaos ``analysis.memory-pressure`` fault
class and the hypothesis identity suite enforce).

Degradation is observable at every layer: benign
``analysis-state-evicted`` / ``analysis-connection-finalized-early`` /
``analysis-degraded`` issues in :class:`~repro.core.health.TraceHealth`,
a per-report :class:`DegradationSummary`, ``analysis.live_connections``
/ ``analysis.state_bytes`` gauges, an ``analysis.evictions`` counter
and an ``analysis.eviction`` span per reclaim round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.health import STAGE_ANALYSIS, TraceHealth
from repro.obs import get_obs
from repro.wire.tcpw import FIN, RST

#: Eviction policies, in the vocabulary of the budget's ``policies``
#: tuple.  ``finalize-idle`` renders the victim's report early from
#: partial state; ``drop-coldest`` discards the victim without one.
POLICY_FINALIZE_IDLE = "finalize-idle"
POLICY_DROP_COLDEST = "drop-coldest"
POLICIES = (POLICY_FINALIZE_IDLE, POLICY_DROP_COLDEST)

#: Modeled bookkeeping cost of one tracked packet beyond its payload
#: (the ``TracePacket`` object, its slot in the connection's list, and
#: its share of downstream accumulators).  A model, not a measurement:
#: the ledger must be deterministic across interpreters, so it charges
#: this constant rather than probing the allocator.
PACKET_STATE_BYTES = 160

# The ledger's own connection key: identical to
# repro.analysis.profile.FlowKey, re-declared locally so profile can
# import this module without a cycle.
_FlowKey = tuple[str, int, str, int]

#: Health issue kind each global eviction policy records (a
#: ``*_ISSUE_KINDS`` mapping so RL004's registry scan sees the kinds).
_EVICTION_ISSUE_KINDS = {
    POLICY_FINALIZE_IDLE: "analysis-connection-finalized-early",
    POLICY_DROP_COLDEST: "analysis-state-evicted",
}


@dataclass(frozen=True)
class ResourceBudget:
    """Limits on the state a streaming analysis may hold live.

    Every limit is optional (``None`` = unlimited); a budget with no
    limit set is accepted but inert (``bounded`` is ``False``).  The
    watermarks scale the *global* limits: state is reclaimed once
    usage reaches ``high_watermark`` of a limit and eviction continues
    until usage is at or below ``low_watermark`` of it, so peak usage
    stays below the configured ceiling rather than oscillating at it.

    ``policies`` orders the eviction policies; the first entry handles
    every eviction, with :data:`POLICY_DROP_COLDEST` semantics as the
    terminal fallback for state no policy can release (see the module
    docstring).
    """

    max_live_connections: int | None = None
    max_connection_packets: int | None = None
    max_connection_bytes: int | None = None
    max_state_bytes: int | None = None
    high_watermark: float = 0.9
    low_watermark: float = 0.7
    policies: tuple[str, ...] = POLICIES

    def __post_init__(self) -> None:
        for name in (
            "max_live_connections", "max_connection_packets",
            "max_connection_bytes", "max_state_bytes",
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value!r}")
        if not 0.0 < self.low_watermark <= self.high_watermark <= 1.0:
            raise ValueError(
                "watermarks must satisfy 0 < low <= high <= 1, got "
                f"low={self.low_watermark!r} high={self.high_watermark!r}"
            )
        if not self.policies:
            raise ValueError("policies must name at least one policy")
        unknown = [p for p in self.policies if p not in POLICIES]
        if unknown:
            raise ValueError(f"unknown eviction policies: {unknown}")

    @property
    def bounded(self) -> bool:
        """True when at least one limit is actually set."""
        return any(
            limit is not None
            for limit in (
                self.max_live_connections, self.max_connection_packets,
                self.max_connection_bytes, self.max_state_bytes,
            )
        )

    def describe(self) -> str:
        """Compact one-line form for logs and CLI stderr."""
        parts = []
        if self.max_live_connections is not None:
            parts.append(f"live<={self.max_live_connections}")
        if self.max_connection_packets is not None:
            parts.append(f"conn-packets<={self.max_connection_packets}")
        if self.max_connection_bytes is not None:
            parts.append(f"conn-bytes<={self.max_connection_bytes}")
        if self.max_state_bytes is not None:
            parts.append(f"state<={self.max_state_bytes}B")
        limits = ", ".join(parts) if parts else "unbounded"
        return (
            f"budget({limits}; watermarks {self.high_watermark:g}"
            f"/{self.low_watermark:g}; policy {'>'.join(self.policies)})"
        )


@dataclass
class EvictionRecord:
    """One reclaim action: what was shed, when, why and how much."""

    kind: str  # "finalized-early" | "dropped" | "capped"
    key: _FlowKey
    policy: str  # the policy (or "connection-cap") that acted
    timestamp_us: int  # capture time of the triggering packet
    reason: str
    state_bytes_reclaimed: int = 0  # live state released by the action
    packets_shed: int = 0  # packets refused after a connection cap
    bytes_shed: int = 0  # payload bytes those packets carried

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "key": list(self.key),
            "policy": self.policy,
            "timestamp_us": self.timestamp_us,
            "reason": self.reason,
            "state_bytes_reclaimed": self.state_bytes_reclaimed,
            "packets_shed": self.packets_shed,
            "bytes_shed": self.bytes_shed,
        }


@dataclass
class DegradationSummary:
    """Per-report account of everything a budget shed, and why.

    Attached to :class:`~repro.analysis.tdat.TdatReport.degradation`
    whenever a budget was in force — even when nothing degraded, so
    callers can distinguish "ran unbudgeted" from "ran budgeted and
    fit" (``degraded`` is ``False`` in the latter case).
    """

    budget: ResourceBudget
    evictions: list[EvictionRecord] = field(default_factory=list)
    watermark_trips: int = 0
    peak_live_connections: int = 0
    peak_state_bytes: int = 0

    @property
    def degraded(self) -> bool:
        """True when any state was actually shed."""
        return bool(self.evictions)

    @property
    def finalized_early(self) -> int:
        return sum(1 for e in self.evictions if e.kind == "finalized-early")

    @property
    def dropped(self) -> int:
        return sum(1 for e in self.evictions if e.kind == "dropped")

    @property
    def capped(self) -> int:
        return sum(1 for e in self.evictions if e.kind == "capped")

    @property
    def packets_shed(self) -> int:
        return sum(e.packets_shed for e in self.evictions)

    @property
    def bytes_shed(self) -> int:
        return sum(e.bytes_shed for e in self.evictions)

    def to_dict(self) -> dict:
        """JSON-friendly form (used by ``tdat analyze --json``)."""
        return {
            "degraded": self.degraded,
            "budget": self.budget.describe(),
            "watermark_trips": self.watermark_trips,
            "peak_live_connections": self.peak_live_connections,
            "peak_state_bytes": self.peak_state_bytes,
            "finalized_early": self.finalized_early,
            "dropped": self.dropped,
            "capped": self.capped,
            "packets_shed": self.packets_shed,
            "bytes_shed": self.bytes_shed,
            "evictions": [e.to_dict() for e in self.evictions],
        }

    def summary(self) -> str:
        """Human-readable one-liner for CLI stderr."""
        if not self.degraded:
            return (
                f"budget: fit ({self.peak_live_connections} peak live "
                f"connections, {self.peak_state_bytes} peak state bytes)"
            )
        return (
            f"budget: degraded — {self.finalized_early} finalized early, "
            f"{self.dropped} dropped, {self.capped} capped "
            f"({self.packets_shed} packets / {self.bytes_shed} bytes shed; "
            f"peak {self.peak_live_connections} live connections, "
            f"{self.peak_state_bytes} state bytes)"
        )


@dataclass
class _FlowCharge:
    """The ledger's per-connection meter."""

    state_bytes: int = 0
    packets: int = 0
    capped: bool = False
    cap_reason: str = ""
    record: EvictionRecord | None = None  # created on first shed packet


class StateLedger:
    """Meters streaming-ingest state against a :class:`ResourceBudget`.

    One ledger serves one analysis run.  The streaming ingest
    (:func:`~repro.analysis.profile.iter_connections`) consults it for
    every decoded packet (:meth:`admit`), asks it for eviction
    decisions after every admission (:meth:`plan_evictions`), releases
    state when flows finalize normally (:meth:`discharge`) and closes
    it out at end of trace (:meth:`finish`).  All decisions are pure
    functions of the packet stream, so budgeted runs are exactly
    reproducible.
    """

    def __init__(
        self, budget: ResourceBudget, health: TraceHealth | None = None
    ) -> None:
        self.budget = budget
        self.health = health if health is not None else TraceHealth()
        self.summary = DegradationSummary(budget=budget)
        self.state_bytes = 0
        self._flows: dict[_FlowKey, _FlowCharge] = {}
        self._last_ts_us = 0
        # Obs ground rule: resolve the ambient context once per
        # operation (one ledger = one analysis run), not per packet.
        self._obs = get_obs()

    @property
    def live_connections(self) -> int:
        return len(self._flows)

    # ------------------------------------------------------------------
    # Admission: per-packet metering and per-connection caps
    # ------------------------------------------------------------------
    def admit(
        self, key: _FlowKey, payload_len: int, flags: int, timestamp_us: int
    ) -> bool:
        """Charge one packet; ``False`` means the ingest must shed it.

        FIN/RST segments are always admitted — a capped connection must
        still be able to close, or it would pin its residual state until
        end of trace.  Data shed after a cap is aggregated into the
        connection's single :class:`EvictionRecord`, not recorded
        per-packet.
        """
        self._last_ts_us = timestamp_us
        charge = self._flows.get(key)
        if charge is None:
            charge = _FlowCharge()
            self._flows[key] = charge
        cost = PACKET_STATE_BYTES + payload_len
        is_close = bool(flags & (FIN | RST))
        if not charge.capped and not is_close:
            budget = self.budget
            if (
                budget.max_connection_packets is not None
                and charge.packets + 1 > budget.max_connection_packets
            ):
                charge.capped = True
                charge.cap_reason = (
                    f"connection packet cap "
                    f"({budget.max_connection_packets}) reached"
                )
            elif (
                budget.max_connection_bytes is not None
                and charge.state_bytes + cost > budget.max_connection_bytes
            ):
                charge.capped = True
                charge.cap_reason = (
                    f"connection state cap "
                    f"({budget.max_connection_bytes} bytes) reached"
                )
        if charge.capped and not is_close:
            self._shed(key, charge, payload_len, timestamp_us)
            return False
        charge.packets += 1
        charge.state_bytes += cost
        self.state_bytes += cost
        if self.live_connections > self.summary.peak_live_connections:
            self.summary.peak_live_connections = self.live_connections
        if self.state_bytes > self.summary.peak_state_bytes:
            self.summary.peak_state_bytes = self.state_bytes
        if self._obs.enabled:
            metrics = self._obs.metrics
            metrics.gauge("analysis.live_connections").set(
                self.live_connections
            )
            metrics.gauge("analysis.state_bytes").set(self.state_bytes)
        return True

    def _shed(
        self,
        key: _FlowKey,
        charge: _FlowCharge,
        payload_len: int,
        timestamp_us: int,
    ) -> None:
        """Account one packet refused by a capped connection."""
        if charge.record is None:
            charge.record = EvictionRecord(
                kind="capped",
                key=key,
                policy="connection-cap",
                timestamp_us=timestamp_us,
                reason=charge.cap_reason,
            )
            self.summary.evictions.append(charge.record)
            self.health.record(
                STAGE_ANALYSIS, "analysis-state-evicted",
                timestamp_us=timestamp_us,
                detail=f"{key}: {charge.cap_reason}; shedding further data",
                benign=True,
            )
            if self._obs.enabled:
                self._obs.metrics.counter("analysis.evictions").inc()
        charge.record.packets_shed += 1
        charge.record.bytes_shed += payload_len

    # ------------------------------------------------------------------
    # Global watermarks: eviction planning
    # ------------------------------------------------------------------
    def _over_high(self) -> bool:
        budget = self.budget
        if (
            budget.max_live_connections is not None
            and self.live_connections
            >= budget.high_watermark * budget.max_live_connections
        ):
            return True
        return (
            budget.max_state_bytes is not None
            and self.state_bytes
            >= budget.high_watermark * budget.max_state_bytes
        )

    def _over_low(self) -> bool:
        budget = self.budget
        if (
            budget.max_live_connections is not None
            and self.live_connections
            > budget.low_watermark * budget.max_live_connections
        ):
            return True
        return (
            budget.max_state_bytes is not None
            and self.state_bytes > budget.low_watermark * budget.max_state_bytes
        )

    def plan_evictions(
        self, open_flows: dict, current_key: _FlowKey, now_us: int
    ) -> list[tuple[_FlowKey, str]]:
        """Decide what to reclaim after an admission; empty when under.

        ``open_flows`` is the ingest's live-flow table (read-only here:
        only ``closable`` and ``last_ts_us`` are consulted); the caller
        executes the returned ``(key, policy)`` actions — finalizing or
        discarding each victim — while this method releases the
        ledger-side state and records the degradation trail.  The
        connection that just received a packet (``current_key``) is
        never a victim: evicting it would only resurrect it on its next
        packet.  Victim order is deterministic — closed-but-lingering
        flows first, then coldest ``last_ts_us``, key as tiebreak.
        """
        if not self._over_high():
            return []
        budget = self.budget
        reasons = []
        if (
            budget.max_live_connections is not None
            and self.live_connections
            >= budget.high_watermark * budget.max_live_connections
        ):
            reasons.append(
                f"live connections {self.live_connections} reached "
                f"{budget.high_watermark:g}*{budget.max_live_connections}"
            )
        if (
            budget.max_state_bytes is not None
            and self.state_bytes
            >= budget.high_watermark * budget.max_state_bytes
        ):
            reasons.append(
                f"state {self.state_bytes}B reached "
                f"{budget.high_watermark:g}*{budget.max_state_bytes}B"
            )
        reason = "high watermark: " + "; ".join(reasons)
        self.summary.watermark_trips += 1
        policy = budget.policies[0]
        kind = (
            "finalized-early" if policy == POLICY_FINALIZE_IDLE else "dropped"
        )
        issue_kind = _EVICTION_ISSUE_KINDS[policy]
        candidates = sorted(
            (k for k in open_flows if k != current_key),
            key=lambda k: (
                not open_flows[k].closable, open_flows[k].last_ts_us, k,
            ),
        )
        actions: list[tuple[_FlowKey, str]] = []
        with self._obs.tracer.span(
            "analysis.eviction", cat="analysis", args={"reason": reason}
        ):
            for victim in candidates:
                if not self._over_low():
                    break
                charge = self._flows.pop(victim, None)
                reclaimed = charge.state_bytes if charge else 0
                self.state_bytes -= reclaimed
                self.summary.evictions.append(EvictionRecord(
                    kind=kind,
                    key=victim,
                    policy=policy,
                    timestamp_us=now_us,
                    reason=reason,
                    state_bytes_reclaimed=reclaimed,
                ))
                self.health.record(
                    STAGE_ANALYSIS, issue_kind,
                    timestamp_us=now_us,
                    detail=f"{victim}: {reason}",
                    benign=True,
                )
                actions.append((victim, policy))
            if self._over_low():
                # Everything cold is gone and the budget is still
                # exceeded: the in-flight connection dominates.  Cap it
                # (terminal drop-coldest fallback) so its next data
                # packet starts shedding instead of growing state.
                charge = self._flows.get(current_key)
                if charge is not None and not charge.capped:
                    charge.capped = True
                    charge.cap_reason = f"memory pressure: {reason}"
            if self._obs.enabled:
                metrics = self._obs.metrics
                metrics.counter("analysis.evictions").inc(len(actions))
                metrics.gauge("analysis.live_connections").set(
                    self.live_connections
                )
                metrics.gauge("analysis.state_bytes").set(self.state_bytes)
        return actions

    # ------------------------------------------------------------------
    # Normal release and end of trace
    # ------------------------------------------------------------------
    def discharge(self, key: _FlowKey) -> None:
        """Release a flow that finalized normally (close or EOF)."""
        charge = self._flows.pop(key, None)
        if charge is not None:
            self.state_bytes -= charge.state_bytes
            if self._obs.enabled:
                metrics = self._obs.metrics
                metrics.gauge("analysis.live_connections").set(
                    self.live_connections
                )
                metrics.gauge("analysis.state_bytes").set(self.state_bytes)

    def finish(self) -> None:
        """Close out the run: record the single degradation marker."""
        if self.summary.degraded:
            self.health.record(
                STAGE_ANALYSIS, "analysis-degraded",
                timestamp_us=self._last_ts_us,
                detail=self.summary.summary(),
                benign=True,
            )
