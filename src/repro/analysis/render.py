"""Report rendering, split from connection-state accumulation.

Historically the only consumer of a :class:`~repro.analysis.tdat.TdatReport`
was the CLI, which flattened it to JSON inline.  The analysis service
(:mod:`repro.serve`) changes the shape of the problem: connections
arrive *incrementally* (``iter_analyze_pcap`` yields each one as its
flow closes), many concurrent readers ask for the *current* report
while ingest is still running, and repeated queries should be answered
from cache with a ``304 Not Modified`` instead of re-rendering.

This module is that split.  :func:`analysis_to_dict` and
:func:`report_payload` are the one canonical JSON flattening (the CLI's
``--json`` output and the service's ``/report`` body are the same
bytes), and :class:`ReportRenderer` is the incremental accumulator: it
absorbs analyses one at a time, keeps them in capture order, and
renders versioned snapshots whose **strong ETag** is a deterministic
digest of the rendered state — two runs over the same bytes produce
the same ETags, and an unchanged state re-serves the cached body.

Everything here is deterministic (this module lives inside the
``repro.analysis`` determinism boundary): digests are pure functions
of the rendered payload, never of wall clocks or object identities.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable

from repro.analysis.budget import DegradationSummary
from repro.analysis.tdat import ConnectionAnalysis, TdatReport
from repro.core.health import TraceHealth


def analysis_to_dict(analysis: ConnectionAnalysis) -> dict:
    """Flatten one connection's analysis for JSON output.

    The single source of the JSON shape shared by ``tdat analyze
    --json`` and the service's ``/sessions/<id>/report`` endpoint.
    """
    profile = analysis.connection.profile
    src, sport, dst, dport = analysis.connection.key
    rs, rr, rn = analysis.factors.group_vector
    return {
        "connection": f"{src}:{sport}<->{dst}:{dport}",
        "sender": analysis.connection.sender_ip,
        "complete": analysis.complete,
        "confidence": analysis.confidence,
        "profile": {
            "mss": profile.mss,
            "rtt_us": profile.rtt_us,
            "d1_us": profile.d1_us,
            "d2_us": profile.d2_us,
            "max_advertised_window": profile.max_advertised_window,
            "data_packets": profile.total_data_packets,
            "data_bytes": profile.total_data_bytes,
            "duration_us": profile.duration_us,
        },
        "retransmissions": len(analysis.labeling.retransmissions()),
        "factors": {
            "ratios": analysis.factors.ratios,
            "groups": {"sender": rs, "receiver": rr, "network": rn},
            "major": analysis.factors.major_factors(),
        },
        "detectors": {
            "timer_gaps": {
                "detected": analysis.timer_gaps.detected,
                "timer_us": analysis.timer_gaps.timer_us,
                "induced_delay_us": analysis.timer_gaps.induced_delay_us,
            },
            "consecutive_losses": {
                "detected": analysis.consecutive_losses.detected,
                "episodes": analysis.consecutive_losses.episodes,
                "worst_run": analysis.consecutive_losses.worst_run,
                "induced_delay_us": analysis.consecutive_losses.induced_delay_us,
            },
            "zero_ack_bug": {
                "detected": analysis.zero_ack_bug.detected,
                "occurrences": analysis.zero_ack_bug.occurrences,
            },
            "capture_voids": {
                "detected": analysis.capture_voids.detected,
                "phantom_bytes": analysis.capture_voids.phantom_bytes,
                "excluded_us": analysis.capture_voids.excluded_us,
            },
        },
    }


def report_payload(report: TdatReport) -> dict:
    """The canonical JSON payload of a whole report.

    Exactly what ``tdat analyze --json`` prints: ``connections`` in
    capture order, the ``health`` ledger, and ``degradation`` whenever
    a budget was in force.
    """
    payload = {
        "connections": [analysis_to_dict(a) for a in report],
        "health": report.health.to_dict(),
    }
    if report.degradation is not None:
        payload["degradation"] = report.degradation.to_dict()
    return payload


def payload_digest(payload: dict) -> str:
    """Deterministic strong digest of a rendered payload."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


def _encode_body(payload: dict) -> bytes:
    """One rendering of a payload: stable key order, 2-space indent."""
    return (
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")


class ReportRenderer:
    """Incremental report accumulation + versioned, digest-tagged views.

    One renderer serves one analysis run.  The producer (a
    :mod:`repro.serve` session thread, or any ``iter_analyze_pcap``
    consumer) calls :meth:`add` per finished connection and
    :meth:`finish` at end of trace; readers call :meth:`render_report`
    / :meth:`render_health` at any time and get ``(etag, body)``
    snapshots.  Rendering is cached: while the observable state — the
    accumulated analyses, the health ledger's counters, the finished
    flag — is unchanged, repeated calls return the identical cached
    body, so a flood of concurrent readers costs one rendering, and an
    ``If-None-Match`` revalidation can be answered with ``304``.

    The caller owns synchronization: a service session wraps every
    ``add``/``render_*`` in its own lock so snapshots are internally
    consistent.  ETags are strong — a deterministic SHA-256 digest of
    the canonical payload — so two sessions fed the same bytes emit
    the same tags.
    """

    def __init__(
        self,
        health: TraceHealth | None = None,
        degradation: DegradationSummary | None = None,
    ) -> None:
        self.health = health if health is not None else TraceHealth()
        self.degradation = degradation
        self.finished = False
        self._analyses: list[ConnectionAnalysis] = []
        self._report_cache: tuple[tuple, str, bytes] | None = None
        self._health_cache: tuple[tuple, str, bytes] | None = None

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def add(self, analysis: ConnectionAnalysis) -> None:
        """Absorb one finished connection's analysis."""
        self._analyses.append(analysis)

    def extend(self, analyses: Iterable[ConnectionAnalysis]) -> None:
        for analysis in analyses:
            self.add(analysis)

    def finish(self) -> None:
        """Mark end of trace: the next snapshot is the final report."""
        self.finished = True

    # ------------------------------------------------------------------
    # State versioning (cheap cache key; not the ETag itself)
    # ------------------------------------------------------------------
    def _version(self) -> tuple:
        """A cheap fingerprint of everything the payload renders.

        Distinct versions may still render identical payloads (the tag
        is recomputed per rendering); an *unchanged* version is what
        lets a snapshot be re-served from cache without re-rendering.
        """
        health = self.health
        return (
            len(self._analyses),
            self.finished,
            len(health.issues),
            sum(health.suppressed.values()),
            health.suppressed_bytes_lost,
            health.records_read,
            health.frames_decoded,
            (
                len(self.degradation.evictions),
                self.degradation.watermark_trips,
                self.degradation.peak_live_connections,
                self.degradation.peak_state_bytes,
            )
            if self.degradation is not None
            else None,
        )

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def connections(self) -> list[ConnectionAnalysis]:
        """The accumulated analyses in capture (first-packet) order.

        Streaming ingest yields flows in *close* order; reports must
        not depend on the execution mode, so snapshots are re-sorted
        the same way :func:`~repro.analysis.tdat.analyze_pcap` restores
        capture order.
        """
        return sorted(
            self._analyses, key=lambda a: a.connection.packets[0].index
        )

    def report_dict(self) -> dict:
        """The current report payload (same shape as ``tdat --json``)."""
        payload = {
            "connections": [
                analysis_to_dict(a) for a in self.connections()
            ],
            "health": self.health.to_dict(),
        }
        if self.degradation is not None:
            payload["degradation"] = self.degradation.to_dict()
        return payload

    def render_report(self) -> tuple[str, bytes]:
        """``(etag, body)`` of the current report, cached by version."""
        version = self._version()
        cached = self._report_cache
        if cached is not None and cached[0] == version:
            return cached[1], cached[2]
        payload = self.report_dict()
        etag = f'"{payload_digest(payload)}"'
        body = _encode_body(payload)
        self._report_cache = (version, etag, body)
        return etag, body

    def render_health(self) -> tuple[str, bytes]:
        """``(etag, body)`` of the health ledger, cached by version."""
        version = self._version()
        cached = self._health_cache
        if cached is not None and cached[0] == version:
            return cached[1], cached[2]
        payload = self.health.to_dict()
        etag = f'"{payload_digest(payload)}"'
        body = _encode_body(payload)
        self._health_cache = (version, etag, body)
        return etag, body


__all__ = [
    "ReportRenderer",
    "analysis_to_dict",
    "payload_digest",
    "report_payload",
]
