"""T-DAT analysis pipeline: profiles, series, factors, detectors."""

from repro.analysis.ackshift import AckShiftStats, shift_acks
from repro.analysis.budget import (
    POLICIES,
    POLICY_DROP_COLDEST,
    POLICY_FINALIZE_IDLE,
    DegradationSummary,
    EvictionRecord,
    ResourceBudget,
    StateLedger,
)
from repro.analysis.applications import (
    FlavorReport,
    FlowClockReport,
    extract_flow_clock,
    infer_tcp_flavor,
)
from repro.analysis.detectors import (
    ConsecutiveLossReport,
    PeerGroupBlockingReport,
    TimerGapReport,
    ZeroAckBugReport,
    detect_consecutive_losses,
    detect_long_keepalive_pauses,
    detect_peer_group_blocking,
    detect_timer_gaps,
    detect_zero_ack_bug,
)
from repro.analysis.factors import FACTORS, GROUPS, FactorReport, classify
from repro.analysis.flights import flight_gap_threshold_us, group_flights
from repro.analysis.knee import l_method_knee, plateau_value
from repro.analysis.labeling import (
    KIND_DOWNSTREAM,
    KIND_NEW,
    KIND_REORDERING,
    KIND_UPSTREAM,
    LabelingResult,
    PacketLabel,
    label_connection,
)
from repro.analysis.mct import (
    TableTransfer,
    minimum_collection_time,
    transfers_from_mrt_records,
)
from repro.analysis.profile import (
    Connection,
    ConnectionProfile,
    Trace,
    TracePacket,
    canonical_key,
    infer_sniffer_location,
)
from repro.analysis.series import (
    SERIES_NAMES,
    ConnectionSeries,
    SeriesConfig,
    StepFunction,
    generate_series,
)
from repro.analysis.tdat import (
    ConnectionAnalysis,
    TdatReport,
    analyze_connection,
)
from repro.analysis.voids import CaptureVoidReport, find_capture_voids
from repro.core.health import IngestError, IngestIssue, TraceHealth


def __getattr__(name: str):
    # Deprecated re-export: the supported entry point is the
    # repro.api facade (engine code imports repro.analysis.tdat).
    if name == "analyze_pcap":
        from repro.analysis.tdat import analyze_pcap
        from repro.core.deprecation import warn_deprecated

        warn_deprecated(
            "importing analyze_pcap from repro.analysis is deprecated; "
            "use repro.api.Pipeline().analyze(...) or import it from "
            "repro.analysis.tdat"
        )
        return analyze_pcap
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "IngestError",
    "IngestIssue",
    "TraceHealth",
    "AckShiftStats",
    "Connection",
    "ConnectionAnalysis",
    "ConnectionProfile",
    "ConnectionSeries",
    "ConsecutiveLossReport",
    "FACTORS",
    "FactorReport",
    "FlavorReport",
    "FlowClockReport",
    "GROUPS",
    "KIND_DOWNSTREAM",
    "KIND_NEW",
    "KIND_REORDERING",
    "KIND_UPSTREAM",
    "LabelingResult",
    "PacketLabel",
    "PeerGroupBlockingReport",
    "SERIES_NAMES",
    "SeriesConfig",
    "StepFunction",
    "TableTransfer",
    "TdatReport",
    "TimerGapReport",
    "Trace",
    "TracePacket",
    "ZeroAckBugReport",
    "CaptureVoidReport",
    "DegradationSummary",
    "EvictionRecord",
    "POLICIES",
    "POLICY_DROP_COLDEST",
    "POLICY_FINALIZE_IDLE",
    "ResourceBudget",
    "StateLedger",
    "analyze_connection",
    "analyze_pcap",
    "canonical_key",
    "find_capture_voids",
    "classify",
    "detect_consecutive_losses",
    "detect_long_keepalive_pauses",
    "detect_peer_group_blocking",
    "detect_timer_gaps",
    "detect_zero_ack_bug",
    "extract_flow_clock",
    "flight_gap_threshold_us",
    "infer_tcp_flavor",
    "generate_series",
    "group_flights",
    "infer_sniffer_location",
    "l_method_knee",
    "label_connection",
    "minimum_collection_time",
    "plateau_value",
    "shift_acks",
    "transfers_from_mrt_records",
]
