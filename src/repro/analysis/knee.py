"""Knee detection with the L-method (Salvador & Chan [27]).

The timer-gap detector (paper section IV-B, Figure 17) sorts the
sender-idle gap lengths and looks for the knee of the resulting curve:
the plateau before the knee is the repeating implementation timer, the
tail after it is everything else.  The L-method fits two straight lines
to the curve and picks the split minimizing the weighted total RMSE.
"""

from __future__ import annotations

import math


def _line_fit_rmse(xs: list[float], ys: list[float]) -> float:
    """RMSE of the least-squares line through the points."""
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        return 0.0
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / sxx
    intercept = mean_y - slope * mean_x
    sse = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    return math.sqrt(sse / n)


def l_method_knee(values: list[float]) -> int | None:
    """Index of the knee of a sorted curve, or None if degenerate.

    ``values`` are the y-coordinates of a monotone curve sampled at
    x = 0, 1, 2, ...; the returned index is the last point of the first
    (left) segment.
    """
    n = len(values)
    if n < 4:
        return None
    xs = list(range(n))
    best_index = None
    best_error = math.inf
    for c in range(1, n - 2):
        left_rmse = _line_fit_rmse(xs[: c + 1], values[: c + 1])
        right_rmse = _line_fit_rmse(xs[c + 1 :], values[c + 1 :])
        weight_left = (c + 1) / n
        total = weight_left * left_rmse + (1 - weight_left) * right_rmse
        if total < best_error:
            best_error = total
            best_index = c
    return best_index


def plateau_value(
    sorted_values: list[float], knee_index: int | None
) -> float | None:
    """The representative (median) value of the pre-knee plateau."""
    if knee_index is None or knee_index < 0:
        return None
    plateau = sorted_values[: knee_index + 1]
    if not plateau:
        return None
    mid = len(plateau) // 2
    if len(plateau) % 2:
        return plateau[mid]
    return (plateau[mid - 1] + plateau[mid]) / 2
