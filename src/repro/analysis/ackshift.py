"""Sniffer-location accommodation: shift ACK flights forward by d2_min.

The paper (section III-B1) rewrites the receiver-side capture into an
approximate sender-side trace.  For every *flight* of ACKs the per-ACK
``d2`` (ACK seen at the tap → released data seen at the tap) is
estimated and the whole flight shifted forward by the flight's minimum
d2, which is the most precise of its members: the ACKs that explicitly
free window space are answered within one sender turnaround, whereas
later ACKs in the flight could have arrived anywhere in a wide interval
without changing the packet arrivals.

When the capture is already sender-side (d2 ≈ 0) the step is a safe
no-op, as the paper requires.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.analysis.flights import flight_gap_threshold_us, group_flights
from repro.analysis.profile import Connection


@dataclass
class AckShiftStats:
    """What the shift step did, for reporting and tests."""

    flights: int = 0
    shifted_flights: int = 0
    total_shift_us: int = 0
    max_shift_us: int = 0


def shift_acks(
    connection: Connection,
    gap_threshold_us: int | None = None,
    max_reasonable_shift_us: int | None = None,
) -> AckShiftStats:
    """Annotate the connection's ACKs with shifted timestamps.

    Modifies ``shifted_timestamp_us`` on the ACK packets in place and
    returns summary statistics.  Data packets keep their timestamps.
    """
    stats = AckShiftStats()
    profile = connection.profile
    if profile is None:
        return stats
    if gap_threshold_us is None:
        gap_threshold_us = flight_gap_threshold_us(profile.rtt_us)
    if max_reasonable_shift_us is None:
        if profile.d2_us > 0:
            # The handshake gave a trustworthy tap->sender->tap delay;
            # anything much larger is application think time leaking
            # into the estimate (app-paced flows release data on their
            # own schedule, not the ACKs').
            max_reasonable_shift_us = int(profile.d2_us * 1.5) + 10_000
        else:
            max_reasonable_shift_us = profile.rtt_us + 100_000

    data = connection.data_packets()
    data_times = [p.timestamp_us for p in data]
    data_ends = [connection.relative_seq(p) + p.payload_len for p in data]
    acks = connection.ack_packets()

    # Right edge (ack + window) in effect *before* each ACK: the data a
    # given ACK releases is the first segment past that old edge, which
    # is the [16]-style estimate that survives pipelined flows.
    edges_before: list[int] = []
    edge = 0
    for ack in acks:
        edges_before.append(edge)
        edge = max(edge, connection.relative_ack(ack) + ack.window)

    fallback = profile.d2_us if 0 < profile.d2_us <= max_reasonable_shift_us else None

    index = 0
    for flight in group_flights(acks, gap_threshold_us):
        stats.flights += 1
        d2_values = []
        for ack in flight:
            old_edge = edges_before[index]
            index += 1
            released = _first_release(
                data_times, data_ends, ack.timestamp_us, old_edge
            )
            if released is not None:
                d2_values.append(released - ack.timestamp_us)
        d2_min = min((d for d in d2_values if d > 0), default=None)
        if d2_min is None or d2_min > max_reasonable_shift_us:
            d2_min = fallback
        if d2_min is None:
            continue
        shift = d2_min - 1  # keep ACKs strictly before the data they free
        if shift <= 0:
            continue
        for ack in flight:
            ack.shifted_timestamp_us = ack.timestamp_us + shift
        stats.shifted_flights += 1
        stats.total_shift_us += shift
        stats.max_shift_us = max(stats.max_shift_us, shift)
    return stats


def _first_release(
    data_times: list[int],
    data_ends: list[int],
    after_us: int,
    old_edge: int,
) -> int | None:
    """Arrival time of the first data past ``old_edge`` after ``after_us``."""
    start = bisect.bisect_right(data_times, after_us)
    for i in range(start, len(data_times)):
        if data_ends[i] > old_edge:
            return data_times[i]
    return None
