"""Capture-void detection: where the *sniffer* lost packets.

The paper (section II-A) notes that tcpdump itself sometimes drops
packets, leaving void periods that must be excluded from analysis —
otherwise sniffer artifacts masquerade as transfer pathologies.

A sniffer drop has a distinctive signature that distinguishes it from a
network loss: the receiver *acknowledges* bytes the capture never
contains.  A network loss leaves a hole that is eventually filled by a
visible retransmission; a capture hole is acked straight through and no
fill ever appears.

:func:`find_capture_voids` reports both the phantom byte ranges and the
corresponding void time windows, which callers subtract from the
analysis period (see ``analyze_connection(exclude_voids=True)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.profile import Connection
from repro.core.timeranges import TimeRangeSet


@dataclass
class CaptureVoidReport:
    """Output of the void detector for one connection."""

    detected: bool
    phantom_bytes: int = 0
    void_windows: TimeRangeSet = field(default_factory=TimeRangeSet)

    @property
    def excluded_us(self) -> int:
        """Total void time to exclude from the analysis period."""
        return self.void_windows.size()


def find_capture_voids(connection: Connection) -> CaptureVoidReport:
    """Detect periods where the tap demonstrably missed packets.

    Bytes that the receiver cumulatively acknowledged but that never
    appear in the capture (neither originally nor as retransmissions)
    are phantom bytes; the void window spans from the last packet seen
    before the phantom range to the first packet seen after it.
    """
    data = connection.data_packets()
    acks = connection.ack_packets()
    if not data or not acks:
        return CaptureVoidReport(detected=False)

    seen = TimeRangeSet()
    for packet in data:
        seq = connection.relative_seq(packet)
        seen.add_span(seq, seq + packet.payload_len)
    highest_ack = max(connection.relative_ack(a) for a in acks)
    acked = TimeRangeSet([(0, highest_ack)]) if highest_ack > 0 else TimeRangeSet()
    phantom = acked.difference(seen)
    if not phantom:
        return CaptureVoidReport(detected=False)

    # Map each phantom byte range to the time window it must have been
    # transmitted in: between the last seen packet below it and the
    # first seen packet above it.
    events = sorted(
        (connection.relative_seq(p), p.timestamp_us) for p in data
    )
    voids = TimeRangeSet()
    for hole in phantom:
        before = [t for seq, t in events if seq < hole.start]
        after = [t for seq, t in events if seq >= hole.end]
        start_us = max(before) if before else connection.packets[0].timestamp_us
        end_us = min(after) if after else connection.packets[-1].timestamp_us
        if end_us > start_us:
            voids.add_span(start_us, end_us)
    return CaptureVoidReport(
        detected=True,
        phantom_bytes=phantom.size(),
        void_windows=voids,
    )
