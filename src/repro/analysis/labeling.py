"""Packet labeling: retransmissions, out-of-sequence, reordering.

Implements the classification of Jaiswal et al. [17] as used by the
paper (section II-B2):

* a data packet whose bytes were **already seen** at the tap is a
  retransmission caused by loss *downstream* of the tap (between the
  sniffer and the receiver, or the ACK path) — the paper's
  receiver-local loss when the tap sits next to the receiver;
* a data packet that fills a **never-seen sequence gap** is
  out-of-sequence: either in-network *reordering* or a retransmission
  after *upstream* loss.  Reordering is filtered out when the packet
  arrives within a small window of the gap's creation and its IPv4
  identification predates the gap-creating packet (it was sent earlier);
* everything else advances the stream normally.

Every loss event also carries a *recovery range*: from the moment the
loss became visible to the moment an ACK finally covered the hole.
These ranges — not the drop instants — are what the paper's loss series
measure ("the whole retransmission period spent in recovering the
loss").
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.analysis.profile import Connection, TracePacket
from repro.core.timeranges import TimeRangeSet

# Out-of-order packets closer than this to the gap creation, with an
# earlier IP ID, are reordering rather than loss (Jaiswal threshold).
REORDER_WINDOW_US = 3_000

KIND_NEW = "new"
KIND_UPSTREAM = "upstream"
KIND_DOWNSTREAM = "downstream"
KIND_REORDERING = "reordering"


@dataclass
class PacketLabel:
    """The classification of one data packet."""

    packet: TracePacket
    kind: str
    trigger_time_us: int | None = None
    recovery_time_us: int | None = None

    @property
    def is_retransmission(self) -> bool:
        return self.kind in (KIND_UPSTREAM, KIND_DOWNSTREAM)


@dataclass
class LabelingResult:
    """All labels of one connection's data direction."""

    labels: list[PacketLabel]

    def retransmissions(self) -> list[PacketLabel]:
        return [l for l in self.labels if l.is_retransmission]

    def by_kind(self, kind: str) -> list[PacketLabel]:
        return [l for l in self.labels if l.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for l in self.labels if l.kind == kind)


def label_connection(connection: Connection) -> LabelingResult:
    """Classify every data packet of the connection's data direction."""
    data = connection.data_packets()
    acks = connection.ack_packets()
    ack_times = [a.timestamp_us for a in acks]
    ack_values = [connection.relative_ack(a) for a in acks]

    labels: list[PacketLabel] = []
    seen = TimeRangeSet()  # sequence-space coverage
    first_seen_time: dict[int, int] = {}  # seg rel_seq -> first time
    # Sequence holes and when they became visible (the arrival of the
    # first packet that jumped past them).
    gaps: list[list[int]] = []  # [start, end, created_time, creator_ip_id]
    max_seq_end = 0
    max_end_time = 0  # when max_seq_end was reached
    max_end_ip_id = 0

    for packet in data:
        seq = connection.relative_seq(packet)
        end = seq + packet.payload_len
        if end <= max_seq_end:
            already = seen.intersection(TimeRangeSet([(seq, end)])).size()
            if already >= packet.payload_len:
                kind = KIND_DOWNSTREAM
                trigger = first_seen_time.get(seq, packet.timestamp_us)
            else:
                gap = _find_gap(gaps, seq)
                gap_time = gap[2] if gap else max_end_time
                gap_ip_id = gap[3] if gap else max_end_ip_id
                arrived_quickly = (
                    packet.timestamp_us - gap_time <= REORDER_WINDOW_US
                )
                sent_before_gap = _ip_id_before(packet.ip_id, gap_ip_id)
                if arrived_quickly and sent_before_gap:
                    kind = KIND_REORDERING
                    trigger = None
                else:
                    kind = KIND_UPSTREAM
                    trigger = gap_time
                if gap:
                    _shrink_gap(gaps, gap, seq, end)
            recovery = None
            if kind in (KIND_UPSTREAM, KIND_DOWNSTREAM):
                recovery = _recovery_time(
                    ack_times, ack_values, packet.timestamp_us, seq
                )
            labels.append(
                PacketLabel(
                    packet=packet,
                    kind=kind,
                    trigger_time_us=trigger,
                    recovery_time_us=recovery,
                )
            )
        else:
            labels.append(PacketLabel(packet=packet, kind=KIND_NEW))
            if seq > max_seq_end:
                gaps.append(
                    [max_seq_end, seq, packet.timestamp_us, packet.ip_id]
                )
            max_seq_end = end
            max_end_time = packet.timestamp_us
            max_end_ip_id = packet.ip_id
        seen.add_span(seq, end)
        first_seen_time.setdefault(seq, packet.timestamp_us)
    return LabelingResult(labels=labels)


def _find_gap(gaps: list[list[int]], seq: int) -> list[int] | None:
    for gap in gaps:
        if gap[0] <= seq < gap[1]:
            return gap
    return None


def _shrink_gap(
    gaps: list[list[int]], gap: list[int], fill_start: int, fill_end: int
) -> None:
    """Remove the filled part of a hole, splitting it if needed."""
    start, end, created, ip_id = gap
    gaps.remove(gap)
    if fill_start > start:
        gaps.append([start, fill_start, created, ip_id])
    if fill_end < end:
        gaps.append([fill_end, end, created, ip_id])


def _ip_id_before(candidate: int, reference: int) -> bool:
    """True if ``candidate`` precedes ``reference`` modulo 2^16."""
    return 0 < (reference - candidate) & 0xFFFF < 0x8000


def _recovery_time(
    ack_times: list[int], ack_values: list[int], after_us: int, seq: int
) -> int | None:
    """First ACK past ``seq`` observed after ``after_us``."""
    start = bisect.bisect_right(ack_times, after_us)
    for i in range(start, len(ack_times)):
        if ack_values[i] > seq:
            return ack_times[i]
    return None
