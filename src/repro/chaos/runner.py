"""The differential chaos verifier: chaos run vs clean run, per seed.

Each seed compiles (:func:`~repro.chaos.plan.draw_plan`) into one
:class:`~repro.chaos.plan.ChaosPlan` and executes a micro campaign —
small tables, a handful of transfers, checkpointing on — with the
plan's fault injected.  The verdict is differential, against a cached
clean run of the identical configuration:

* ``byte-identical`` — the campaign absorbed the fault (retry, stall
  kill + respawn, heartbeat noise) and its serialized records equal the
  clean run's, with no non-benign health issues;
* ``typed-recoverable`` — the fault surfaced as a *typed* interruption
  (:class:`~repro.workloads.checkpoint.CampaignInterrupted`, a
  simulated crash) and a subsequent resume from the checkpoint
  directory reproduced the clean run byte-for-byte;
* ``violation`` — anything else: silent divergence, an untyped
  exception, a failed resume, non-benign issues after recovery, or a
  leaked worker process;
* ``undefined`` — the armed fault never fired (a schedule bug), or a
  fault class no seed exercised.

The ``analysis.memory-pressure`` class runs against the analysis
pipeline instead of a campaign: an adversarial connection flood under
a :class:`~repro.analysis.budget.ResourceBudget`.  An ample budget
must leave the report byte-identical to the unbudgeted run
(``byte-identical``); a tight one must degrade *gracefully* — typed
benign issues, peak state inside the budget (``typed-recoverable``).

``python -m repro.chaos`` / ``tdat chaos`` sweep a contiguous seed
range (covering every fault class, since the class is
``seed % len(FAULT_CLASSES)``) and report the per-fault-class outcome
matrix; any ``violation`` or ``undefined`` cell fails the sweep.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import json
import multiprocessing
import tempfile
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Callable

from repro.chaos.fsfaults import FaultyCheckpointFs, SimulatedCrash
from repro.chaos.plan import (
    FAULT_CLASSES,
    POINT_HEARTBEAT_LOSS,
    POINT_MEMORY_PRESSURE,
    POINT_WORKER_STALL,
    ChaosHooks,
    ChaosPlan,
    draw_plan,
)
from repro.core.health import STAGE_EXEC, TraceHealth
from repro.exec.pool import WorkPool
from repro.obs import get_obs
from repro.workloads.campaign import (
    CampaignConfig,
    CampaignResult,
    isp_quagga_config,
    run_campaign,
)
from repro.workloads.checkpoint import (
    CampaignInterrupted,
    CheckpointMismatch,
    GracefulShutdown,
    use_checkpoint_fs,
)

#: per-seed verdicts, in increasing severity (matrix cells aggregate
#: to the worst outcome a fault class produced).
OUTCOME_IDENTICAL = "byte-identical"
OUTCOME_TYPED = "typed-recoverable"
OUTCOME_UNDEFINED = "undefined"
OUTCOME_VIOLATION = "violation"

_SEVERITY = {
    OUTCOME_IDENTICAL: 0,
    OUTCOME_TYPED: 1,
    OUTCOME_UNDEFINED: 2,
    OUTCOME_VIOLATION: 3,
}

#: how long to wait for worker processes to be reaped before calling
#: them leaked.
_REAP_GRACE_S = 5.0


def chaos_config(transfers: int = 3) -> CampaignConfig:
    """The micro campaign every chaos plan runs against.

    Tiny tables keep one campaign in the tens of milliseconds, so a
    100-seed sweep stays interactive; everything else — mixture,
    checkpointing, pool supervision — is the production configuration.
    """
    return dataclasses.replace(
        isp_quagga_config(seed=11, transfers=transfers),
        table_sizes=(300,),
        zero_bug_episodes=0,
    )


def _result_dump(result: CampaignResult) -> str:
    """The byte-identity witness: records + totals, canonical JSON.

    Health is deliberately excluded — a chaos run legitimately carries
    benign bookkeeping (retries, resume and salvage markers) a clean
    run does not; non-benign issues are checked separately.
    """
    payload = result.to_dict()
    return json.dumps(
        {
            "records": payload["records"],
            "total_packets": payload["total_packets"],
            "total_bytes": payload["total_bytes"],
        },
        sort_keys=True,
    )


@lru_cache(maxsize=None)
def _baseline_dump(transfers: int) -> str:
    """The clean run every chaos run is diffed against (cached)."""
    return _result_dump(run_campaign(chaos_config(transfers), workers=1))


@dataclass
class ChaosCase:
    """One executed chaos plan and its differential verdict."""

    seed: int
    fault_class: str
    outcome: str
    description: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome in (OUTCOME_IDENTICAL, OUTCOME_TYPED)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "fault_class": self.fault_class,
            "outcome": self.outcome,
            "description": self.description,
            "detail": self.detail,
        }


@dataclass
class ChaosReport:
    """Every case of a sweep plus the per-fault-class outcome matrix."""

    cases: list[ChaosCase] = field(default_factory=list)

    def matrix(self) -> dict[str, str]:
        """fault class -> worst outcome observed (``undefined`` when no
        seed in the sweep exercised the class)."""
        cells: dict[str, str] = {}
        for fault_class in FAULT_CLASSES:
            outcomes = [
                case.outcome for case in self.cases
                if case.fault_class == fault_class
            ]
            cells[fault_class] = (
                max(outcomes, key=_SEVERITY.__getitem__)
                if outcomes else OUTCOME_UNDEFINED
            )
        return cells

    def counts(self) -> dict[str, dict[str, int]]:
        """fault class -> {outcome: case count}."""
        table: dict[str, dict[str, int]] = {
            fault_class: {} for fault_class in FAULT_CLASSES
        }
        for case in self.cases:
            cell = table[case.fault_class]
            cell[case.outcome] = cell.get(case.outcome, 0) + 1
        return table

    @property
    def violations(self) -> list[ChaosCase]:
        return [case for case in self.cases if not case.ok]

    @property
    def ok(self) -> bool:
        """True when every case passed and every fault class was
        exercised — sweeps under ``len(FAULT_CLASSES)`` seeds cannot
        pass, by design."""
        return not self.violations and all(
            cell in (OUTCOME_IDENTICAL, OUTCOME_TYPED)
            for cell in self.matrix().values()
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "cases": [case.to_dict() for case in self.cases],
            "matrix": self.matrix(),
            "counts": self.counts(),
        }

    def summary(self) -> str:
        matrix = self.matrix()
        width = max(len(name) for name in matrix)
        lines = [
            f"chaos: {len(self.cases)} plan(s), "
            f"{len(self.violations)} violation(s)"
        ]
        counts = self.counts()
        for fault_class, cell in matrix.items():
            ran = sum(counts[fault_class].values())
            lines.append(
                f"  {fault_class:<{width}}  {cell:<17} ({ran} plan(s))"
            )
        for case in self.violations:
            lines.append(
                f"  ! seed {case.seed} [{case.fault_class}] "
                f"{case.outcome}: {case.detail}"
            )
        lines.append("chaos: OK" if self.ok else "chaos: FAILED")
        return "\n".join(lines)


def _leaked_workers(before: frozenset[int]) -> list[int]:
    """PIDs of child processes that outlived the run (after a grace)."""
    deadline = time.monotonic() + _REAP_GRACE_S
    while True:
        leaked = sorted(
            child.pid for child in multiprocessing.active_children()
            if child.pid is not None and child.pid not in before
        )
        if not leaked or time.monotonic() >= deadline:
            return leaked
        time.sleep(0.05)


def _plan_pool(plan: ChaosPlan) -> WorkPool:
    """The pool a plan's campaign runs on.

    Filesystem faults run serial — journal writes happen in the parent
    either way, and one process keeps the sweep fast.  Pool faults need
    real workers: two of them, retries on (so a crashed or stalled
    attempt recovers), and tight liveness windows for the stall and
    heartbeat classes so detection fits in test time.
    """
    if not plan.parallel:
        return WorkPool(workers=1, max_retries=2, retry_backoff_s=0.0)
    liveness: dict = {}
    if plan.fault_class in (POINT_WORKER_STALL, POINT_HEARTBEAT_LOSS):
        liveness = {"heartbeat_interval_s": 0.05, "stall_timeout_s": 0.5}
    return WorkPool(
        workers=2,
        max_retries=2,
        retry_backoff_s=0.0,
        task_timeout=60.0,
        chaos=ChaosHooks(plan.pool_faults) if plan.pool_faults else None,
        **liveness,
    )


def _verify_resume(
    config: CampaignConfig,
    checkpoint_dir: Path,
    baseline: str,
    what: str,
) -> tuple[str, str]:
    """A typed failure happened; prove the checkpoint resumes cleanly."""
    resume_health = TraceHealth()
    pool = WorkPool(workers=1, max_retries=2, retry_backoff_s=0.0)
    try:
        result = run_campaign(
            config,
            pool=pool,
            resume_from=checkpoint_dir,
            health=resume_health,
            shutdown=GracefulShutdown(install_signals=False),
        )
    except Exception as exc:  # noqa: BLE001 - any resume failure is a bug
        return (
            OUTCOME_VIOLATION,
            f"{what}; resume failed: {type(exc).__name__}: {exc}",
        )
    if _result_dump(result) != baseline:
        return (
            OUTCOME_VIOLATION,
            f"{what}; resumed result diverged from the clean run",
        )
    if resume_health.failures:
        kinds = sorted({issue.kind for issue in resume_health.failures})
        return (
            OUTCOME_VIOLATION,
            f"{what}; resume recorded non-benign issues: {kinds}",
        )
    detail = f"{what}; resumed byte-identical"
    if resume_health.by_kind().get("checkpoint-salvaged"):
        detail += " (torn journal tail salvaged)"
    return OUTCOME_TYPED, detail


def _execute_plan(
    plan: ChaosPlan,
    config: CampaignConfig,
    checkpoint_dir: Path,
    health: TraceHealth,
    baseline: str,
) -> tuple[str, str]:
    shutdown = GracefulShutdown(install_signals=False)
    resolved = 0

    def _on_episode(task: tuple, outcome: object) -> None:
        nonlocal resolved
        resolved += 1
        if plan.drain_after is not None and resolved >= plan.drain_after:
            shutdown.request()

    fs = (
        FaultyCheckpointFs(plan.fs_fault)
        if plan.fs_fault is not None else None
    )
    guard = use_checkpoint_fs(fs) if fs is not None else contextlib.nullcontext()
    try:
        with guard:
            result = run_campaign(
                config,
                pool=_plan_pool(plan),
                checkpoint_dir=checkpoint_dir,
                health=health,
                shutdown=shutdown,
                on_episode=_on_episode,
            )
    except (CampaignInterrupted, CheckpointMismatch) as exc:
        return _verify_resume(
            config, checkpoint_dir, baseline,
            f"typed {type(exc).__name__}",
        )
    except SimulatedCrash as exc:
        return _verify_resume(
            config, checkpoint_dir, baseline, f"simulated crash ({exc})",
        )
    except Exception as exc:  # noqa: BLE001 - untyped escape == violation
        return (
            OUTCOME_VIOLATION,
            f"untyped {type(exc).__name__} escaped: {exc}",
        )
    if fs is not None and not fs.injected:
        return OUTCOME_UNDEFINED, "armed filesystem fault never fired"
    if _result_dump(result) != baseline:
        return (
            OUTCOME_VIOLATION,
            "completed run diverged from the clean run",
        )
    if health.failures:
        kinds = sorted({issue.kind for issue in health.failures})
        return (
            OUTCOME_VIOLATION,
            f"completed run recorded non-benign issues: {kinds}",
        )
    return OUTCOME_IDENTICAL, "fault absorbed; byte-identical to clean run"


@lru_cache(maxsize=8)
def _flood_records(connections: int) -> tuple:
    """The memory-pressure flood trace, cached across a sweep."""
    from repro.faults.stress import connection_flood

    return tuple(connection_flood(connections=connections))


def _execute_memory_pressure(plan: ChaosPlan) -> tuple[str, str]:
    """Differential verdict for an analysis memory-pressure episode.

    The baseline here is the *unbudgeted streaming* analysis of the
    same flood, not a campaign run: the injection point lives in the
    analysis pipeline's state ledger, downstream of everything the
    campaign machinery exercises.
    """
    from repro.analysis.budget import ResourceBudget
    from repro.analysis.tdat import analyze_pcap
    from repro.faults.stress import (
        ALLOWED_DEGRADATION_KINDS,
        analysis_fingerprint,
    )

    pressure = plan.memory_pressure
    assert pressure is not None
    records = list(_flood_records(pressure.connections))
    clean = analyze_pcap(records, streaming=True)
    budgeted = analyze_pcap(
        records,
        budget=ResourceBudget(
            max_live_connections=pressure.max_live_connections
        ),
    )
    summary = budgeted.degradation
    if pressure.ample:
        if summary is not None and summary.degraded:
            return OUTCOME_VIOLATION, "ample budget degraded the analysis"
        if analysis_fingerprint(budgeted) != analysis_fingerprint(clean):
            return (
                OUTCOME_VIOLATION,
                "ample-budget report diverged from the clean run",
            )
        return (
            OUTCOME_IDENTICAL,
            "budget armed but never binding; byte-identical to clean run",
        )
    if summary is None or not summary.degraded:
        return OUTCOME_UNDEFINED, "armed memory pressure never fired"
    if budgeted.health.failures:
        kinds = sorted({issue.kind for issue in budgeted.health.failures})
        return (
            OUTCOME_VIOLATION,
            f"degradation recorded non-benign issues: {kinds}",
        )
    unknown = set(budgeted.health.by_kind()) - ALLOWED_DEGRADATION_KINDS
    if unknown:
        return (
            OUTCOME_VIOLATION,
            f"untyped degradation kinds: {sorted(unknown)}",
        )
    if summary.peak_live_connections > pressure.max_live_connections:
        return (
            OUTCOME_VIOLATION,
            f"peak live connections {summary.peak_live_connections} "
            f"exceeded the budget {pressure.max_live_connections}",
        )
    return OUTCOME_TYPED, f"degraded gracefully: {summary.summary()}"


def run_plan(plan: ChaosPlan, transfers: int = 3) -> ChaosCase:
    """Execute one chaos plan and return its differential verdict."""
    if plan.fault_class == POINT_MEMORY_PRESSURE:
        obs = get_obs()
        with obs.tracer.span(
            "chaos.plan", cat="chaos",
            args={"seed": plan.seed, "fault_class": plan.fault_class},
        ):
            outcome, detail = _execute_memory_pressure(plan)
        if obs.enabled:
            obs.metrics.counter("chaos.plans", wall=True).inc()
            obs.metrics.counter("chaos.injections", wall=True).inc(
                plan.injections()
            )
            if outcome == OUTCOME_VIOLATION:
                obs.metrics.counter("chaos.violations", wall=True).inc()
        return ChaosCase(
            seed=plan.seed,
            fault_class=plan.fault_class,
            outcome=outcome,
            description=plan.describe(),
            detail=detail,
        )
    config = chaos_config(transfers)
    if plan.storm_episodes:
        # The retry storm rides the campaign's own transient-fault
        # knob: first attempts of these episodes fail, retries recover.
        config = dataclasses.replace(
            config, fail_episodes=plan.storm_episodes
        )
    baseline = _baseline_dump(transfers)
    obs = get_obs()
    before = frozenset(
        child.pid for child in multiprocessing.active_children()
        if child.pid is not None
    )
    with tempfile.TemporaryDirectory(prefix="tdat-chaos-") as tmp:
        checkpoint_dir = Path(tmp) / "ckpt"
        health = TraceHealth()
        health.record(
            STAGE_EXEC, "chaos-injected",
            detail=plan.describe(), benign=True,
        )
        with obs.tracer.span(
            "chaos.plan", cat="chaos",
            args={"seed": plan.seed, "fault_class": plan.fault_class},
        ):
            outcome, detail = _execute_plan(
                plan, config, checkpoint_dir, health, baseline
            )
    leaked = _leaked_workers(before)
    if leaked:
        outcome = OUTCOME_VIOLATION
        detail += f"; leaked worker pid(s): {leaked}"
    if obs.enabled:
        obs.metrics.counter("chaos.plans", wall=True).inc()
        obs.metrics.counter("chaos.injections", wall=True).inc(
            plan.injections()
        )
        if outcome == OUTCOME_VIOLATION:
            obs.metrics.counter("chaos.violations", wall=True).inc()
    return ChaosCase(
        seed=plan.seed,
        fault_class=plan.fault_class,
        outcome=outcome,
        description=plan.describe(),
        detail=detail,
    )


def run_chaos(
    seeds: int = 25,
    base_seed: int = 0,
    transfers: int = 3,
    progress: Callable[[ChaosCase], None] | None = None,
) -> ChaosReport:
    """Sweep ``seeds`` consecutive chaos plans and build the matrix.

    The fault class is ``seed % len(FAULT_CLASSES)``, so any sweep of
    at least ``len(FAULT_CLASSES)`` consecutive seeds exercises every
    class; fewer leaves ``undefined`` matrix cells and the report fails.
    """
    report = ChaosReport()
    for index in range(seeds):
        plan = draw_plan(base_seed + index, tasks=transfers)
        case = run_plan(plan, transfers=transfers)
        report.cases.append(case)
        if progress is not None:
            progress(case)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description=(
            "Seeded chaos sweep over the campaign execution stack: "
            "inject one scheduled fault per seed, diff the outcome "
            "against a clean run, and report the per-fault-class "
            "matrix."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=25,
        help=f"number of consecutive seeds to sweep (default 25; at "
        f"least {len(FAULT_CLASSES)} to cover every fault class)",
    )
    parser.add_argument(
        "--base-seed", type=int, default=0,
        help="first seed of the sweep (default 0)",
    )
    parser.add_argument(
        "--transfers", type=int, default=3,
        help="episodes per micro campaign (default 3)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON on stdout",
    )
    parser.add_argument(
        "--matrix-out", metavar="PATH",
        help="also write the outcome matrix (JSON) to PATH",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="print every case as it finishes",
    )
    args = parser.parse_args(argv)

    def progress(case: ChaosCase) -> None:
        if args.verbose and not args.json:
            marker = "ok" if case.ok else "FAIL"
            print(
                f"[{marker}] seed {case.seed:<4} "
                f"{case.fault_class:<20} {case.outcome}: {case.detail}"
            )

    report = run_chaos(
        seeds=args.seeds,
        base_seed=args.base_seed,
        transfers=args.transfers,
        progress=progress,
    )
    if args.matrix_out:
        Path(args.matrix_out).write_text(
            json.dumps(
                {"matrix": report.matrix(), "counts": report.counts()},
                indent=2, sort_keys=True,
            ) + "\n"
        )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
