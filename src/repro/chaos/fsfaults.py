"""Fault-injecting checkpoint filesystem.

:class:`FaultyCheckpointFs` subclasses the
:class:`~repro.workloads.checkpoint.CheckpointFs` seam and arms one
:class:`~repro.chaos.plan.FsFault` from a chaos plan: it counts the
calls reaching each injection point and, at the scheduled call, either
raises a realistic ``OSError`` (ENOSPC, EIO) or simulates a hard crash.

A simulated crash is a :class:`SimulatedCrash`, deliberately derived
from ``BaseException``: nothing in the production pipeline catches
``BaseException`` broadly, so the exception unwinds the campaign the
way ``os._exit`` would end the process — except the test harness can
catch it at the very top and then inspect the disk state the "crash"
left behind.  For torn writes, a *prefix* of the data is written before
the crash; Python's buffered file object flushes those bytes when the
``with open(...)`` block closes during unwind, which is precisely how a
real torn append manifests.
"""

from __future__ import annotations

import errno
from typing import Any

from repro.chaos.plan import FS_CRASH, FS_ENOSPC, FS_TORN, FsFault
from repro.workloads.checkpoint import CheckpointFs


class SimulatedCrash(BaseException):
    """A chaos plan 'crashed the process' here (torn write, kill -9)."""


def _fault_error(fault: FsFault) -> OSError:
    if fault.mode == FS_ENOSPC:
        return OSError(
            errno.ENOSPC, "chaos: no space left on device", str(fault.point)
        )
    return OSError(errno.EIO, "chaos: input/output error", str(fault.point))


class FaultyCheckpointFs(CheckpointFs):
    """A checkpoint fs that fails exactly once, exactly on schedule.

    ``calls`` tracks how many operations reached each injection point;
    ``injected`` flips once the armed fault has fired (each fault is
    one-shot, so the post-fault resume path runs clean even if the same
    fs instance stays installed).
    """

    def __init__(self, fault: FsFault) -> None:
        self.fault = fault
        self.calls: dict[str, int] = {}
        self.injected = False

    def _armed(self, point: str) -> bool:
        self.calls[point] = self.calls.get(point, 0) + 1
        if self.injected or point != self.fault.point:
            return False
        if self.calls[point] != self.fault.at_call:
            return False
        self.injected = True
        return True

    def write(self, handle: Any, data: bytes, point: str) -> None:
        if not self._armed(point):
            super().write(handle, data, point)
            return
        fault = self.fault
        if fault.mode == FS_TORN:
            # Keep at least one byte and lose at least one, so the
            # result is genuinely torn rather than absent or complete.
            keep = min(
                max(1, int(len(data) * fault.fraction)), len(data) - 1
            )
            super().write(handle, data[:keep], point)
            raise SimulatedCrash(f"torn write at {point} (kept {keep}B)")
        if fault.mode == FS_CRASH:
            raise SimulatedCrash(f"crash before {point}")
        raise _fault_error(fault)

    def fsync(self, handle: Any, point: str) -> None:
        if not self._armed(point):
            super().fsync(handle, point)
            return
        if self.fault.mode == FS_CRASH:
            raise SimulatedCrash(f"crash at {point}")
        raise _fault_error(self.fault)

    def replace(self, src: Any, dst: Any, point: str) -> None:
        if not self._armed(point):
            super().replace(src, dst, point)
            return
        if self.fault.mode == FS_CRASH:
            raise SimulatedCrash(f"crash before rename at {point}")
        raise _fault_error(self.fault)
