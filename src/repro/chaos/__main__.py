"""``python -m repro.chaos`` — run a seeded chaos sweep."""

from repro.chaos.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
