"""Deterministic chaos engineering for the execution stack.

``repro.chaos`` turns the hardening claims of the campaign runner —
checkpoint journaling survives torn writes, the work pool contains
worker crashes and stalls, interruptions are typed and resumable —
into a continuously verified contract.  One seed compiles to one
reproducible :class:`~repro.chaos.plan.ChaosPlan` (which injection
point, which episode, which failure mode), the plan runs against a
micro campaign, and a differential verifier diffs the outcome against
a clean run: every fault must end either byte-identical (absorbed) or
typed-and-resumable — never silent divergence, never a leaked worker.

Entry points: ``python -m repro.chaos`` or ``tdat chaos``; the library
surface is :func:`run_chaos` / :func:`run_plan` plus the plan
compiler.  See the fault taxonomy and injection-point catalog in
``docs/robustness.md``.
"""

from repro.chaos.fsfaults import FaultyCheckpointFs, SimulatedCrash
from repro.chaos.plan import (
    FAULT_CLASSES,
    INJECTION_POINTS,
    ChaosHooks,
    ChaosPlan,
    FsFault,
    draw_plan,
)
from repro.chaos.runner import (
    OUTCOME_IDENTICAL,
    OUTCOME_TYPED,
    OUTCOME_UNDEFINED,
    OUTCOME_VIOLATION,
    ChaosCase,
    ChaosReport,
    chaos_config,
    main,
    run_chaos,
    run_plan,
)

__all__ = [
    "FAULT_CLASSES",
    "INJECTION_POINTS",
    "OUTCOME_IDENTICAL",
    "OUTCOME_TYPED",
    "OUTCOME_UNDEFINED",
    "OUTCOME_VIOLATION",
    "ChaosCase",
    "ChaosHooks",
    "ChaosPlan",
    "ChaosReport",
    "FaultyCheckpointFs",
    "FsFault",
    "SimulatedCrash",
    "chaos_config",
    "draw_plan",
    "main",
    "run_chaos",
    "run_plan",
]
