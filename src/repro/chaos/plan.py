"""Seeded chaos plans: one seed -> one reproducible fault schedule.

A :class:`ChaosPlan` is the unit of chaos engineering here, mirroring
how one fuzz seed is the unit of ``repro.faults``: the seed picks a
*fault class* (round-robin, so any contiguous seed range covers every
class) and a seeded RNG draws the class's parameters — which episode
to hit, how many bytes of a journal append survive, how long a stall
lasts.  The same seed always compiles to the same schedule, so a
failing plan replays exactly.

Fault classes are named after the *injection point* they exercise;
:data:`INJECTION_POINTS` is the central registry the RL007 lint rule
holds in sync with the ``docs/robustness.md`` catalog and with the
``POINT_*`` constants at the actual injection seams
(``repro.workloads.checkpoint``, ``repro.exec.pool``, and this
module).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exec.pool import (
    POINT_HEARTBEAT_LOSS,
    POINT_WORKER_CRASH,
    POINT_WORKER_STALL,
    WorkerFault,
)
from repro.workloads.checkpoint import (
    POINT_CHECKPOINT_FSYNC,
    POINT_CHECKPOINT_RENAME,
    POINT_CHECKPOINT_WRITE,
    POINT_JOURNAL_APPEND,
    POINT_JOURNAL_FSYNC,
)

# Injection points owned by the harness itself rather than a
# filesystem or worker seam: a retry storm is delivered through the
# campaign's own transient-fault knob (``config.fail_episodes``), a
# drain through a programmatic GracefulShutdown request — the same
# code path a SIGTERM takes, minus the signal delivery — and memory
# pressure through the analysis resource budget
# (``repro.analysis.budget``), fed an adversarial connection flood.
POINT_RETRY_STORM = "pool.retry-storm"
POINT_DRAIN = "campaign.drain"
POINT_MEMORY_PRESSURE = "analysis.memory-pressure"

#: Every registered injection point, with what injecting there models.
#: RL007 keeps this dict, the ``POINT_*`` constants at the seams, and
#: the ``docs/robustness.md`` catalog in sync (all directions).
INJECTION_POINTS = {
    "journal.append": "torn/partial or failed append to journal.bin "
                      "(crash mid-append, ENOSPC, EIO)",
    "journal.fsync": "journal fsync failure after a successful append",
    "checkpoint.write": "pcap/manifest tmp-file write failure "
                        "(ENOSPC, EIO)",
    "checkpoint.fsync": "pcap/manifest fsync failure before the rename",
    "checkpoint.rename": "crash or failure at the atomic-publish rename",
    "pool.worker-crash": "worker hard-killed before the task, or after "
                         "computing but before delivering the result",
    "pool.worker-stall": "worker alive but silent mid-task "
                         "(C-level deadlock, SIGSTOP)",
    "pool.heartbeat-loss": "heartbeats stop but the task completes",
    "pool.retry-storm": "transient failures across many episodes at "
                        "once, stressing the retry/backoff machinery",
    "campaign.drain": "SIGTERM-style cooperative drain mid-campaign",
    "analysis.memory-pressure": "analysis state budget exhausted by a "
                                "connection flood, forcing eviction "
                                "and graceful degradation",
}

#: fault classes = injection points, in registry order; seed N
#: exercises class ``N % len(FAULT_CLASSES)``.
FAULT_CLASSES = tuple(INJECTION_POINTS)

#: filesystem fault modes a FsFault can inject.
FS_TORN = "torn"
FS_ENOSPC = "enospc"
FS_EIO = "eio"
FS_CRASH = "crash"


@dataclass(frozen=True)
class FsFault:
    """One filesystem fault, armed at the Nth call of one point.

    ``at_call`` is 1-based over the calls reaching ``point`` in one
    campaign run; ``fraction`` (torn mode) is how much of the write
    survives before the simulated crash.
    """

    point: str
    mode: str
    at_call: int
    fraction: float = 0.0


@dataclass(frozen=True)
class MemoryPressure:
    """A memory-pressure episode: flood the analyzer, budget its state.

    ``ample=True`` draws a budget the flood cannot trip — the
    invariant under test is then byte-identity with the unbudgeted
    run; ``ample=False`` draws one it must trip, and the invariant is
    graceful, typed degradation with peak state inside the budget.
    """

    ample: bool
    max_live_connections: int
    connections: int


@dataclass(frozen=True)
class ChaosHooks:
    """The pool-side fault schedule: picklable, shipped to workers.

    ``faults`` maps (task index, attempt) to a
    :class:`~repro.exec.pool.WorkerFault`; the pool consults it via
    :meth:`fault_for` right after a task is received.
    """

    faults: tuple[tuple[int, int, WorkerFault], ...] = ()

    def fault_for(self, index: int, attempt: int) -> WorkerFault | None:
        for fault_index, fault_attempt, fault in self.faults:
            if fault_index == index and fault_attempt == attempt:
                return fault
        return None


@dataclass(frozen=True)
class ChaosPlan:
    """One seed's complete, reproducible fault schedule."""

    seed: int
    fault_class: str
    fs_fault: FsFault | None = None
    pool_faults: tuple[tuple[int, int, WorkerFault], ...] = ()
    storm_episodes: tuple[int, ...] = ()
    drain_after: int | None = None
    memory_pressure: MemoryPressure | None = None

    @property
    def parallel(self) -> bool:
        """Whether this plan needs the multiprocessing backend."""
        return bool(
            self.pool_faults or self.storm_episodes
            or self.fault_class == POINT_DRAIN
        )

    def injections(self) -> int:
        """How many individual faults this plan injects."""
        if self.storm_episodes:
            return len(self.storm_episodes)
        return 1

    def describe(self) -> str:
        parts = [f"seed {self.seed}", self.fault_class]
        if self.fs_fault is not None:
            parts.append(
                f"{self.fs_fault.mode}@call{self.fs_fault.at_call}"
            )
        for index, attempt, fault in self.pool_faults:
            parts.append(f"task{index}/attempt{attempt}")
            if fault.after_task:
                parts.append("after-task")
        if self.storm_episodes:
            parts.append(f"episodes{list(self.storm_episodes)}")
        if self.drain_after is not None:
            parts.append(f"drain-after-{self.drain_after}")
        if self.memory_pressure is not None:
            pressure = self.memory_pressure
            parts.append(
                f"flood{pressure.connections}/"
                f"budget{pressure.max_live_connections}"
                f"{'-ample' if pressure.ample else '-tight'}"
            )
        return " ".join(parts)


def draw_plan(seed: int, tasks: int = 3) -> ChaosPlan:
    """Compile ``seed`` into a fault schedule over ``tasks`` episodes.

    Deterministic: the class comes from ``seed % len(FAULT_CLASSES)``
    (so 25 consecutive seeds hit every class at least twice) and every
    parameter from ``random.Random(seed)``.
    """
    if tasks < 2:
        raise ValueError("a chaos plan needs at least 2 episodes")
    fault_class = FAULT_CLASSES[seed % len(FAULT_CLASSES)]
    rng = random.Random(seed)
    target = rng.randrange(tasks)

    if fault_class == POINT_JOURNAL_APPEND:
        mode = rng.choice((FS_TORN, FS_ENOSPC, FS_EIO))
        return ChaosPlan(
            seed, fault_class,
            fs_fault=FsFault(
                point=POINT_JOURNAL_APPEND, mode=mode,
                at_call=target + 1, fraction=rng.random(),
            ),
        )
    if fault_class == POINT_JOURNAL_FSYNC:
        return ChaosPlan(
            seed, fault_class,
            fs_fault=FsFault(
                point=POINT_JOURNAL_FSYNC,
                mode=rng.choice((FS_EIO, FS_ENOSPC)),
                at_call=target + 1,
            ),
        )
    if fault_class == POINT_CHECKPOINT_WRITE:
        # Calls 1-2 are the manifest double-write, 3.. the episode
        # pcaps: both are fair game.
        return ChaosPlan(
            seed, fault_class,
            fs_fault=FsFault(
                point=POINT_CHECKPOINT_WRITE,
                mode=rng.choice((FS_ENOSPC, FS_EIO)),
                at_call=rng.randint(1, tasks + 2),
            ),
        )
    if fault_class == POINT_CHECKPOINT_FSYNC:
        return ChaosPlan(
            seed, fault_class,
            fs_fault=FsFault(
                point=POINT_CHECKPOINT_FSYNC, mode=FS_EIO,
                at_call=rng.randint(1, tasks + 2),
            ),
        )
    if fault_class == POINT_CHECKPOINT_RENAME:
        return ChaosPlan(
            seed, fault_class,
            fs_fault=FsFault(
                point=POINT_CHECKPOINT_RENAME,
                mode=rng.choice((FS_CRASH, FS_EIO)),
                at_call=rng.randint(1, tasks + 2),
            ),
        )
    if fault_class == POINT_WORKER_CRASH:
        fault = WorkerFault(
            point=POINT_WORKER_CRASH,
            after_task=rng.random() < 0.5,
            exitcode=rng.choice((1, 3, 17)),
        )
        return ChaosPlan(
            seed, fault_class, pool_faults=((target, 0, fault),),
        )
    if fault_class == POINT_WORKER_STALL:
        fault = WorkerFault(point=POINT_WORKER_STALL, seconds=5.0)
        return ChaosPlan(
            seed, fault_class, pool_faults=((target, 0, fault),),
        )
    if fault_class == POINT_HEARTBEAT_LOSS:
        fault = WorkerFault(point=POINT_HEARTBEAT_LOSS)
        return ChaosPlan(
            seed, fault_class, pool_faults=((target, 0, fault),),
        )
    if fault_class == POINT_RETRY_STORM:
        count = rng.randint(max(1, tasks // 2), tasks)
        episodes = tuple(sorted(rng.sample(range(tasks), count)))
        return ChaosPlan(seed, fault_class, storm_episodes=episodes)
    if fault_class == POINT_MEMORY_PRESSURE:
        ample = rng.random() < 0.5
        connections = rng.randint(8, 16)
        # Ample must clear the high watermark (eviction arms at
        # 0.9×limit against a peak of ``connections`` live flows);
        # tight must trip it immediately.
        max_live = connections * 2 if ample else rng.randint(2, 4)
        return ChaosPlan(
            seed, fault_class,
            memory_pressure=MemoryPressure(
                ample=ample,
                max_live_connections=max_live,
                connections=connections,
            ),
        )
    # POINT_DRAIN
    return ChaosPlan(
        seed, fault_class, drain_after=rng.randint(1, tasks - 1),
    )
