"""Named event series and series catalogues.

The analyzer internally manages 34 series per connection (paper
section III-C).  :class:`EventSeries` couples a :class:`TimeRangeSet`
with a name and bookkeeping counters (packets/bytes per range, which the
paper notes each square wave records).  :class:`SeriesCatalog` is the
per-connection registry the generation rules read from and write to.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.core.timeranges import TimeRange, TimeRangeSet


@dataclass
class SeriesEventData:
    """Per-range detail payload: the paper's ``event_data`` reference.

    ``packets`` and ``bytes`` quantify what happened inside the range
    (e.g. how many segments a retransmission burst resent); ``refs``
    points back to raw trace records (packet indices) for drill-down.
    """

    packets: int = 0
    bytes: int = 0
    refs: list[Any] = field(default_factory=list)

    def merge(self, other: "SeriesEventData") -> "SeriesEventData":
        """Combine payloads of two coalesced ranges."""
        return SeriesEventData(
            packets=self.packets + other.packets,
            bytes=self.bytes + other.bytes,
            refs=self.refs + other.refs,
        )


class EventSeries:
    """A named time-range series representing one TCP behaviour."""

    def __init__(
        self,
        name: str,
        ranges: TimeRangeSet | Iterable[TimeRange | tuple] | None = None,
        description: str = "",
    ) -> None:
        self.name = name
        self.description = description
        if isinstance(ranges, TimeRangeSet):
            self.ranges = ranges
        else:
            self.ranges = TimeRangeSet(ranges or ())

    # Basic container protocol ----------------------------------------
    def __iter__(self) -> Iterator[TimeRange]:
        return iter(self.ranges)

    def __len__(self) -> int:
        return len(self.ranges)

    def __bool__(self) -> bool:
        return bool(self.ranges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventSeries({self.name!r}, n={len(self.ranges)}, "
            f"size={self.ranges.size()}us)"
        )

    # Measurement -------------------------------------------------------
    def size(self) -> int:
        """Total covered microseconds (the paper's series size)."""
        return self.ranges.size()

    def delay_ratio(self, analysis_period_us: int) -> float:
        """Series size divided by the analysis period (paper III-D)."""
        if analysis_period_us <= 0:
            return 0.0
        return self.size() / analysis_period_us

    def total_packets(self) -> int:
        """Sum of per-range packet counters."""
        return sum(d.packets for d in self._payloads())

    def total_bytes(self) -> int:
        """Sum of per-range byte counters."""
        return sum(d.bytes for d in self._payloads())

    def _payloads(self) -> Iterator[SeriesEventData]:
        for rng in self.ranges:
            data = rng.data
            if isinstance(data, SeriesEventData):
                yield data
            elif isinstance(data, list):
                for item in data:
                    if isinstance(item, SeriesEventData):
                        yield item

    # Derivation (paper rules 2-4) ---------------------------------------
    def renamed(self, name: str, description: str = "") -> "EventSeries":
        """Paper rule 2 (*Interpretation*): clone under a new name."""
        return EventSeries(name, self.ranges, description or self.description)

    def union(self, *others: "EventSeries", name: str = "") -> "EventSeries":
        """Set union with other series (paper rule 4)."""
        merged = self.ranges.union(*(o.ranges for o in others))
        return EventSeries(name or self.name, merged)

    def intersection(
        self, *others: "EventSeries", name: str = ""
    ) -> "EventSeries":
        """Set intersection with other series (paper rule 4)."""
        merged = self.ranges.intersection(*(o.ranges for o in others))
        return EventSeries(name or self.name, merged)

    def difference(self, other: "EventSeries", name: str = "") -> "EventSeries":
        """Set difference with another series."""
        return EventSeries(name or self.name, self.ranges.difference(other.ranges))

    def complement(
        self, within: TimeRange | tuple, name: str = ""
    ) -> "EventSeries":
        """Uncovered time inside the analysis window."""
        return EventSeries(name or self.name, self.ranges.complement(within))

    def clip(self, start: int, end: int) -> "EventSeries":
        """Restrict to the analysis window ``[start, end)``."""
        return EventSeries(self.name, self.ranges.clip(start, end), self.description)


class SeriesCatalog:
    """The per-connection registry of generated event series."""

    def __init__(self) -> None:
        self._series: dict[str, EventSeries] = {}

    def put(self, series: EventSeries) -> EventSeries:
        """Register (or replace) a series under its own name."""
        self._series[series.name] = series
        return series

    def get(self, name: str) -> EventSeries:
        """Look up a series; an absent name raises ``KeyError``."""
        return self._series[name]

    def get_or_empty(self, name: str) -> EventSeries:
        """Look up a series, returning an empty one when absent."""
        return self._series.get(name, EventSeries(name))

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __iter__(self) -> Iterator[EventSeries]:
        return iter(self._series.values())

    def __len__(self) -> int:
        return len(self._series)

    def names(self) -> list[str]:
        """All registered series names, in insertion order."""
        return list(self._series)
