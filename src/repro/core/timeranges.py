"""Ordered sets of time ranges — T-DAT's central data structure.

The paper (section III-A) represents every TCP behaviour as an *event
series*: "an ordered set of time durations, i.e., a special set container
in which each element is a continuous time duration".  Measuring the
delay a behaviour induces is then "equivalent to calculating the set
size", and new series are derived with set algebra
(``SmallAdvBndOut := AdvBndOut ∩ SmallAdv``).

:class:`TimeRange` is one half-open interval ``[start, end)`` in integer
microseconds, optionally carrying a reference back to the detailed trace
data (the paper's ``event_data`` field).  :class:`TimeRangeSet` is the
ordered, coalesced container with union / intersection / complement /
difference, total-size measurement, gap extraction and range queries.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, order=True)
class TimeRange:
    """A half-open time interval ``[start, end)`` in integer microseconds.

    ``data`` is the paper's ``event_data``: an arbitrary reference to the
    underlying trace detail (packet indices, byte counts, ...).  It is
    excluded from ordering and equality so that set algebra compares
    ranges purely by extent.
    """

    start: int
    end: int
    data: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> int:
        """Length of the interval in microseconds."""
        return self.end - self.start

    def is_empty(self) -> bool:
        """True for a zero-length (degenerate) range."""
        return self.end == self.start

    def contains(self, instant: int) -> bool:
        """True if ``instant`` lies inside the half-open interval."""
        return self.start <= instant < self.end

    def overlaps(self, other: "TimeRange") -> bool:
        """True if the two half-open intervals share any instant."""
        return self.start < other.end and other.start < self.end

    def touches(self, other: "TimeRange") -> bool:
        """True if the intervals overlap or are exactly adjacent."""
        return self.start <= other.end and other.start <= self.end

    def intersect(self, other: "TimeRange") -> "TimeRange | None":
        """The overlapping part of two ranges, or None when disjoint.

        The intersection carries ``data`` from ``self`` (the left operand
        is considered the primary series in T-DAT's algebra rules).
        """
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return TimeRange(start, end, self.data)

    def shift(self, offset: int) -> "TimeRange":
        """Translate the range by ``offset`` microseconds."""
        return TimeRange(self.start + offset, self.end + offset, self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeRange({self.start}, {self.end})"


class TimeRangeSet:
    """An ordered set of non-overlapping, coalesced time ranges.

    Invariants maintained at all times:

    * ranges are sorted by ``start``;
    * no two stored ranges overlap or touch (touching ranges coalesce);
    * no stored range is empty.

    Coalescing merges ``data`` payloads into a list when both sides carry
    payloads, preserving the cross-reference back to raw trace events
    that the paper highlights as essential for drill-down inspection.
    """

    __slots__ = ("_ranges", "_starts")

    def __init__(self, ranges: Iterable[TimeRange | tuple] = ()) -> None:
        self._ranges: list[TimeRange] = []
        self._starts: list[int] = []
        for item in ranges:
            self.add(_coerce(item))

    @classmethod
    def _from_sorted(cls, ranges: list[TimeRange]) -> "TimeRangeSet":
        """Adopt a list already satisfying the class invariants.

        Callers must guarantee the ranges are sorted, non-empty and
        pairwise non-touching — the outputs of the merge-walk algebra
        below qualify; arbitrary input does not.
        """
        self = cls.__new__(cls)
        self._ranges = ranges
        self._starts = [r.start for r in ranges]
        return self

    # ------------------------------------------------------------------
    # Construction and mutation
    # ------------------------------------------------------------------
    def add(self, item: TimeRange | tuple) -> None:
        """Insert a range, coalescing with any overlapping/adjacent ones."""
        rng = _coerce(item)
        if rng.end == rng.start:
            return
        ranges = self._ranges
        if ranges:
            last = ranges[-1]
            if rng.start > last.end:
                # Strictly after everything stored: plain append.
                ranges.append(rng)
                self._starts.append(rng.start)
                return
            if rng.start >= last.start:
                # Touches or overlaps only the final stored range.
                merged_data = _data_list(rng.data)
                merged_data.extend(_data_list(last.data))
                merged = TimeRange(
                    last.start if last.start < rng.start else rng.start,
                    last.end if last.end > rng.end else rng.end,
                    _data_value(merged_data),
                )
                ranges[-1] = merged
                self._starts[-1] = merged.start
                return
        else:
            ranges.append(rng)
            self._starts.append(rng.start)
            return
        idx = bisect.bisect_left(self._starts, rng.start)
        # A predecessor may touch/overlap the new range.
        if idx > 0 and ranges[idx - 1].end >= rng.start:
            idx -= 1
        merged_start, merged_end = rng.start, rng.end
        merged_data = _data_list(rng.data)
        remove_to = idx
        while remove_to < len(ranges) and (
            ranges[remove_to].start <= merged_end
        ):
            existing = ranges[remove_to]
            merged_start = min(merged_start, existing.start)
            merged_end = max(merged_end, existing.end)
            merged_data.extend(_data_list(existing.data))
            remove_to += 1
        merged = TimeRange(merged_start, merged_end, _data_value(merged_data))
        ranges[idx:remove_to] = [merged]
        self._starts[idx:remove_to] = [merged.start]

    def add_span(self, start: int, end: int, data: Any = None) -> None:
        """Convenience: insert ``[start, end)`` with optional payload."""
        self.add(TimeRange(start, end, data))

    def remove_span(self, start: int, end: int) -> None:
        """Delete the interval ``[start, end)`` from the set."""
        if end <= start:
            return
        self._ranges = list(
            self._difference_ranges([TimeRange(start, end)])
        )
        self._starts = [r.start for r in self._ranges]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ranges)

    def __iter__(self) -> Iterator[TimeRange]:
        return iter(self._ranges)

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeRangeSet):
            return NotImplemented
        return [(r.start, r.end) for r in self._ranges] == [
            (r.start, r.end) for r in other._ranges
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"[{r.start},{r.end})" for r in self._ranges[:8])
        if len(self._ranges) > 8:
            inner += ", ..."
        return f"TimeRangeSet({inner})"

    @property
    def ranges(self) -> Sequence[TimeRange]:
        """The stored ranges as an immutable view (sorted, coalesced)."""
        return tuple(self._ranges)

    def size(self) -> int:
        """Total covered duration in microseconds (the paper's set size)."""
        return sum(r.duration for r in self._ranges)

    def span(self) -> TimeRange | None:
        """The bounding range from first start to last end, or None."""
        if not self._ranges:
            return None
        return TimeRange(self._ranges[0].start, self._ranges[-1].end)

    def contains(self, instant: int) -> bool:
        """True if some stored range covers ``instant``."""
        return self.range_at(instant) is not None

    def range_at(self, instant: int) -> TimeRange | None:
        """The stored range covering ``instant``, or None."""
        idx = bisect.bisect_right(self._starts, instant) - 1
        if idx >= 0 and self._ranges[idx].contains(instant):
            return self._ranges[idx]
        return None

    def overlapping(self, start: int, end: int) -> list[TimeRange]:
        """All stored ranges intersecting the query window ``[start, end)``."""
        query = TimeRange(start, end)
        return [r for r in self._ranges if r.overlaps(query)]

    def durations(self) -> list[int]:
        """The individual range durations, in order.

        This is what the timer-gap detector histograms (paper Fig. 17).
        """
        return [r.duration for r in self._ranges]

    def gaps(self) -> "TimeRangeSet":
        """The uncovered intervals *between* consecutive stored ranges."""
        result = TimeRangeSet()
        for prev, nxt in zip(self._ranges, self._ranges[1:]):
            result.add_span(prev.end, nxt.start)
        return result

    # ------------------------------------------------------------------
    # Set algebra (paper rule 4: series := series ⊕ series ...)
    # ------------------------------------------------------------------
    def union(self, *others: "TimeRangeSet") -> "TimeRangeSet":
        """The set union of this series with ``others``."""
        result = TimeRangeSet(self._ranges)
        for other in others:
            for rng in other:
                result.add(rng)
        return result

    def intersection(self, *others: "TimeRangeSet") -> "TimeRangeSet":
        """The set intersection of this series with ``others``."""
        current = self._ranges
        for other in others:
            current = list(_intersect_sorted(current, other._ranges))
        if current is self._ranges:
            current = list(current)
        return TimeRangeSet._from_sorted(current)

    def difference(self, other: "TimeRangeSet") -> "TimeRangeSet":
        """Ranges of this series with ``other``'s coverage removed."""
        return TimeRangeSet._from_sorted(
            list(self._difference_ranges(other._ranges))
        )

    def complement(self, within: TimeRange | tuple) -> "TimeRangeSet":
        """The uncovered portion of ``within``.

        The paper uses complements to turn "time TCP spends transmitting"
        into "inter-transmission gaps to be explained".
        """
        window = _coerce(within)
        return TimeRangeSet([window]).difference(self)

    def clip(self, start: int, end: int) -> "TimeRangeSet":
        """Restrict the series to the analysis window ``[start, end)``."""
        return self.intersection(TimeRangeSet([TimeRange(start, end)]))

    def shift(self, offset: int) -> "TimeRangeSet":
        """Translate every range by ``offset`` microseconds."""
        return TimeRangeSet(r.shift(offset) for r in self._ranges)

    def dilate(self, margin_us: int) -> "TimeRangeSet":
        """Expand every range by ``margin_us`` on both sides.

        Used to test for *coincidence* between series whose ranges abut
        rather than overlap (e.g. a loss-recovery period starting the
        instant a zero-window episode ends).
        """
        if margin_us < 0:
            raise ValueError(f"negative margin {margin_us}")
        return TimeRangeSet(
            TimeRange(r.start - margin_us, r.end + margin_us, r.data)
            for r in self._ranges
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _difference_ranges(
        self, subtrahend: list[TimeRange]
    ) -> Iterator[TimeRange]:
        sub_iter = iter(subtrahend)
        sub = next(sub_iter, None)
        for rng in self._ranges:
            start = rng.start
            while sub is not None and sub.end <= start:
                sub = next(sub_iter, None)
            cursor = start
            while sub is not None and sub.start < rng.end:
                if sub.start > cursor:
                    yield TimeRange(cursor, sub.start, rng.data)
                cursor = max(cursor, sub.end)
                if sub.end >= rng.end:
                    break
                sub = next(sub_iter, None)
            if cursor < rng.end:
                yield TimeRange(cursor, rng.end, rng.data)


def _intersect_sorted(
    left: list[TimeRange], right: list[TimeRange]
) -> Iterator[TimeRange]:
    """Merge-intersect two sorted, coalesced range lists."""
    i = j = 0
    while i < len(left) and j < len(right):
        overlap = left[i].intersect(right[j])
        if overlap is not None:
            yield overlap
        if left[i].end <= right[j].end:
            i += 1
        else:
            j += 1


def _coerce(item: TimeRange | tuple) -> TimeRange:
    if isinstance(item, TimeRange):
        return item
    return TimeRange(*item)


def _data_list(data: Any) -> list:
    if data is None:
        return []
    if isinstance(data, list):
        return list(data)
    return [data]


def _data_value(items: list) -> Any:
    if not items:
        return None
    if len(items) == 1:
        return items[0]
    return items
