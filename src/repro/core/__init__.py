"""Core data structures of the T-DAT delay analyzer."""

from repro.core.events import EventSeries, SeriesCatalog, SeriesEventData
from repro.core.health import IngestError, IngestIssue, TraceHealth
from repro.core.timeranges import TimeRange, TimeRangeSet
from repro.core import units

__all__ = [
    "EventSeries",
    "IngestError",
    "IngestIssue",
    "SeriesCatalog",
    "SeriesEventData",
    "TimeRange",
    "TimeRangeSet",
    "TraceHealth",
    "units",
]
