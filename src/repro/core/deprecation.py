"""Deprecation warnings that point at the caller, not the machinery.

The package facades keep deprecated re-exports alive through module
``__getattr__`` hooks.  Getting the warning attributed to the *user's*
import line from inside such a hook is fiddly: a ``from pkg import
name`` statement reaches the hook through CPython's import machinery
(``importlib._bootstrap._handle_fromlist``) — and twice, once via its
``hasattr`` probe and once via the ``IMPORT_FROM`` opcode — so a fixed
``stacklevel`` is wrong for at least one of the paths, and off-by-one
guesses land the warning on ``<frozen importlib._bootstrap>`` or past
the top of the stack (reported as ``sys:1``).

:func:`warn_deprecated` sidesteps stacklevel arithmetic entirely: it
walks the stack past the shim and any import-machinery frames to the
first user frame, then raises the warning with
:func:`warnings.warn_explicit` pinned to that frame's file and line.
Both trigger paths of a ``from``-import therefore attribute to the
same location, which also lets the default ``once``-per-location
filters deduplicate them.
"""

from __future__ import annotations

import sys
import warnings

#: filename markers of frames that are plumbing, never the culprit.
_PLUMBING_MARKERS = ("importlib", "_bootstrap")


def _is_plumbing(filename: str) -> bool:
    # Frozen importlib frames render as e.g.
    # "<frozen importlib._bootstrap>".
    return filename.startswith("<frozen ") and any(
        marker in filename for marker in _PLUMBING_MARKERS
    )


def warn_deprecated(message: str) -> None:
    """Emit a :class:`DeprecationWarning` attributed to caller code.

    Intended for module ``__getattr__`` re-export shims: the warning's
    reported filename/line is the import (or attribute access) in user
    code, regardless of how many import-machinery frames sit between.
    """
    try:
        # Depth 0 is this function, 1 the shim's __getattr__, 2
        # whoever triggered it; climb from there past plumbing.
        frame = sys._getframe(2)
    except ValueError:  # pragma: no cover - shim called at stack top
        frame = None
    try:
        while frame is not None and _is_plumbing(frame.f_code.co_filename):
            frame = frame.f_back
        if frame is None:  # pragma: no cover - nothing but plumbing
            warnings.warn(message, DeprecationWarning, stacklevel=2)
            return
        globals_ = frame.f_globals
        warnings.warn_explicit(
            message,
            DeprecationWarning,
            filename=frame.f_code.co_filename,
            lineno=frame.f_lineno,
            module=globals_.get("__name__", "<unknown>"),
            registry=globals_.setdefault("__warningregistry__", {}),
        )
    finally:
        del frame  # break the frame reference cycle
