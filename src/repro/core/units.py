"""Time units and arithmetic helpers.

T-DAT operates entirely in integer microseconds, mirroring the paper's
implementation which converts tcpdump second-based timestamps to
microseconds and stores them as big integers (paper section V-C).  Using
integers everywhere keeps range arithmetic exact and hashable.
"""

from __future__ import annotations

# Canonical conversion constants.
US_PER_SECOND = 1_000_000
US_PER_MS = 1_000
MS_PER_SECOND = 1_000


def seconds(value: float) -> int:
    """Convert seconds (possibly fractional) to integer microseconds."""
    return round(value * US_PER_SECOND)


def milliseconds(value: float) -> int:
    """Convert milliseconds (possibly fractional) to integer microseconds."""
    return round(value * US_PER_MS)


def microseconds(value: float) -> int:
    """Round a (possibly fractional) microsecond value to an integer."""
    return round(value)


def to_seconds(us: int) -> float:
    """Convert integer microseconds back to float seconds."""
    return us / US_PER_SECOND


def to_milliseconds(us: int) -> float:
    """Convert integer microseconds back to float milliseconds."""
    return us / US_PER_MS


def pcap_timestamp(us: int) -> tuple[int, int]:
    """Split integer microseconds into a pcap ``(ts_sec, ts_usec)`` pair."""
    return divmod(us, US_PER_SECOND)


def from_pcap_timestamp(ts_sec: int, ts_usec: int) -> int:
    """Combine a pcap ``(ts_sec, ts_usec)`` pair into integer microseconds."""
    return ts_sec * US_PER_SECOND + ts_usec
