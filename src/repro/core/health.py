"""Trace-ingest health accounting: what the pipeline could not parse.

Real captures are dirty — tcpdump drops packets (paper section II-A),
sniffer placement loses frames, and long-running ISP traces arrive
truncated or bit-mangled.  Rather than hard-raising or silently
skipping, every ingest stage (pcap record framing, Ethernet/IP/TCP
frame decoding, BGP message extraction, per-connection analysis)
appends a structured :class:`IngestIssue` to a shared
:class:`TraceHealth` ledger, so a report can state exactly what was
lost and where — the precondition for trusting any conclusion drawn
from operational data.

``TraceHealth(strict=True)`` restores fail-fast behaviour: recording a
non-benign issue raises :class:`IngestError` instead of accumulating.
Benign issues (e.g. non-IP frames, which every real capture contains)
never raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Ingest stages, in pipeline order.  ``exec`` sits after analysis: it
# accounts whole work units (e.g. one campaign transfer) that crashed
# inside a worker and were contained by the pool's fault isolation.
STAGE_CAPTURE = "capture"
STAGE_PCAP = "pcap"
STAGE_FRAME = "frame"
STAGE_BGP = "bgp"
STAGE_ANALYSIS = "analysis"
STAGE_EXEC = "exec"

STAGES = (
    STAGE_CAPTURE, STAGE_PCAP, STAGE_FRAME, STAGE_BGP, STAGE_ANALYSIS,
    STAGE_EXEC,
)

#: The central registry of every issue kind any stage may record.
#: Report tooling groups and explains issues by these strings, so a
#: typo'd or undocumented kind silently falls out of every summary —
#: the RL004 lint rule holds this dict and the call sites in sync,
#: in both directions.
ISSUE_KINDS = {
    # capture
    "sniffer-drop-window": "sniffer lost frames inside a drop window",
    # pcap
    "truncated-global-header": "file shorter than the pcap global header",
    "bad-magic": "pcap magic number unrecognized",
    "unsupported-version": "pcap major version not understood",
    "bad-record-header": "per-record header failed sanity checks",
    "truncated-record-header": "EOF inside a per-record header",
    "truncated-record": "EOF inside a record's captured payload",
    "unreadable-tail": "trailing bytes unrecoverable past the last record",
    "timestamp-regression": "record timestamps went backwards",
    "implausible-timestamp": "record timestamp outside the plausible epoch",
    # frame
    "undecodable-frame": "Ethernet/IP/TCP decode failed for a frame",
    "packet-after-close": "TCP segment seen after the connection closed",
    # bgp
    "bad-marker": "BGP header marker was not all-ones",
    "bad-length": "BGP header length outside [19, 4096]",
    "malformed-message": "BGP message body failed to parse",
    "stream-desynchronized": "byte stream lost BGP message framing",
    "stream-hole": "capture drop left a gap inside the BGP stream",
    # analysis
    "connection-analysis-failed": "per-connection T-DAT analysis crashed",
    "analysis-state-evicted": "resource budget shed tracked connection state",
    "analysis-connection-finalized-early":
        "budget watermark forced a report to render from partial state",
    "analysis-degraded": "a resource budget degraded this analysis",
    # health (the ledger's own bookkeeping)
    "issues-truncated":
        "per-kind issue cap reached; further issues counted, not stored",
    # exec
    "transfer-crashed": "campaign work unit died inside a worker",
    "sim-budget-exceeded": "simulation exceeded its event budget",
    "task-timeout": "worker task exceeded the supervision timeout",
    "task-retried": "task succeeded only after supervised retries",
    "campaign-resumed": "episodes restored from a checkpoint journal",
    "checkpoint-salvaged": "torn journal tail quarantined; valid prefix kept",
    "checkpoint-entry-skipped": "CRC-valid journal entry failed to decode",
    "chaos-injected": "a seeded chaos plan injected faults into this run",
}

#: Fast membership check for validation paths.
KNOWN_ISSUE_KINDS = frozenset(ISSUE_KINDS)

#: Default per-kind cap on *stored* issues.  A degenerate trace (e.g.
#: a million-packet flood arriving after its flows closed) must not
#: turn the health ledger itself into the memory hog: past the cap,
#: further issues of that kind are counted and their bytes summed, but
#: the issue objects are not retained.
DEFAULT_MAX_ISSUES_PER_KIND = 10_000


class IngestError(ValueError):
    """Raised in strict mode when an ingest stage hits damaged input."""


@dataclass(frozen=True)
class IngestIssue:
    """One thing an ingest stage could not parse or had to discard."""

    stage: str  # one of STAGES
    kind: str  # e.g. "truncated-record", "bad-marker", "undecodable-frame"
    offset: int | None = None  # byte offset in the source file, if known
    timestamp_us: int | None = None  # capture time, if known
    bytes_lost: int = 0  # payload bytes this issue cost
    detail: str = ""
    # Benign issues are bookkeeping, not damage: expected skips (non-IP
    # frames), recoveries (a retried task that then succeeded), resume
    # markers.  They never raise in strict mode and do not count as
    # failures for exit-code purposes.
    benign: bool = False

    def __str__(self) -> str:
        where = []
        if self.offset is not None:
            where.append(f"offset {self.offset}")
        if self.timestamp_us is not None:
            where.append(f"t={self.timestamp_us}us")
        location = " @ " + ", ".join(where) if where else ""
        lost = f", {self.bytes_lost} bytes lost" if self.bytes_lost else ""
        detail = f": {self.detail}" if self.detail else ""
        return f"[{self.stage}] {self.kind}{location}{lost}{detail}"


@dataclass
class TraceHealth:
    """Structured ledger of everything ingest dropped or repaired.

    One instance travels through the whole pipeline (reader → frame
    decoder → BGP reconstruction → analysis) and ends up attached to
    the :class:`~repro.analysis.tdat.TdatReport`.
    """

    issues: list[IngestIssue] = field(default_factory=list)
    strict: bool = False
    records_read: int = 0
    frames_decoded: int = 0
    #: per-kind cap on stored issues (``None`` = unlimited).  The cap
    #: bounds *storage*, not accounting: capped kinds keep counting in
    #: ``suppressed`` and their bytes in ``suppressed_bytes_lost``, and
    #: the first overflow stores one ``issues-truncated`` marker.
    max_issues_per_kind: int | None = DEFAULT_MAX_ISSUES_PER_KIND
    suppressed: dict[str, int] = field(default_factory=dict)
    suppressed_bytes_lost: int = 0
    # stored-issue count per kind; kept incrementally so the cap check
    # stays O(1) on the per-packet ingest path.
    _kind_counts: dict[str, int] = field(default_factory=dict, repr=False)

    def record(
        self,
        stage: str,
        kind: str,
        *,
        offset: int | None = None,
        timestamp_us: int | None = None,
        bytes_lost: int = 0,
        detail: str = "",
        benign: bool = False,
    ) -> IngestIssue:
        """Append one issue; in strict mode, non-benign issues raise."""
        issue = IngestIssue(
            stage=stage,
            kind=kind,
            offset=offset,
            timestamp_us=timestamp_us,
            bytes_lost=bytes_lost,
            detail=detail,
            benign=benign,
        )
        if self.strict and not benign:
            raise IngestError(str(issue))
        cap = self.max_issues_per_kind
        if (
            cap is not None
            and kind != "issues-truncated"
            and self._kind_counts.get(kind, 0) >= cap
        ):
            if kind not in self.suppressed:
                self.suppressed[kind] = 0
                # One stored overflow marker per capped kind.  It
                # inherits the trigger's benign flag so a flood of
                # *failures* still surfaces as a failure after the cap.
                self.record(
                    stage, "issues-truncated",
                    timestamp_us=timestamp_us,
                    detail=(
                        f"{kind}: per-kind cap {cap} reached; further "
                        f"issues counted in `suppressed`, not stored"
                    ),
                    benign=benign,
                )
            self.suppressed[kind] += 1
            self.suppressed_bytes_lost += bytes_lost
            return issue
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        self.issues.append(issue)
        return issue

    @property
    def ok(self) -> bool:
        """True when ingest saw nothing it had to drop or repair."""
        return not self.issues

    @property
    def failures(self) -> list[IngestIssue]:
        """The non-benign issues: what actually cost data or episodes."""
        return [issue for issue in self.issues if not issue.benign]

    @property
    def bytes_lost(self) -> int:
        """Total payload bytes the recorded issues cost.

        Includes bytes accounted by cap-suppressed issues: the cap
        bounds storage, never the loss arithmetic.
        """
        return (
            sum(issue.bytes_lost for issue in self.issues)
            + self.suppressed_bytes_lost
        )

    def by_stage(self) -> dict[str, int]:
        """Issue counts keyed by pipeline stage."""
        counts: dict[str, int] = {}
        for issue in self.issues:
            counts[issue.stage] = counts.get(issue.stage, 0) + 1
        return counts

    def by_kind(self) -> dict[str, int]:
        """Issue counts keyed by issue kind (suppressed ones included)."""
        counts: dict[str, int] = {}
        for issue in self.issues:
            counts[issue.kind] = counts.get(issue.kind, 0) + 1
        for kind, count in self.suppressed.items():
            counts[kind] = counts.get(kind, 0) + count
        return counts

    def merge(self, other: "TraceHealth") -> None:
        """Fold another ledger (e.g. a capture-side one) into this one.

        Issues the other ledger stored are kept verbatim — merging
        never re-caps, so a fold of N workers' ledgers can hold up to
        N×cap issues per kind; each worker's ledger bounded its own
        accumulation, which is what the cap is for.
        """
        self.issues.extend(other.issues)
        for issue in other.issues:
            self._kind_counts[issue.kind] = (
                self._kind_counts.get(issue.kind, 0) + 1
            )
        for kind, count in other.suppressed.items():
            self.suppressed[kind] = self.suppressed.get(kind, 0) + count
        self.suppressed_bytes_lost += other.suppressed_bytes_lost
        self.records_read += other.records_read
        self.frames_decoded += other.frames_decoded

    def to_dict(self) -> dict:
        """JSON-friendly form (used by ``tdat --json``)."""
        return {
            "ok": self.ok,
            "records_read": self.records_read,
            "frames_decoded": self.frames_decoded,
            "bytes_lost": self.bytes_lost,
            "issue_count": len(self.issues),
            "suppressed": dict(self.suppressed),
            "by_stage": self.by_stage(),
            "by_kind": self.by_kind(),
            "issues": [
                {
                    "stage": issue.stage,
                    "kind": issue.kind,
                    "offset": issue.offset,
                    "timestamp_us": issue.timestamp_us,
                    "bytes_lost": issue.bytes_lost,
                    "detail": issue.detail,
                    "benign": issue.benign,
                }
                for issue in self.issues
            ],
        }

    def summary(self, max_issues: int = 20) -> str:
        """Human-readable multi-line report."""
        if self.ok:
            return (
                f"trace health: clean ({self.records_read} records, "
                f"{self.frames_decoded} frames decoded)"
            )
        total = len(self.issues) + sum(self.suppressed.values())
        lines = [
            f"trace health: {total} issue(s), "
            f"{self.bytes_lost} bytes lost "
            f"({self.records_read} records, "
            f"{self.frames_decoded} frames decoded)"
        ]
        if self.suppressed:
            capped = ", ".join(
                f"{kind} +{count}"
                for kind, count in sorted(self.suppressed.items())
            )
            lines.append(f"  suppressed past per-kind cap: {capped}")
        for stage in STAGES:
            count = self.by_stage().get(stage)
            if count:
                lines.append(f"  {stage}: {count} issue(s)")
        for issue in self.issues[:max_issues]:
            lines.append(f"  - {issue}")
        hidden = len(self.issues) - max_issues
        if hidden > 0:
            lines.append(f"  ... and {hidden} more")
        return "\n".join(lines)
