"""T-DAT: a TCP delay analyzer for BGP slow table transfers.

A faithful, self-contained reproduction of *"Explaining BGP Slow Table
Transfers: Implementing a TCP Delay Analyzer"* — the analyzer itself
plus every substrate it needs: a deterministic network simulator, a
window-based TCP, a BGP implementation with the pathologies the paper
studies, byte-faithful pcap capture, and the measurement campaigns
regenerating the paper's tables and figures.

Quick start::

    from repro import netsim, bgp, workloads
    from repro.api import Pipeline

    sim = netsim.Simulator()
    setup = workloads.MonitoringSetup(sim)
    setup.add_router(workloads.RouterParams(
        name="r1", ip="10.1.0.1",
        table=bgp.generate_table(1000, netsim.RandomStreams(1).stream("t")),
    ))
    setup.start()
    sim.run(until_us=60_000_000)
    report = Pipeline().analyze(setup.sniffer.sorted_records())
"""

from repro import (
    analysis,
    api,
    bgp,
    capture,
    core,
    exec,
    netsim,
    tcp,
    tools,
    wire,
    workloads,
)

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "api",
    "exec",
    "bgp",
    "capture",
    "core",
    "netsim",
    "tcp",
    "tools",
    "wire",
    "workloads",
    "__version__",
]
