#!/usr/bin/env python3
"""The offline tool workflow on a raw pcap: the paper's Table VI suite.

A vendor collector keeps no MRT archive, so everything must come out of
the packet trace itself:

1. ``tcptrace-lite`` — inventory the TCP connections;
2. ``pcap2bgp``     — reconstruct the BGP message stream (handling
   retransmissions and reordering) and save it as MRT;
3. MCT             — estimate the table-transfer extent from the
   reconstructed updates;
4. ``tdat``        — attribute the transfer delay, clipped to the MCT
   window.

Run:  python examples/pcap_workflow.py
"""

import random
import tempfile
from pathlib import Path

from repro.analysis import analyze_connection, minimum_collection_time
from repro.analysis.profile import Trace
from repro.bgp import generate_table
from repro.bgp.mrt import read_mrt
from repro.core.units import seconds
from repro.bgp import VendorCollector
from repro.netsim import Simulator, WindowLoss
from repro.tools import pcap2bgp, tcptrace_lite
from repro.workloads import MonitoringSetup, RouterParams


def build_capture(path: Path) -> None:
    """A vendor-monitored transfer that suffers a loss episode."""
    sim = Simulator()
    setup = MonitoringSetup(sim, collector_cls=VendorCollector)
    table = generate_table(15_000, random.Random(3))
    setup.add_router(
        RouterParams(
            name="r1",
            ip="10.3.0.1",
            table=table,
            downstream_loss=WindowLoss([(seconds(0.05), seconds(0.6))]),
        )
    )
    setup.start()
    sim.run(until_us=seconds(120))
    setup.sniffer.write(path)


def main() -> None:
    tmp = Path(tempfile.gettempdir())
    pcap_path = tmp / "tdat_workflow.pcap"
    mrt_path = tmp / "tdat_workflow.mrt"
    build_capture(pcap_path)
    print(f"capture: {pcap_path}\n")

    # 1. Connection inventory.
    rows = tcptrace_lite.summarize(pcap_path)
    print(tcptrace_lite.format_report(rows))

    # 2. Reconstruct BGP messages -> MRT.
    count = pcap2bgp.pcap_to_mrt(pcap_path, mrt_path, local_as=65000, peer_as=65001)
    print(f"\npcap2bgp: {count} BGP messages -> {mrt_path}")

    # 3. MCT on the reconstructed stream.
    from repro.bgp.messages import UpdateMessage

    updates = [
        (r.timestamp_us, r.message)
        for r in read_mrt(mrt_path)
        if isinstance(r.message, UpdateMessage)
    ]
    transfer = minimum_collection_time(updates, start_us=0)
    print(f"MCT: transfer of {transfer.prefixes} prefixes ended at "
          f"{transfer.end_us / 1e6:.2f}s ({transfer.ended_by}); "
          f"duration {transfer.duration_us / 1e6:.2f}s")

    # 4. Delay analysis clipped to the transfer window.
    trace = Trace.from_pcap(str(pcap_path))
    connection = next(iter(trace))
    analysis = analyze_connection(connection, window=(0, transfer.end_us))
    rs, rr, rn = analysis.factors.group_vector
    print(f"\nT-DAT: sender={rs:.2f} receiver={rr:.2f} network={rn:.2f} "
          f"major={analysis.factors.major_factors()}")
    losses = analysis.consecutive_losses
    if losses.detected:
        print(f"consecutive losses: {losses.episodes} episode(s), worst run "
              f"{losses.worst_run} packets, {losses.induced_delay_us / 1e6:.1f}s "
              "spent in recovery")


if __name__ == "__main__":
    main()
