#!/usr/bin/env python3
"""Peer-group blocking: one dead collector drags down a healthy session.

Reproduces the paper's Figure 9 / section II-B3: a router replicates its
table to a Quagga and a vendor collector through a shared peer-group
queue ("cleared only after being successfully delivered to all peers").
At t1 the vendor box dies silently; the router keeps retransmitting into
the void and — because the common queue cannot advance — the *healthy*
Quagga session stalls too, resuming only when the dead session's hold
timer expires at t2.

T-DAT finds this from the two traces with the paper's rule::

    Quagga.SendAppLimited  ∩  Vendor.Loss

Run:  python examples/peer_group_blocking.py
"""

from repro.workloads import run_peer_group_episode

HOLD_TIME_S = 60  # scaled down from the paper's 180s for a quick run
FAIL_AFTER_S = 1.0


def main() -> None:
    print(f"hold time {HOLD_TIME_S}s; vendor collector dies "
          f"{FAIL_AFTER_S:.0f}s into the transfer...\n")
    result = run_peer_group_episode(
        hold_time_s=HOLD_TIME_S,
        table_size=20_000,
        fail_after_s=FAIL_AFTER_S,
    )

    report = result.blocked_report
    if report.detected:
        print("peer-group blocking detected (Quagga.SendAppLimited ∩ Vendor.Loss):")
        for rng in report.blocked_ranges:
            print(f"  blocked [{rng.start / 1e6:8.1f}s .. {rng.end / 1e6:8.1f}s] "
                  f"= {rng.duration / 1e6:.1f}s, only keepalives on the wire")
        print(f"  total induced delay: {report.induced_delay_us / 1e6:.1f}s "
              f"(expected ~ hold time {HOLD_TIME_S}s)")
    else:
        print("no blocking detected (unexpected!)")

    record = result.quagga_record
    if record is not None:
        print(f"\nQuagga-side MCT window: {record.duration_s:.1f}s "
              f"(ended_by={record.mct_ended_by}; an interrupted transfer "
              "looks 'idle' to MCT — the block itself is what the "
              "cross-connection rule above measures)")
        pause = record.keepalive_pause
        if pause is not None and pause.detected:
            print("single-trace confirmation: long keepalive-only pause found "
                  f"({pause.induced_delay_us / 1e6:.1f}s)")


if __name__ == "__main__":
    main()
