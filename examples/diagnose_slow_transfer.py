#!/usr/bin/env python3
"""Diagnose a slow table transfer: the paper's timer-gap investigation.

An operational router with the undocumented timer-driven implementation
(Houidi et al.; paper section II-B1) releases only a few UPDATE
messages per 200 ms timer tick.  The transfer crawls even though the
path is fast and the collector healthy.  T-DAT explains why:

* the ``SendAppLimited`` series dominates the transfer;
* the gap-length distribution has a knee at the timer period, from
  which the detector recovers the timer value (paper Figure 17).

Run:  python examples/diagnose_slow_transfer.py
"""

import random

from repro.analysis import (
    analyze_connection,
    transfers_from_mrt_records,
)
from repro.api import Pipeline
from repro.bgp import TimerBatchSender, generate_table
from repro.core.units import seconds, to_milliseconds
from repro.netsim import Simulator
from repro.tools.bgplot import render_panel
from repro.workloads import MonitoringSetup, RouterParams

TIMER_MS = 200
MESSAGES_PER_TICK = 12


def main() -> None:
    sim = Simulator()
    setup = MonitoringSetup(sim)
    table = generate_table(25_000, random.Random(7))

    setup.add_router(
        RouterParams(
            name="slow-router",
            ip="10.2.0.1",
            table=table,
            sender_model=TimerBatchSender(
                sim, TIMER_MS * 1000, MESSAGES_PER_TICK
            ),
        )
    )
    setup.start()
    sim.run(until_us=seconds(300))

    transfer = transfers_from_mrt_records(
        setup.collector.archive, connection_start_us=0
    )
    report = Pipeline().analyze(setup.sniffer.sorted_records())
    analysis = analyze_connection(
        next(iter(report)).connection, window=(0, transfer.end_us)
    )

    rs, rr, rn = analysis.factors.group_vector
    print(f"transfer window: {analysis.series.window.duration / 1e6:.1f}s")
    print(f"delay ratios: sender={rs:.2f} receiver={rr:.2f} network={rn:.2f}")
    print(f"major factors: {analysis.factors.major_factors()}\n")

    timer = analysis.timer_gaps
    if timer.detected:
        print(f"timer-driven sender detected!")
        print(f"  inferred timer : {to_milliseconds(timer.timer_us):.0f} ms "
              f"(injected: {TIMER_MS} ms)")
        print(f"  repetitive gaps: {timer.plateau_count} of {timer.gap_count}")
        print(f"  induced delay  : {timer.induced_delay_us / 1e6:.1f} s")
        print("\n  gap-length distribution (sorted, ms) — note the plateau:")
        gaps_ms = [to_milliseconds(g) for g in timer.gap_durations_us]
        line = ", ".join(f"{g:.0f}" for g in gaps_ms[:20])
        print(f"  {line}{' ...' if len(gaps_ms) > 20 else ''}\n")
    else:
        print("no repetitive timer gaps detected\n")

    print(render_panel(
        analysis.series,
        names=["Transmission", "SendAppLimited", "CwdBndOut", "AdvBndOut"],
        width=80,
    ))


if __name__ == "__main__":
    main()
