#!/usr/bin/env python3
"""Survey delay factors across a small monitoring campaign.

The paper's first usage scenario (section IV-A): without prior knowledge
of any problem, run T-DAT over every captured table transfer and ask
*where* the delay comes from — sender, receiver or network — and *which*
mechanism (BGP app, TCP window, loss) dominates.

This runs a scaled-down ISP_A-Quagga campaign and prints the
(Rs, Rr, Rn) vector per transfer plus the aggregate major-factor
distribution (the shape of the paper's Figure 14 / Table IV).

Run:  python examples/survey_delay_factors.py   (takes ~a minute)
"""

import tempfile
from collections import Counter
from pathlib import Path

from repro.analysis.factors import FACTORS
from repro.api import Pipeline
from repro.tools.report import render_markdown
from repro.workloads import isp_quagga_config


def main() -> None:
    config = isp_quagga_config(transfers=12)
    print(f"running campaign {config.name}: {config.transfers} transfers, "
          f"{config.routers} routers...\n")
    result = Pipeline(workers=2).campaign(config)

    print(f"{'transfer':>9s} {'pathology':18s} {'dur(s)':>8s} "
          f"{'Rs':>5s} {'Rr':>5s} {'Rn':>5s}  major")
    for record in result.records:
        rs, rr, rn = record.factors.group_vector
        major = ",".join(
            f"{g}:{f}" for g, f in record.factors.major_factors().items()
        ) or "unknown"
        print(f"{record.episode:>9d} {record.pathology:18s} "
              f"{record.duration_s:8.2f} {rs:5.2f} {rr:5.2f} {rn:5.2f}  {major}")

    groups = Counter()
    factors = Counter()
    for record in result.records:
        majors = record.factors.major_factors()
        if not majors:
            groups["unknown"] += 1
        for group, factor in majors.items():
            groups[group] += 1
            factors[factor] += 1

    print(f"\nmajor factor groups over {len(result.records)} transfers "
          "(threshold 0.3, groups can overlap):")
    for group, count in groups.most_common():
        print(f"  {group:10s} {count}")
    print("\ndominant individual factors:")
    for factor, count in factors.most_common():
        series_name, group = FACTORS[factor]
        print(f"  {factor:22s} ({group:8s}) {count}")

    report_path = Path(tempfile.gettempdir()) / "tdat_survey.md"
    report_path.write_text(render_markdown([result]))
    print(f"\nfull Markdown report -> {report_path}")


if __name__ == "__main__":
    main()
