#!/usr/bin/env python3
"""TCP forensics from event series: the paper's section V-D in action.

T-DAT's series are a sanitized substrate for other passive TCP
analyses.  This example runs two of them on simulated captures:

1. **Flow-clock extraction** (Qian et al.): recover a sender
   application's internal timer from the ``SendAppLimited`` series —
   application clocks are invisible in raw traces because the RTT
   dominates, but the series isolates exactly the app-limited periods.
2. **TCP flavour inference** (Jaiswal et al.): watch how the
   congestion window reacts to a clean loss episode — Tahoe collapses
   to one segment, Reno/NewReno halve — using the outstanding-bytes
   step function and the loss labels.

Run:  python examples/tcp_forensics.py
"""

import random

from repro.analysis import extract_flow_clock, infer_tcp_flavor
from repro.api import Pipeline
from repro.bgp import TimerBatchSender, generate_table
from repro.core.units import seconds
from repro.netsim import CountedLoss, Simulator
from repro.tcp.options import TcpConfig
from repro.workloads import MonitoringSetup, RouterParams


def capture(flavor=None, timer_ms=None, single_loss=False, seed=5):
    sim = Simulator()
    setup = MonitoringSetup(sim)
    table = generate_table(60_000, random.Random(seed))
    loss = None
    if single_loss:
        loss = CountedLoss(0)
        sim.schedule(100_000, loss.arm, 1)
    setup.add_router(
        RouterParams(
            name="r1",
            ip="10.5.0.1",
            table=table,
            tcp=TcpConfig(flavor=flavor) if flavor else None,
            sender_model=(
                TimerBatchSender(sim, timer_ms * 1000, 25) if timer_ms else None
            ),
            downstream_loss=loss,
        )
    )
    setup.start()
    sim.run(until_us=seconds(300))
    report = Pipeline().analyze(setup.sniffer.sorted_records(), min_data_packets=2)
    return next(iter(report))


def main() -> None:
    print("--- flow clock extraction ---")
    analysis = capture(timer_ms=100)
    clock = extract_flow_clock(analysis.series)
    if clock.detected:
        print(f"application clock: {clock.period_us / 1000:.0f} ms "
              f"(strength {clock.strength:.0%}, {clock.samples} gaps) — "
              "injected: 100 ms")
    else:
        print("no application clock found")

    print("\n--- TCP flavour inference (ground truth vs inferred) ---")
    print("(a single-hole recovery cannot separate Reno from NewReno —")
    print(" they differ only on multi-hole flights; Tahoe's collapse is")
    print(" visible either way)")
    for flavor in ("tahoe", "reno", "newreno"):
        analysis = capture(flavor=flavor, single_loss=True, seed=6)
        report = infer_tcp_flavor(analysis.connection, analysis.series)
        print(f"{flavor:8s} -> {report.flavor:8s} "
              f"(confidence {report.confidence:.2f}, "
              f"{report.fast_recovery_events} fast-recovery event(s))")
        for line in report.evidence[:2]:
            print(f"           {line}")


if __name__ == "__main__":
    main()
