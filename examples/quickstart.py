#!/usr/bin/env python3
"""Quickstart: simulate one monitored BGP table transfer and analyze it.

This is the whole T-DAT loop in ~40 lines:

1. build the paper's monitoring topology (router -> sniffer -> collector);
2. give the router a synthetic routing table and let the BGP session
   transfer it over simulated TCP;
3. write the sniffer capture to a real pcap file;
4. run the T-DAT analyzer on that pcap and print the delay report.

Run:  python examples/quickstart.py
"""

import random
import tempfile
from pathlib import Path

from repro.analysis import (
    analyze_connection,
    transfers_from_mrt_records,
)
from repro.api import Pipeline
from repro.bgp import generate_table
from repro.core.units import seconds
from repro.netsim import Simulator
from repro.tools.bgplot import render_analysis
from repro.workloads import MonitoringSetup, RouterParams


def main() -> None:
    sim = Simulator()
    setup = MonitoringSetup(sim)

    # A synthetic routing table: ~20K prefixes with realistic length
    # and AS-path structure (a scaled-down 2010 global table).
    table = generate_table(20_000, random.Random(42))
    print(f"routing table: {len(table)} prefixes, "
          f"{table.wire_size() / 1024:.0f} KiB on the wire")

    setup.add_router(RouterParams(name="router-1", ip="10.1.0.1", table=table))
    setup.start()
    sim.run(until_us=seconds(120))

    pcap_path = Path(tempfile.gettempdir()) / "tdat_quickstart.pcap"
    count = setup.sniffer.write(pcap_path)
    print(f"captured {count} frames -> {pcap_path}")
    print(f"collector archived {setup.collector.updates_archived} UPDATEs\n")

    # The analysis period is the table-transfer extent, estimated with
    # MCT from the collector's archive (the paper's methodology).
    transfer = transfers_from_mrt_records(
        setup.collector.archive, connection_start_us=0
    )
    print(f"MCT: transfer duration {transfer.duration_us / 1e6:.2f}s\n")

    report = Pipeline().analyze(pcap_path)
    for analysis in report:
        clipped = analyze_connection(
            analysis.connection, window=(0, transfer.end_us)
        )
        print(render_analysis(clipped, width=80))


if __name__ == "__main__":
    main()
