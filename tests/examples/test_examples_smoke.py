"""Smoke tests: the runnable examples must stay runnable.

Each example executes in a subprocess with the repo's interpreter; the
slowest (survey, tcp_forensics) are excluded to keep the suite quick —
they exercise the same code paths as the campaign and application
tests.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "diagnose_slow_transfer.py",
    "peer_group_blocking.py",
    "pcap_workflow.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{name} produced no output"


def test_examples_inventory():
    """Every example file is either smoke-tested or known-slow."""
    known_slow = {"survey_delay_factors.py", "tcp_forensics.py"}
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert set(FAST_EXAMPLES) <= present
    assert present - set(FAST_EXAMPLES) <= known_slow
