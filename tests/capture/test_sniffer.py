"""Tests for the sniffer tap and the monitored-peering scenario."""

import io
import random

from repro.bgp.messages import UpdateMessage
from repro.bgp.table import generate_table
from repro.capture.sniffer import SnifferTap
from repro.core.units import seconds
from repro.netsim.link import WindowLoss
from repro.netsim.simulator import Simulator
from repro.wire import frames
from repro.wire.pcap import read_pcap
from repro.workloads.scenarios import MonitoringSetup, RouterParams


def run_simple_setup(table_size=300, **router_kw):
    sim = Simulator()
    setup = MonitoringSetup(sim)
    table = generate_table(table_size, random.Random(11))
    handle = setup.add_router(
        RouterParams(name="r1", ip="10.1.0.1", table=table, **router_kw)
    )
    setup.start()
    setup.run(until_us=seconds(300))
    return sim, setup, handle, table


class TestSnifferCapture:
    def test_capture_contains_both_directions(self):
        sim, setup, handle, table = run_simple_setup()
        records = setup.sniffer.sorted_records()
        assert len(records) > 20
        directions = set()
        for record in records:
            parsed = frames.parse_frame(record.data)
            directions.add((parsed.src_ip, parsed.dst_ip))
        assert ("10.1.0.1", "10.255.0.1") in directions  # data
        assert ("10.255.0.1", "10.1.0.1") in directions  # ACKs

    def test_capture_is_valid_pcap(self):
        sim, setup, handle, table = run_simple_setup()
        buffer = io.BytesIO()
        count = setup.sniffer.write(buffer)
        buffer.seek(0)
        records = read_pcap(buffer)
        assert len(records) == count
        stamps = [r.timestamp_us for r in records]
        assert stamps == sorted(stamps)
        # Every frame parses down to TCP with checksums intact.
        for record in records[:50]:
            parsed = frames.parse_frame(record.data, verify_checksums=True)
            assert parsed.tcp.src_port in (40000, 179)

    def test_transfer_completes_and_archives(self):
        sim, setup, handle, table = run_simple_setup()
        assert setup.collector.updates_archived == len(table.to_updates())
        assert len(setup.collector.rib) == len(table)

    def test_bgp_payload_recoverable_from_capture(self):
        sim, setup, handle, table = run_simple_setup(table_size=100)
        # Concatenate data-direction payloads in sequence order and
        # decode BGP messages out of the stream.
        from repro.bgp.messages import MessageDecoder

        payloads = []
        for record in setup.sniffer.sorted_records():
            parsed = frames.parse_frame(record.data)
            if parsed.src_ip == "10.1.0.1" and parsed.tcp.payload:
                payloads.append((parsed.tcp.seq, parsed.tcp.payload))
        # No loss in this scenario: dedupe by seq and order.
        seen = {}
        for seq, payload in payloads:
            seen.setdefault(seq, payload)
        stream = b"".join(p for _, p in sorted(seen.items()))
        decoder = MessageDecoder()
        messages = decoder.feed(stream)
        updates = [m for m in messages if isinstance(m, UpdateMessage)]
        assert len(updates) == len(table.to_updates())

    def test_drop_windows_create_voids(self):
        sim = Simulator()
        setup = MonitoringSetup(
            sim, sniffer_drop_windows=[(seconds(0.03), seconds(0.08))]
        )
        table = generate_table(800, random.Random(12))
        setup.add_router(RouterParams(name="r1", ip="10.1.0.1", table=table))
        setup.start()
        setup.run(until_us=seconds(300))
        assert setup.sniffer.dropped_records > 0
        for record in setup.sniffer.records:
            assert not (seconds(0.03) <= record.timestamp_us < seconds(0.08))

    def test_downstream_loss_invisible_to_tap(self):
        """Packets dropped after the tap are captured but never delivered."""
        sim = Simulator()
        setup = MonitoringSetup(sim)
        table = generate_table(8000, random.Random(13))
        handle = setup.add_router(
            RouterParams(
                name="r1",
                ip="10.1.0.1",
                table=table,
                downstream_loss=WindowLoss([(seconds(0.02), seconds(0.2))]),
            )
        )
        setup.start()
        setup.run(until_us=seconds(300))
        assert handle.local_link.stats.dropped_loss > 0
        # All transfers recover; the archive is complete.
        assert setup.collector.updates_archived == len(table.to_updates())

    def test_multiple_routers_one_sniffer(self):
        sim = Simulator()
        setup = MonitoringSetup(sim)
        tables = {}
        for i in range(3):
            table = generate_table(150, random.Random(20 + i))
            tables[f"10.1.0.{i + 1}"] = table
            setup.add_router(
                RouterParams(name=f"r{i}", ip=f"10.1.0.{i + 1}", table=table)
            )
        setup.start(stagger_us=seconds(0.5))
        setup.run(until_us=seconds(300))
        flows = set()
        for record in setup.sniffer.sorted_records():
            parsed = frames.parse_frame(record.data)
            flows.add(parsed.flow)
        # 3 connections x 2 directions.
        assert len(flows) == 6
        total_updates = sum(len(t.to_updates()) for t in tables.values())
        assert setup.collector.updates_archived == total_updates


class TestSnifferUnit:
    def test_ip_identification_increments(self):
        from repro.netsim.packet import Packet
        from repro.wire.tcpw import TcpHeader, ACK

        sim = Simulator()
        tap = SnifferTap(sim)
        header = TcpHeader(
            src_port=1, dst_port=2, seq=0, ack=0, flags=ACK, window=100
        )
        pkt = Packet(src="1.1.1.1", dst="2.2.2.2", payload=header, wire_length=54)
        tap._observe(pkt, 0)
        tap._observe(pkt, 1)
        ids = [
            frames.parse_frame(r.data).ipv4.identification for r in tap.records
        ]
        assert ids == [0, 1]

    def test_health_ledger_accounts_drop_windows(self):
        from repro.core.health import STAGE_CAPTURE
        from repro.netsim.packet import Packet
        from repro.wire.tcpw import ACK, TcpHeader

        sim = Simulator()
        tap = SnifferTap(sim, drop_windows=[(100, 200), (500, 600)])
        header = TcpHeader(
            src_port=1, dst_port=2, seq=0, ack=0, flags=ACK, window=100
        )
        pkt = Packet(src="1.1.1.1", dst="2.2.2.2", payload=header, wire_length=54)
        tap._observe(pkt, 50)    # captured
        tap._observe(pkt, 150)   # dropped in window 1
        tap._observe(pkt, 150)   # dropped in window 1
        tap._observe(pkt, 700)   # captured (window 2 never hit)
        health = tap.health()
        assert health.records_read == 2
        assert health.by_stage() == {STAGE_CAPTURE: 1}
        (issue,) = health.issues
        assert issue.kind == "sniffer-drop-window"
        assert issue.bytes_lost == 108
        assert "2 frame(s) dropped" in issue.detail

    def test_health_clean_when_nothing_dropped(self):
        sim = Simulator()
        tap = SnifferTap(sim, drop_windows=[(100, 200)])
        assert tap.health().ok
