"""Tracer exports: Chrome trace_event validity and span mechanics."""

from __future__ import annotations

import json

from repro.obs import (
    CLOCK_SIM,
    CLOCK_WALL,
    NULL_TRACER,
    PID_SIM,
    PID_WALL,
    SpanRecord,
    Tracer,
)


def test_span_context_manager_records_wall_span():
    tracer = Tracer()
    with tracer.span("stage", cat="analysis", args={"n": 3}):
        pass
    (span,) = tracer.spans
    assert span.name == "stage"
    assert span.cat == "analysis"
    assert span.clock == CLOCK_WALL
    assert span.dur_us >= 0
    assert span.args == {"n": 3}


def test_span_recorded_even_when_body_raises():
    tracer = Tracer()
    try:
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert [s.name for s in tracer.spans] == ["doomed"]


def test_chrome_events_have_required_fields_and_clock_pids():
    tracer = Tracer()
    with tracer.span("wall-stage"):
        pass
    tracer.add_span("sim-run", start_us=100, dur_us=2000, clock=CLOCK_SIM)
    events = tracer.chrome_events()
    assert len(events) == 2
    for event in events:
        for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args"):
            assert key in event, f"chrome event missing {key}"
        assert event["ph"] == "X"
        assert isinstance(event["ts"], int)
        assert isinstance(event["dur"], int)
    by_name = {e["name"]: e for e in events}
    assert by_name["wall-stage"]["pid"] == PID_WALL
    assert by_name["sim-run"]["pid"] == PID_SIM
    assert by_name["sim-run"]["args"]["clock"] == CLOCK_SIM


def test_to_chrome_names_both_process_rows_and_is_json_clean():
    tracer = Tracer()
    tracer.add_span("run", start_us=0, dur_us=10)
    trace = json.loads(json.dumps(tracer.to_chrome()))
    assert trace["displayTimeUnit"] == "ms"
    metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    assert {m["pid"] for m in metadata} == {PID_WALL, PID_SIM}
    assert all(m["name"] == "process_name" for m in metadata)


def test_write_chrome_and_jsonl(tmp_path):
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass

    chrome = tmp_path / "trace.json"
    tracer.write_chrome(chrome)
    trace = json.loads(chrome.read_text())
    names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
    assert names == ["inner", "outer"]  # completion order

    jsonl = tmp_path / "trace.jsonl"
    tracer.write_jsonl(jsonl)
    lines = [json.loads(l) for l in jsonl.read_text().splitlines()]
    assert [l["name"] for l in lines] == ["inner", "outer"]
    assert all(l["clock"] == CLOCK_WALL for l in lines)


def test_nested_spans_contain_each_other_on_the_same_track():
    """Chrome infers nesting from interval containment on one
    (pid, tid): the outer span's [ts, ts+dur] must cover the inner's."""
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    inner, outer = tracer.spans
    assert outer.start_us <= inner.start_us
    assert (
        inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us
    )
    assert inner.tid == outer.tid


def test_merge_reassigns_tid_per_episode_track():
    worker = Tracer()
    with worker.span("episode"):
        pass
    parent = Tracer()
    parent.merge(worker.spans, tid=7)
    parent.merge(worker.spans, tid=8)
    assert [s.tid for s in parent.spans] == [7, 8]
    # the adopted records are fresh; the worker's stay untouched
    assert [s.tid for s in worker.spans] == [0]


def test_span_records_pickle_and_survive_merge():
    import pickle

    span = SpanRecord(
        name="episode", cat="campaign", clock=CLOCK_WALL,
        start_us=5, dur_us=10, args={"index": 1},
    )
    clone = pickle.loads(pickle.dumps([span]))
    parent = Tracer()
    parent.merge(clone, tid=2)
    assert parent.spans[0].args == {"index": 1}
    assert parent.spans[0].tid == 2


def test_null_tracer_is_inert():
    with NULL_TRACER.span("ignored"):
        pass
    NULL_TRACER.add_span("ignored", start_us=0, dur_us=1)
    NULL_TRACER.merge([SpanRecord("x", "c", CLOCK_WALL, 0, 1)])
    assert NULL_TRACER.spans == []
    assert NULL_TRACER.chrome_events() == []
