"""MetricsRegistry semantics: merge algebra, determinism, no-op path.

The property that carries the whole parallel-campaign design is that a
registry recorded in one process and *split* across N workers folds
back to the same thing: ``merge(split(registry)) == registry`` for any
partition of the recorded events.  That is what makes
``CampaignResult.metrics`` independent of ``workers=``.
"""

from __future__ import annotations

import json
import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DISABLED,
    NULL_REGISTRY,
    MetricsRegistry,
    Observability,
)
from repro.obs.metrics import SECONDS_BUCKETS


def _events_strategy():
    """A list of metric events: (kind, name, value)."""
    names = st.sampled_from(["alpha", "beta", "gamma.delta"])
    counter = st.tuples(
        st.just("counter"), names, st.integers(min_value=0, max_value=1000)
    )
    gauge = st.tuples(
        st.just("gauge"),
        names,
        st.floats(
            min_value=-1e6, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        ),
    )
    # Dyadic rationals: histogram totals are float sums, and only
    # exactly-representable values make the sum independent of how the
    # partition groups the additions.  (The campaign itself always
    # folds per-task registries in the same order, which is an even
    # stronger guarantee; the property here covers any grouping.)
    histogram = st.tuples(
        st.just("histogram"),
        names,
        st.integers(min_value=0, max_value=40_000).map(lambda k: k / 4.0),
    )
    return st.lists(st.one_of(counter, gauge, histogram), max_size=60)


def _record(registry: MetricsRegistry, events) -> None:
    for kind, name, value in events:
        # Distinct namespaces per kind: the registry (rightly) refuses
        # to re-register a name under a different instrument kind.
        if kind == "counter":
            registry.counter(f"c.{name}").inc(value)
        elif kind == "gauge":
            registry.gauge(f"g.{name}").set(value)
        else:
            registry.histogram(f"h.{name}").observe(value)


@given(events=_events_strategy(), cut_points=st.lists(st.integers(0, 60)))
@settings(max_examples=80, deadline=None)
def test_merge_of_any_partition_round_trips(events, cut_points):
    """merge(split(events)) == record(events), for any partition."""
    whole = MetricsRegistry()
    _record(whole, events)

    cuts = sorted({min(c, len(events)) for c in cut_points})
    bounds = [0, *cuts, len(events)]
    merged = MetricsRegistry()
    for lo, hi in zip(bounds, bounds[1:]):
        part = MetricsRegistry()
        _record(part, events[lo:hi])
        merged.merge(part)

    assert merged.to_dict() == whole.to_dict()


@given(events=_events_strategy())
@settings(max_examples=40, deadline=None)
def test_merge_survives_pickle_round_trip(events):
    """Worker registries travel back over a pipe; pickling is lossless."""
    original = MetricsRegistry()
    _record(original, events)
    clone = pickle.loads(pickle.dumps(original))
    assert clone.to_dict() == original.to_dict()
    # and the clone is still live, not a frozen snapshot
    clone.counter("c.alpha").inc()


def test_crashed_worker_partial_registry_merges_without_double_count():
    """A retried task's partial export must not inflate the totals.

    The campaign driver only absorbs the export of the *successful*
    attempt; this test pins the registry-level contract that makes the
    recovery story honest: merging the partial then the complete
    registry would double-count, so the driver must (and does) drop the
    partial one.  Here we assert that merging only the surviving
    attempt reproduces the uncontested totals exactly.
    """
    # attempt 1 dies halfway: it recorded 3 of its 6 events
    partial = MetricsRegistry()
    partial.counter("episodes").inc()
    partial.counter("records").inc(3)
    # attempt 2 (the retry) runs to completion
    complete = MetricsRegistry()
    complete.counter("episodes").inc()
    complete.counter("records").inc(6)

    parent = MetricsRegistry()
    parent.merge(complete)  # the driver folds only resolved outcomes
    snapshot = parent.to_dict()
    assert snapshot["episodes"]["value"] == 1
    assert snapshot["records"]["value"] == 6

    # folding the partial as well would corrupt both counters
    corrupted = MetricsRegistry()
    corrupted.merge(partial)
    corrupted.merge(complete)
    assert corrupted.to_dict()["records"]["value"] == 9


def test_histogram_merge_adds_bucketwise():
    a = MetricsRegistry()
    b = MetricsRegistry()
    for value in (0.0005, 0.05, 5.0):
        a.histogram("lat").observe(value)
    for value in (0.05, 500.0):
        b.histogram("lat").observe(value)
    a.merge(b)
    snap = a.to_dict()["lat"]
    assert snap["count"] == 5
    assert snap["min"] == 0.0005
    assert snap["max"] == 500.0
    assert sum(snap["counts"]) == 5
    assert len(snap["counts"]) == len(SECONDS_BUCKETS) + 1


def test_gauge_merge_keeps_peak_and_last():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.gauge("depth").set(10.0)
    a.gauge("depth").set(4.0)
    b.gauge("depth").set(7.0)
    a.merge(b)
    snap = a.to_dict()["depth"]
    assert snap["peak"] == 10.0
    assert snap["value"] == 7.0  # last write in merge order wins


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    try:
        registry.gauge("x")
    except TypeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected TypeError on kind conflict")


def test_deterministic_view_excludes_wall_metrics():
    registry = MetricsRegistry()
    registry.counter("sim.events").inc(12)
    registry.counter("pool.spawned", wall=True).inc(2)
    registry.histogram("pool.execute_s", wall=True).observe(0.5)
    full = registry.to_dict()
    deterministic = registry.to_dict(deterministic_only=True)
    assert set(full) == {"sim.events", "pool.spawned", "pool.execute_s"}
    assert set(deterministic) == {"sim.events"}
    # the view is JSON-clean: byte-identical dumps witness determinism
    json.dumps(deterministic, sort_keys=True)


def test_disabled_path_is_shared_noop_singletons():
    """DISABLED dispatch allocates nothing: every call returns the same
    module-level no-op instrument, and recording into it is a no-op."""
    registry = NULL_REGISTRY
    assert not registry.enabled
    c1 = registry.counter("anything")
    c2 = registry.counter("something.else")
    assert c1 is c2
    assert registry.gauge("a") is registry.gauge("b")
    assert registry.histogram("a") is registry.histogram("b")
    c1.inc(10**9)
    registry.gauge("a").set(3.0)
    registry.histogram("a").observe(1.0)
    assert registry.to_dict() == {}

    assert DISABLED.enabled is False
    assert DISABLED.metrics is NULL_REGISTRY


def test_enabled_observability_exports_and_absorbs():
    child = Observability.create()
    child.metrics.counter("episodes").inc()
    export = child.export()

    parent = Observability.create()
    parent.absorb(export, tid=3)
    assert parent.metrics.to_dict()["episodes"]["value"] == 1
