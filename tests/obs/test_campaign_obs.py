"""End-to-end observability through a campaign.

The acceptance contract: the deterministic metrics view is
byte-identical between ``workers=1`` and ``workers=4`` runs of the
same campaign, and the trace carries the nested
``campaign.episode -> episode.simulate / episode.analyze`` hierarchy.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import Observability, get_obs, use_obs
from repro.workloads.campaign import isp_quagga_config, run_campaign

TRANSFERS = 2
SEED = 9


def _small_config(**overrides):
    config = isp_quagga_config(seed=SEED, transfers=TRANSFERS)
    config.zero_bug_episodes = 0
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def _run_with_obs(workers: int, **overrides):
    obs = Observability.create()
    with use_obs(obs):
        result = run_campaign(_small_config(**overrides), workers=workers)
    return obs, result


@pytest.fixture(scope="module")
def serial():
    return _run_with_obs(workers=1)


class TestDeterministicMetrics:
    def test_result_carries_the_merged_registry(self, serial):
        _obs, result = serial
        assert result.metrics is not None
        snapshot = result.metrics.to_dict()
        assert snapshot["campaign.episodes"]["value"] == TRANSFERS
        assert snapshot["campaign.records"]["value"] == len(result.records)
        assert snapshot["sim.runs"]["value"] >= TRANSFERS
        assert snapshot["sim.events"]["value"] > 0
        assert snapshot["analysis.connections"]["value"] > 0

    def test_workers_do_not_change_the_deterministic_view(self, serial):
        _obs, serial_result = serial
        _obs4, parallel_result = _run_with_obs(workers=4)
        want = json.dumps(
            serial_result.metrics.to_dict(deterministic_only=True),
            sort_keys=True,
        )
        got = json.dumps(
            parallel_result.metrics.to_dict(deterministic_only=True),
            sort_keys=True,
        )
        assert got == want

    def test_wall_metrics_exist_but_are_excluded_from_the_view(self, serial):
        _obs, result = serial
        full = result.metrics.to_dict()
        deterministic = result.metrics.to_dict(deterministic_only=True)
        assert "analysis.connection_s" in full
        assert full["analysis.connection_s"]["wall"] is True
        assert "analysis.connection_s" not in deterministic
        assert all(not m["wall"] for m in deterministic.values())

    def test_crashed_episode_contributes_nothing(self):
        """A worker crash drops that episode's export entirely — the
        survivors' counters must not be inflated by partial recordings
        (and must stay identical across worker counts)."""
        _obs1, serial_result = _run_with_obs(workers=1, fail_episodes=(1,))
        _obs2, parallel_result = _run_with_obs(workers=2, fail_episodes=(1,))
        for result in (serial_result, parallel_result):
            snapshot = result.metrics.to_dict()
            assert snapshot["campaign.episodes"]["value"] == TRANSFERS - 1
        assert json.dumps(
            serial_result.metrics.to_dict(deterministic_only=True),
            sort_keys=True,
        ) == json.dumps(
            parallel_result.metrics.to_dict(deterministic_only=True),
            sort_keys=True,
        )


class TestSpans:
    def test_episode_spans_nest(self, serial):
        obs, _result = serial
        spans = obs.tracer.spans
        episodes = [s for s in spans if s.name == "campaign.episode"]
        assert len(episodes) == TRANSFERS
        for episode in episodes:
            children = [
                s for s in spans
                if s.tid == episode.tid
                and s.name in ("episode.simulate", "episode.analyze")
            ]
            assert {c.name for c in children} == {
                "episode.simulate", "episode.analyze"
            }
            for child in children:
                assert episode.start_us <= child.start_us
                assert (
                    child.start_us + child.dur_us
                    <= episode.start_us + episode.dur_us
                )

    def test_each_episode_gets_its_own_track(self, serial):
        obs, _result = serial
        episodes = [
            s for s in obs.tracer.spans if s.name == "campaign.episode"
        ]
        tids = [s.tid for s in episodes]
        assert len(set(tids)) == len(tids)

    def test_campaign_map_span_wraps_the_pool_run(self, serial):
        obs, _result = serial
        (map_span,) = [
            s for s in obs.tracer.spans if s.name == "campaign.map"
        ]
        assert map_span.args["tasks"] == TRANSFERS

    def test_sim_spans_live_on_the_sim_clock(self, serial):
        obs, _result = serial
        sim_runs = [s for s in obs.tracer.spans if s.name == "sim.run"]
        assert sim_runs
        assert all(s.clock == "sim" for s in sim_runs)


class TestDisabledPath:
    def test_without_a_context_no_metrics_are_attached(self):
        assert get_obs().enabled is False  # ambient default
        result = run_campaign(_small_config(), workers=1)
        assert result.metrics is None

    def test_metrics_stay_out_of_the_identity_digest(self, serial):
        """to_dict() is the serial/parallel byte-identity witness; the
        registry must not leak into it."""
        _obs, result = serial
        plain = run_campaign(_small_config(), workers=1)
        assert json.dumps(result.to_dict(), sort_keys=True) == json.dumps(
            plain.to_dict(), sort_keys=True
        )
